//! X3 — selectivity-estimate accuracy: the §4.1 formulas (through the
//! collected statistics) against actual result counts on generated data.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mood_bench::{build_vehicle_db, VehicleDbSpec};
use mood_core::cost::{
    atomic_selectivity, fref, path_selectivity, Domain, PathHop, PathPredicate, Theta,
};
use mood_core::Mood;

fn estimate_path(db: &Mood, hops: &[(&str, &str)], terminal: (&str, &str, Theta, f64)) -> f64 {
    let stats = db.catalog().stats();
    let mut ph = Vec::new();
    for (class, attr) in hops {
        let r = stats.reference(class, attr).expect("collected");
        ph.push(PathHop {
            fan: r.fan,
            totref: r.totref as f64,
            totlinks: stats.totlinks(class, attr).expect("derived"),
        });
    }
    let (tclass, tattr, theta, c) = terminal;
    let at = stats.attr(tclass, tattr).expect("collected");
    let dom = Domain {
        dist: at.dist as f64,
        max: at.max,
        min: at.min,
    };
    let (last_class, last_attr) = hops.last().expect("at least one hop");
    let p = PathPredicate {
        hops: ph,
        terminal_cardinality: stats.class(tclass).expect("collected").cardinality as f64,
        terminal_selectivity: atomic_selectivity(theta, Some(c), &dom),
        hitprb_last: stats.hitprb(last_class, last_attr).expect("derived"),
    };
    path_selectivity(&p)
}

fn actual_fraction(db: &Mood, q: &str, total: usize) -> f64 {
    db.query(q).expect("query runs").len() as f64 / total as f64
}

fn bench(c: &mut Criterion) {
    let spec = VehicleDbSpec {
        n_vehicles: 4000,
        ..Default::default()
    };
    let db = build_vehicle_db(&spec);
    let n = spec.n_vehicles;

    println!("\n# X3: estimated vs actual selectivity (4000 vehicles)");
    println!(
        "{:<52} {:>10} {:>10} {:>7}",
        "predicate", "estimate", "actual", "ratio"
    );

    // Atomic: weight > c at three cut points.
    let stats = db.catalog().stats();
    let w = stats.attr("Vehicle", "weight").expect("collected");
    let dom = Domain {
        dist: w.dist as f64,
        max: w.max,
        min: w.min,
    };
    for cut in [800.0, 1200.0, 1700.0] {
        let est = atomic_selectivity(Theta::Gt, Some(cut), &dom);
        let act = actual_fraction(
            &db,
            &format!("SELECT v FROM Vehicle v WHERE v.weight > {cut}"),
            n,
        );
        println!(
            "{:<52} {:>10.4} {:>10.4} {:>7.2}",
            format!("v.weight > {cut}"),
            est,
            act,
            if act > 0.0 { est / act } else { f64::NAN }
        );
        assert!(
            (est - act).abs() < 0.15,
            "uniform attribute: est {est} vs {act}"
        );
    }

    // One-hop path: v.drivetrain.transmission = 'MANUAL' (≈ 0.5).
    {
        // String domain: equality selectivity 1/dist = 1/2.
        let est = {
            let at = stats
                .attr("VehicleDriveTrain", "transmission")
                .expect("collected");
            1.0 / at.dist as f64
        };
        let act = actual_fraction(
            &db,
            "SELECT v FROM Vehicle v WHERE v.drivetrain.transmission = 'MANUAL'",
            n,
        );
        println!(
            "{:<52} {:>10.4} {:>10.4} {:>7.2}",
            "v.drivetrain.transmission = 'MANUAL'",
            est,
            act,
            est / act
        );
    }

    // Two-hop path: v.drivetrain.engine.cylinders = 2 (the Example 8.2
    // predicate at generated scale).
    {
        let est = estimate_path(
            &db,
            &[("Vehicle", "drivetrain"), ("VehicleDriveTrain", "engine")],
            ("VehicleEngine", "cylinders", Theta::Eq, 2.0),
        );
        let act = actual_fraction(
            &db,
            "SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2",
            n,
        );
        println!(
            "{:<52} {:>10.4} {:>10.4} {:>7.2}",
            "v.drivetrain.engine.cylinders = 2",
            est,
            act,
            est / act
        );
        assert!(
            est / act.max(1e-6) < 4.0 && act / est.max(1e-6) < 4.0,
            "path estimate within 4x: est {est} vs act {act}"
        );
    }

    // fref accuracy: distinct drivetrains reached from all vehicles.
    {
        let r = stats.reference("Vehicle", "drivetrain").expect("collected");
        let hop = PathHop {
            fan: r.fan,
            totref: r.totref as f64,
            totlinks: stats.totlinks("Vehicle", "drivetrain").expect("derived"),
        };
        let est = fref(&[hop], n as f64);
        let act = r.totref as f64; // all drivetrains are referenced
        println!(
            "{:<52} {:>10.0} {:>10.0} {:>7.2}",
            "fref(v.drivetrain, |V|) vs distinct reached",
            est,
            act,
            est / act
        );
    }

    let mut group = c.benchmark_group("selectivity");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("estimate_two_hop_path", |b| {
        b.iter(|| {
            estimate_path(
                &db,
                &[("Vehicle", "drivetrain"), ("VehicleDriveTrain", "engine")],
                ("VehicleEngine", "cylinders", Theta::Eq, 2.0),
            )
        })
    });
    group.bench_function("actual_two_hop_count", |b| {
        b.iter(|| {
            db.query("SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2")
                .expect("runs")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
