//! The Function Manager in action (Section 2): methods added, redefined
//! and crashed at run time while the "server" keeps serving — the paper's
//! case for dividing labor between the SQL interpreter and a compiler.
//!
//! ```sh
//! cargo run -p mood-core --example dynamic_methods
//! ```

use std::sync::Arc;

use mood_core::{MethodSig, Mood, TypeDescriptor, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Mood::in_memory();
    db.execute("CREATE CLASS Vehicle TUPLE (id Integer, weight Integer)")?;
    db.execute("CREATE CLASS Automobile INHERITS FROM Vehicle")?;
    db.execute("new Vehicle <1, 1000>")?;
    db.execute("new Automobile <2, 800>")?;

    // 1. Define a method from source at run time. "Compilation" (parsing)
    //    happens now; the server never restarts.
    db.execute("DEFINE METHOD Vehicle::lbweight() RETURNS Float AS 'weight * 2.2075'")?;
    let mut cur = db.query("SELECT v.id, v.lbweight() FROM EVERY Vehicle v ORDER BY v.id")?;
    println!("== lbweight v1 ==");
    while let Some(row) = cur.next() {
        println!("  vehicle {} → {}", row[0], row[1]);
    }

    // 2. Late binding: Automobile inherits lbweight; an override shadows
    //    it immediately, chosen by the receiver's *dynamic* class.
    db.execute("DEFINE METHOD Automobile::lbweight() RETURNS Float AS 'weight * 2.2075 + 0.5'")?;
    let mut cur = db.query("SELECT v.id, v.lbweight() FROM EVERY Vehicle v ORDER BY v.id")?;
    println!("\n== after Automobile override (late binding) ==");
    while let Some(row) = cur.next() {
        println!("  vehicle {} → {}", row[0], row[1]);
    }

    // 3. Compile errors surface at definition time, not call time.
    let err = db
        .execute("DEFINE METHOD Vehicle::broken() RETURNS Integer AS 'weight +'")
        .unwrap_err();
    println!("\n== compile error caught at DEFINE time ==\n  {err}");

    // 4. A native method that crashes: the paper's Exception class turns
    //    the "signal" into an error; the server survives.
    db.register_native_method(
        "Vehicle",
        MethodSig::new("crashy", TypeDescriptor::integer(), vec![]),
        Arc::new(|_recv, _args, _res| panic!("simulated SIGSEGV in user C++ code")),
    )?;
    let oid = {
        let mood_core::Answer::Created(Value::Ref(oid)) = db.execute("new Vehicle <3, 5>")? else {
            unreachable!()
        };
        oid
    };
    // Silence the default panic hook: the Exception machinery catches the
    // unwind; the hook would only print noise.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = db.invoke(oid, "crashy", &[]).unwrap_err();
    std::panic::set_hook(hook);
    println!("\n== native method crash becomes an Exception ==\n  {err}");
    // ... and the very next query still works:
    let cur = db.query("SELECT v FROM EVERY Vehicle v")?;
    println!("  server still answering: {} vehicles", cur.len());

    // 5. The dld simulation: functions load once per scope.
    let loads = |db: &Mood| {
        db.funcman()
            .stats()
            .loads
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    db.funcman().end_scope(); // start a fresh scope for the measurement
    let before = loads(&db);
    db.query("SELECT v.lbweight() FROM Vehicle v")?;
    db.query("SELECT v.lbweight() FROM Vehicle v")?;
    println!(
        "\n== dld loads for 2 queries: {} (loaded once, cached) ==",
        loads(&db) - before
    );
    db.funcman().end_scope();
    db.query("SELECT v.lbweight() FROM Vehicle v")?;
    println!(
        "== after scope end, next call reloads: {} total ==",
        loads(&db) - before
    );
    Ok(())
}
