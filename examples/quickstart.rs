//! Quickstart: define a schema, create objects, query, explain.
//!
//! ```sh
//! cargo run -p mood-core --example quickstart
//! ```

use mood_core::{Answer, Mood};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory MOOD database. `Mood::open("path")` gives a persistent
    // one with the same API.
    let db = Mood::in_memory();

    // DDL — the MOODSQL data definition language of Section 3.1.
    db.execute("CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer)")?;
    db.execute("CREATE CLASS Manager INHERITS FROM Employee")?;

    // Objects — the `new` statement the paper's MoodView issues (§9.4).
    db.execute("new Employee <1, 'Asuman Dogac', 50>")?;
    db.execute("new Employee <2, 'Cetin Ozkan', 35>")?;
    db.execute("new Employee <3, 'Budak Arpinar', 28>")?;
    db.execute("new Manager <4, 'Tansel Okay', 45>")?;

    // Ad-hoc queries. EVERY includes subclass extents (IS-A).
    println!("== employees over 30 (EVERY Employee) ==");
    let mut cur = db
        .query("SELECT e.name, e.age FROM EVERY Employee e WHERE e.age > 30 ORDER BY e.age DESC")?;
    while let Some(row) = cur.next() {
        println!("  {} ({})", row[0], row[1]);
    }

    // A method defined at run time — no server restart (Section 2's
    // Function Manager).
    db.execute("DEFINE METHOD Employee::retirement_years() RETURNS Integer AS '65 - age'")?;
    println!("\n== years to retirement ==");
    let mut cur =
        db.query("SELECT e.name, e.retirement_years() FROM EVERY Employee e ORDER BY e.ssno")?;
    while let Some(row) = cur.next() {
        println!("  {}: {}", row[0], row[1]);
    }

    // Aggregation.
    let Answer::Rows(r) = db.execute("SELECT COUNT(*), AVG(e.age) FROM EVERY Employee e")? else {
        unreachable!()
    };
    println!(
        "\n== count / average age == {} / {}",
        r.rows[0][0], r.rows[0][1]
    );

    // The optimizer's access plan, in the paper's notation.
    println!("\n== access plan ==");
    print!(
        "{}",
        db.explain("SELECT e FROM EVERY Employee e WHERE e.age = 28")?
    );

    // The MoodView hierarchy browser, headless.
    println!("\n== class hierarchy ==");
    print!("{}", db.render_hierarchy());
    Ok(())
}
