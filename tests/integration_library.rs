//! Second-domain integration: a library/loans database exercising the
//! features the Vehicle suite does not — set-valued reference attributes,
//! nested paths through them, aggregates with HAVING, DISTINCT, DELETE,
//! hash indexes, methods with parameters, and multiple inheritance.

use mood_core::{Answer, Mood, Value};

fn build() -> Mood {
    let db = Mood::in_memory();
    for ddl in [
        "CREATE CLASS Person TUPLE (name String(64), birth Integer)",
        "CREATE CLASS Author INHERITS FROM Person",
        "CREATE CLASS Publisher TUPLE (name String(64), city String(32))",
        "CREATE CLASS Book TUPLE (title String(128), year Integer, pages Integer, \
         author REFERENCE (Author), publisher REFERENCE (Publisher), \
         tags SET (String)) \
         METHODS: age (now Integer) Integer,",
        "CREATE CLASS Member INHERITS FROM Person TUPLE (card Integer)",
        "CREATE CLASS Loan TUPLE (book REFERENCE (Book), member REFERENCE (Member), \
         day Integer)",
    ] {
        db.execute(ddl).unwrap();
    }
    db.execute("DEFINE METHOD Book::age(now Integer) RETURNS Integer AS 'now - year'")
        .unwrap();

    let catalog = db.catalog();
    let mut authors = Vec::new();
    for (n, b) in [
        ("Orhan Pamuk", 1952),
        ("Yasar Kemal", 1923),
        ("Elif Safak", 1971),
    ] {
        authors.push(
            catalog
                .new_object(
                    "Author",
                    Value::tuple(vec![
                        ("name", Value::string(n)),
                        ("birth", Value::Integer(b)),
                    ]),
                )
                .unwrap(),
        );
    }
    let mut publishers = Vec::new();
    for (n, c) in [("Iletisim", "Istanbul"), ("YKY", "Istanbul")] {
        publishers.push(
            catalog
                .new_object(
                    "Publisher",
                    Value::tuple(vec![("name", Value::string(n)), ("city", Value::string(c))]),
                )
                .unwrap(),
        );
    }
    let mut books = Vec::new();
    for i in 0..30i32 {
        books.push(
            catalog
                .new_object(
                    "Book",
                    Value::tuple(vec![
                        ("title", Value::string(format!("Book {i:02}"))),
                        ("year", Value::Integer(1970 + (i % 10) * 5)),
                        ("pages", Value::Integer(120 + i * 17)),
                        ("author", Value::Ref(authors[i as usize % 3])),
                        ("publisher", Value::Ref(publishers[i as usize % 2])),
                        (
                            "tags",
                            Value::Set(vec![
                                Value::string(if i % 2 == 0 { "novel" } else { "essay" }),
                                Value::string("turkish"),
                            ]),
                        ),
                    ]),
                )
                .unwrap(),
        );
    }
    let mut members = Vec::new();
    for i in 0..6i32 {
        members.push(
            catalog
                .new_object(
                    "Member",
                    Value::tuple(vec![
                        ("name", Value::string(format!("member{i}"))),
                        ("birth", Value::Integer(1980 + i)),
                        ("card", Value::Integer(1000 + i)),
                    ]),
                )
                .unwrap(),
        );
    }
    for i in 0..40i32 {
        catalog
            .new_object(
                "Loan",
                Value::tuple(vec![
                    ("book", Value::Ref(books[(i as usize * 7) % books.len()])),
                    ("member", Value::Ref(members[i as usize % members.len()])),
                    ("day", Value::Integer(i)),
                ]),
            )
            .unwrap();
    }
    db.collect_stats().unwrap();
    db
}

fn rows(a: Answer) -> Vec<Vec<Value>> {
    let Answer::Rows(r) = a else {
        panic!("not rows")
    };
    r.rows
}

#[test]
fn three_hop_path_through_two_classes() {
    let db = build();
    // loan → book → author → birth.
    let r = rows(
        db.execute("SELECT l.day FROM Loan l WHERE l.book.author.birth < 1950 ORDER BY l.day")
            .unwrap(),
    );
    assert!(!r.is_empty());
    // Cross-check with a brute-force two-query approach.
    let authors_pre_1950 = rows(
        db.execute("SELECT a.name FROM Author a WHERE a.birth < 1950")
            .unwrap(),
    );
    assert_eq!(authors_pre_1950.len(), 1, "only Yasar Kemal");
}

#[test]
fn aggregates_with_having_and_order() {
    let db = build();
    let r = rows(
        db.execute(
            "SELECT l.member.name, COUNT(*) FROM Loan l \
             GROUP BY l.member.name HAVING COUNT(*) >= 6 ORDER BY l.member.name",
        )
        .unwrap(),
    );
    // 40 loans over 6 members: members 0..3 get 7, members 4..5 get 6.
    assert_eq!(r.len(), 6);
    let total: i32 = r
        .iter()
        .map(|row| match row[1] {
            Value::Integer(c) => c,
            _ => panic!(),
        })
        .sum();
    assert_eq!(total, 40);
}

#[test]
fn min_max_avg_sum() {
    let db = build();
    let r = rows(
        db.execute("SELECT MIN(b.pages), MAX(b.pages), AVG(b.pages), SUM(b.pages) FROM Book b")
            .unwrap(),
    );
    let (min, max) = (120.0, 120.0 + 29.0 * 17.0);
    assert_eq!(r[0][0], Value::Float(min));
    assert_eq!(r[0][1], Value::Float(max));
    let Value::Float(avg) = r[0][2] else { panic!() };
    assert!((avg - (min + max) / 2.0).abs() < 1e-9, "arithmetic series");
    let Value::Float(sum) = r[0][3] else { panic!() };
    assert!((sum - 30.0 * (min + max) / 2.0).abs() < 1e-9);
}

#[test]
fn distinct_over_path() {
    let db = build();
    let r = rows(
        db.execute("SELECT DISTINCT b.publisher.city FROM Book b")
            .unwrap(),
    );
    assert_eq!(r.len(), 1, "both publishers in Istanbul");
}

#[test]
fn method_with_parameter_in_predicate() {
    let db = build();
    let r = rows(
        db.execute("SELECT b.title FROM Book b WHERE b.age(2026) > 50 ORDER BY b.title")
            .unwrap(),
    );
    // age > 50 ⇔ year < 1976 ⇔ year ∈ {1970, 1975} → i%10 ∈ {0,1} → 6 books.
    assert_eq!(r.len(), 6);
}

#[test]
fn hash_index_equality() {
    let db = build();
    db.execute("CREATE HASH INDEX ON Book(title)").unwrap();
    db.collect_stats().unwrap();
    let r = rows(
        db.execute("SELECT b.pages FROM Book b WHERE b.title = 'Book 07'")
            .unwrap(),
    );
    assert_eq!(r, vec![vec![Value::Integer(120 + 7 * 17)]]);
}

#[test]
fn delete_where_through_path() {
    let db = build();
    let before = rows(db.execute("SELECT l FROM Loan l").unwrap()).len();
    let Answer::Done { affected } = db.execute("DELETE FROM Loan l WHERE l.day < 10").unwrap()
    else {
        panic!()
    };
    assert_eq!(affected, 10);
    let after = rows(db.execute("SELECT l FROM Loan l").unwrap()).len();
    assert_eq!(after, before - 10);
    // Dangling-free: remaining loans still resolve their books.
    let r = rows(
        db.execute("SELECT l.book.title FROM Loan l WHERE l.day = 15")
            .unwrap(),
    );
    assert_eq!(r.len(), 1);
}

#[test]
fn multiple_inheritance_extent_union() {
    let db = build();
    // EVERY Person = Person(0) + Author(3) + Member(6).
    let all = rows(db.execute("SELECT p FROM EVERY Person p").unwrap());
    assert_eq!(all.len(), 9);
    let authors_only = rows(db.execute("SELECT p FROM EVERY Person - Member p").unwrap());
    assert_eq!(authors_only.len(), 3);
}

#[test]
fn between_and_arithmetic_in_predicates() {
    let db = build();
    let r = rows(
        db.execute(
            "SELECT b.title FROM Book b WHERE b.pages BETWEEN 200 AND 300 \
             AND b.pages % 2 = 1",
        )
        .unwrap(),
    );
    // pages = 120 + 17i ∈ [200,300] → i ∈ {5..10}; odd pages → i odd
    // (120+17i odd ⇔ i odd) → i ∈ {5,7,9}.
    assert_eq!(r.len(), 3);
}

#[test]
fn object_browser_renders_loans() {
    let db = build();
    let loans = db.catalog().extent("Loan").unwrap();
    let (oid, _) = loans[0];
    let text = db.render_object(oid, 2);
    assert!(text.contains("Loan @"), "{text}");
    assert!(text.contains("Book @"), "follows book ref: {text}");
    assert!(text.contains("title:"), "{text}");
}

#[test]
fn explain_groups_and_sorts_in_figure_7_1_order() {
    let db = build();
    db.execute(
        "SELECT l.member.name, COUNT(*) FROM Loan l WHERE l.day >= 0 \
         GROUP BY l.member.name HAVING COUNT(*) > 0 ORDER BY l.member.name",
    )
    .unwrap();
    let trace = db.last_trace();
    let pos = |n: &str| trace.iter().position(|t| t == n).unwrap_or(usize::MAX);
    assert!(pos("FROM") < pos("GROUP BY"));
    assert!(pos("GROUP BY") < pos("HAVING"));
    assert!(pos("HAVING") < pos("PROJECT"));
}

#[test]
fn soak_scale_pipeline_matches_bruteforce() {
    // A larger end-to-end run: ~6k objects, path query + aggregate query,
    // checked against brute-force counts computed from the raw extents.
    let db = Mood::in_memory_with_pool(64);
    db.execute("CREATE CLASS Genre TUPLE (name String)")
        .unwrap();
    db.execute("CREATE CLASS Title TUPLE (n Integer, genre REFERENCE (Genre))")
        .unwrap();
    db.execute("CREATE CLASS Copy TUPLE (serial Integer, title REFERENCE (Title))")
        .unwrap();
    let catalog = db.catalog();
    let genres: Vec<_> = (0..8)
        .map(|g| {
            catalog
                .new_object(
                    "Genre",
                    Value::tuple(vec![("name", Value::string(format!("g{g}")))]),
                )
                .unwrap()
        })
        .collect();
    let titles: Vec<_> = (0..1000)
        .map(|t: i32| {
            catalog
                .new_object(
                    "Title",
                    Value::tuple(vec![
                        ("n", Value::Integer(t)),
                        (
                            "genre",
                            Value::Ref(genres[(t as usize * 13) % genres.len()]),
                        ),
                    ]),
                )
                .unwrap()
        })
        .collect();
    for c in 0..5000i32 {
        catalog
            .new_object(
                "Copy",
                Value::tuple(vec![
                    ("serial", Value::Integer(c)),
                    ("title", Value::Ref(titles[(c as usize * 7) % titles.len()])),
                ]),
            )
            .unwrap();
    }
    db.collect_stats().unwrap();

    // Path query: copies of titles in genre g3.
    let cur = db
        .query("SELECT c FROM Copy c WHERE c.title.genre.name = 'g3'")
        .unwrap();
    // Brute force.
    let mut expect = 0;
    for (_, copy) in catalog.extent("Copy").unwrap() {
        let Some(Value::Ref(t)) = copy.field("title") else {
            continue;
        };
        let (_, title) = catalog.get_object(*t).unwrap();
        let Some(Value::Ref(g)) = title.field("genre") else {
            continue;
        };
        let (_, genre) = catalog.get_object(*g).unwrap();
        if genre.field("name") == Some(&Value::string("g3")) {
            expect += 1;
        }
    }
    assert_eq!(cur.len(), expect);
    assert!(expect > 0);

    // Aggregate across the same path.
    let Answer::Rows(r) = db
        .execute(
            "SELECT c.title.genre.name, COUNT(*) FROM Copy c \
             GROUP BY c.title.genre.name ORDER BY c.title.genre.name",
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(r.len(), 8);
    let total: i32 = r
        .rows
        .iter()
        .map(|row| match row[1] {
            Value::Integer(c) => c,
            _ => panic!(),
        })
        .sum();
    assert_eq!(total, 5000);
}
