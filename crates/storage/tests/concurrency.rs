//! Concurrency tests for the storage substrate: the buffer pool's
//! checked-out/condvar protocol under contention, and multi-threaded heap
//! and index traffic.

use std::sync::Arc;

use mood_storage::{
    AccessKind, BTree, BufferPool, Disk, DiskMetrics, HeapFile, MemDisk, Oid, SlottedPage,
};

#[test]
fn same_page_writers_serialize_through_checkout() {
    // Many threads increment a counter on one page; the checked-out
    // protocol must serialize the read-modify-write callbacks.
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(disk.clone(), 4, DiskMetrics::new()));
    let f = disk.create_file().unwrap();
    let (pid, _) = pool
        .new_page(f, |p| p.data[0..4].copy_from_slice(&0u32.to_le_bytes()))
        .unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..250 {
                pool.with_page_mut(f, pid, AccessKind::Random, |p| {
                    let v = u32::from_le_bytes(p.data[0..4].try_into().unwrap());
                    std::thread::yield_now(); // widen the race window
                    p.data[0..4].copy_from_slice(&(v + 1).to_le_bytes());
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let v = pool
        .with_page(f, pid, AccessKind::Random, |p| {
            u32::from_le_bytes(p.data[0..4].try_into().unwrap())
        })
        .unwrap();
    assert_eq!(v, 2000, "no lost updates under contention");
}

#[test]
fn eviction_storm_with_concurrent_readers() {
    // A 2-frame pool with 16 pages and 8 reader threads: constant eviction
    // while pages are checked out must never corrupt data.
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(disk.clone(), 2, DiskMetrics::new()));
    let f = disk.create_file().unwrap();
    let mut pids = Vec::new();
    for i in 0..16u8 {
        let (pid, _) = pool.new_page(f, |p| p.data.fill(i)).unwrap();
        pids.push(pid);
    }
    let pids = Arc::new(pids);
    let mut handles = Vec::new();
    for t in 0..8usize {
        let pool = pool.clone();
        let pids = pids.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..300usize {
                let i = (t * 31 + round * 7) % pids.len();
                let expect = i as u8;
                let got = pool
                    .with_page(f, pids[i], AccessKind::Random, |p| {
                        (p.data[0], p.data[4000])
                    })
                    .unwrap();
                assert_eq!(got, (expect, expect), "page {i} corrupted");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_heap_inserts_are_all_retrievable() {
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(disk, 8, DiskMetrics::new()));
    let heap = Arc::new(HeapFile::create(pool).unwrap());
    let mut handles = Vec::new();
    for t in 0..6u8 {
        let heap = heap.clone();
        handles.push(std::thread::spawn(move || {
            let mut oids: Vec<(Oid, Vec<u8>)> = Vec::new();
            for i in 0..150u32 {
                let payload = format!("t{t}-rec{i}").into_bytes();
                let oid = heap.insert(&payload).unwrap();
                oids.push((oid, payload));
            }
            oids
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    assert_eq!(all.len(), 900);
    for (oid, payload) in &all {
        assert_eq!(&heap.get(*oid).unwrap(), payload);
    }
    assert_eq!(heap.count().unwrap(), 900);
    // Every OID is distinct.
    let distinct: std::collections::HashSet<Oid> = all.iter().map(|(o, _)| *o).collect();
    assert_eq!(distinct.len(), 900);
}

#[test]
fn concurrent_btree_readers_during_inserts() {
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(disk, 64, DiskMetrics::new()));
    let tree = Arc::new(BTree::create(pool, false).unwrap());
    fn oid(n: u32) -> Oid {
        Oid::new(
            mood_storage::FileId(5),
            mood_storage::PageId(n),
            mood_storage::SlotId(0),
            1,
        )
    }
    // Preload a stable prefix readers can always find.
    for i in 0..500u32 {
        tree.insert(&i.to_be_bytes(), oid(i)).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let tree = tree.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 500u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) && i < 4000 {
                tree.insert(&i.to_be_bytes(), oid(i)).unwrap();
                i += 1;
            }
        })
    };
    for round in 0..800u32 {
        let k = round % 500;
        let got = tree.lookup(&k.to_be_bytes()).unwrap();
        assert_eq!(got, vec![oid(k)], "stable key {k} must stay visible");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn slotted_page_invariants_after_mixed_workload() {
    // Single-threaded structural check complementing the prop tests: fill,
    // riddle with holes, compact implicitly, and confirm accounting.
    let mut page = mood_storage::Page::new();
    SlottedPage::init(&mut page);
    let mut live = Vec::new();
    for i in 0..60u8 {
        if let Ok((slot, stamp)) = SlottedPage::insert(&mut page, &vec![i; 40 + i as usize]) {
            live.push((slot, stamp, i));
        }
    }
    for (k, (slot, _, _)) in live.clone().iter().enumerate() {
        if k % 2 == 0 {
            SlottedPage::delete(&mut page, *slot).unwrap();
        }
    }
    live.retain(|(s, _, _)| {
        SlottedPage::get_any(&page, *s)
            .map(|c| !matches!(c, mood_storage::page::SlotContent::Free))
            .unwrap_or(false)
    });
    // total_free never exceeds the page and survivors stay intact.
    assert!(SlottedPage::total_free(&page) < 4096);
    for (slot, stamp, tag) in live {
        match SlottedPage::get(&page, slot, stamp).unwrap() {
            mood_storage::page::SlotContent::Record(bytes) => {
                assert!(bytes.iter().all(|b| *b == tag));
            }
            other => panic!("live slot lost: {other:?}"),
        }
    }
}
