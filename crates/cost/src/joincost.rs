//! Cost of the implicit join `C.A = D.self` under each of the four join
//! strategies — Section 6 verbatim — plus multi-hop forward-traversal cost
//! for whole path expressions (what the PathSelInfo dictionary stores).

use mood_storage::PhysicalParams;

use crate::approx::c_approx;
use crate::fileops::{indcost, pages_touched, rndcost, seqcost, IndexParams};
use crate::selectivity::PathHop;

/// Per-class physical description the join-cost formulas need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassInfo {
    /// `|C|`.
    pub cardinality: f64,
    /// `nbpages(C)`.
    pub nbpages: f64,
}

/// CPU cost per in-memory comparison (the `CPUCOST` constant of §6.2).
/// A 1994-era machine did on the order of 10⁶–10⁷ comparisons per second.
pub const DEFAULT_CPU_COST: f64 = 1e-6;

/// The four implicit-join strategies of Section 6 / 8.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    ForwardTraversal,
    BackwardTraversal,
    BinaryJoinIndex,
    HashPartition,
}

impl JoinMethod {
    pub const ALL: [JoinMethod; 4] = [
        JoinMethod::ForwardTraversal,
        JoinMethod::BackwardTraversal,
        JoinMethod::BinaryJoinIndex,
        JoinMethod::HashPartition,
    ];

    /// The access-plan spelling used in the paper's examples.
    pub fn plan_name(&self) -> &'static str {
        match self {
            JoinMethod::ForwardTraversal => "FORWARD_TRAVERSAL",
            JoinMethod::BackwardTraversal => "BACKWARD_TRAVERSAL",
            JoinMethod::BinaryJoinIndex => "BINARY_JOIN_INDEX",
            JoinMethod::HashPartition => "HASH_PARTITION",
        }
    }
}

/// §6.1 — forward traversal: fetch the pages holding the `k_c` C-objects,
/// then chase `k_c·fan` references into D:
///
/// `ftc = RNDCOST(nbpg_c) + RNDCOST(k_c · fan)` with
/// `nbpg_c = nbpages(C)·(1 − (1 − 1/nbpages(C))^{k_c})`.
///
/// Worst case: no buffer hits on D's pages.
pub fn forward_traversal_cost(p: &PhysicalParams, k_c: f64, c: &ClassInfo, fan: f64) -> f64 {
    rndcost(p, pages_touched(c.nbpages, k_c)) + rndcost(p, k_c * fan)
}

/// Forward traversal when the `k_c` source objects are already materialized
/// in memory (a temporary collection like Example 8.1's T1): only the
/// pointer chase remains.
pub fn forward_traversal_cost_in_memory(p: &PhysicalParams, k_c: f64, fan: f64) -> f64 {
    rndcost(p, k_c * fan)
}

/// §6.2 — backward traversal: to join `k_d` D-objects back into C, scan
/// C's extent and test every reference:
///
/// `btc = SEQCOST(nbpages(C)) + k_c·fan·k_d·CPUCOST
///        + (0 if D already accessed else SEQCOST(nbpages(D)))`
#[allow(clippy::too_many_arguments)]
pub fn backward_traversal_cost(
    p: &PhysicalParams,
    k_c: f64,
    k_d: f64,
    c: &ClassInfo,
    d: &ClassInfo,
    fan: f64,
    cpu_cost: f64,
    d_already_accessed: bool,
) -> f64 {
    seqcost(p, c.nbpages)
        + k_c * fan * k_d * cpu_cost
        + if d_already_accessed {
            0.0
        } else {
            seqcost(p, d.nbpages)
        }
}

/// §6.3 — binary join index: `bjc = INDCOST(k)`.
pub fn binary_join_index_cost(p: &PhysicalParams, index: &IndexParams, k: f64) -> f64 {
    indcost(p, index, k)
}

/// §6.4 — pointer-based hash-partition join:
///
/// `hhc = 3·(k_c/|C|)·SEQCOST(nbpages(C)) + RNDCOST(nbpg)` with
/// `nbpg = nbpages(D)·(1 − (1 − 1/nbpages(D))^α)` and
/// `α = c(|C|·fan, totref, k_c·fan)`.
///
/// (The paper's formula line is garbled by a typesetting slip —
/// `SEQCOST(nbpages(C) + RNDCOST(nbpg))` — which nests a random-access cost
/// inside a page count; the reading consistent with the §6.4 prose and with
/// the relational hybrid-hash formula above it is the sum used here.)
pub fn hash_partition_cost(
    p: &PhysicalParams,
    k_c: f64,
    c: &ClassInfo,
    d: &ClassInfo,
    fan: f64,
    totref: f64,
) -> f64 {
    let alpha = c_approx(c.cardinality * fan, totref, k_c * fan);
    let nbpg = pages_touched(d.nbpages, alpha);
    3.0 * (k_c / c.cardinality) * seqcost(p, c.nbpages) + rndcost(p, nbpg)
}

/// Hash-partition join over an in-memory temporary of `k_c` objects: the
/// three partition passes run over the temporary's pages (same object
/// density as the base class) rather than a fraction of the extent.
pub fn hash_partition_cost_in_memory(
    p: &PhysicalParams,
    k_c: f64,
    c: &ClassInfo,
    d: &ClassInfo,
    fan: f64,
    totref: f64,
) -> f64 {
    let objs_per_page = (c.cardinality / c.nbpages).max(1.0);
    let temp_pages = k_c / objs_per_page;
    let alpha = c_approx(c.cardinality * fan, totref, k_c * fan);
    let nbpg = pages_touched(d.nbpages, alpha);
    3.0 * seqcost(p, temp_pages) + rndcost(p, nbpg)
}

/// Everything needed to cost one implicit join.
#[derive(Debug, Clone)]
pub struct JoinInputs {
    pub k_c: f64,
    pub k_d: f64,
    pub c: ClassInfo,
    pub d: ClassInfo,
    pub fan: f64,
    pub totref: f64,
    /// Binary join index on the reference attribute, if one exists.
    pub index: Option<IndexParams>,
    pub d_already_accessed: bool,
    pub cpu_cost: f64,
    /// The `k_c` source objects are a temporary collection already in
    /// memory (a prior operator's output) rather than a stored extent.
    pub c_in_memory: bool,
    /// The right side is an already-materialized temporary: chasing a
    /// pointer into it is a memory probe, not a page fetch.
    pub d_in_memory: bool,
}

/// Cost of one strategy (`None` when inapplicable: no binary join index).
pub fn join_cost(p: &PhysicalParams, m: JoinMethod, j: &JoinInputs) -> Option<f64> {
    Some(match m {
        JoinMethod::ForwardTraversal => {
            let source = if j.c_in_memory {
                0.0
            } else {
                rndcost(p, pages_touched(j.c.nbpages, j.k_c))
            };
            let chase = if j.d_in_memory {
                0.0
            } else {
                rndcost(p, j.k_c * j.fan)
            };
            source + chase
        }
        JoinMethod::BackwardTraversal => backward_traversal_cost(
            p,
            j.k_c,
            j.k_d,
            &j.c,
            &j.d,
            j.fan,
            j.cpu_cost,
            j.d_already_accessed || j.d_in_memory,
        ),
        JoinMethod::BinaryJoinIndex => {
            binary_join_index_cost(p, j.index.as_ref()?, j.k_c.min(j.k_d))
        }
        JoinMethod::HashPartition => {
            let base = if j.c_in_memory {
                hash_partition_cost_in_memory(p, j.k_c, &j.c, &j.d, j.fan, j.totref)
            } else {
                hash_partition_cost(p, j.k_c, &j.c, &j.d, j.fan, j.totref)
            };
            if j.d_in_memory {
                // Remove the D-page fetch term: probes hit memory.
                let alpha = c_approx(j.c.cardinality * j.fan, j.totref, j.k_c * j.fan);
                base - rndcost(p, pages_touched(j.d.nbpages, alpha))
            } else {
                base
            }
        }
    })
}

/// The minimum-cost applicable strategy — what Algorithm 8.2 calls "the
/// minimum cost join technique among the four join algorithms".
pub fn best_join_method(p: &PhysicalParams, j: &JoinInputs) -> (JoinMethod, f64) {
    JoinMethod::ALL
        .iter()
        .filter_map(|m| join_cost(p, *m, j).map(|cost| (*m, cost)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("forward traversal is always applicable")
}

/// Forward-traversal cost of a whole path expression `p.A_1…A_m` starting
/// from `k` objects of `C_1` — the `F_i` entry of the PathSelInfo
/// dictionary (Table 12 / Table 16).
///
/// Applies §6.1 hop by hop: hop `i` fetches the pages of the `k_i` source
/// objects and chases `k_i·fan_i` references; `k_{i+1} = fref` through
/// `c(n,m,r)`.
pub fn path_forward_cost(
    p: &PhysicalParams,
    classes: &[ClassInfo], // C_1 … C_{m}, classes.len() == hops.len() + 1
    hops: &[PathHop],
    k: f64,
) -> f64 {
    debug_assert_eq!(classes.len(), hops.len() + 1);
    let mut total = 0.0;
    let mut k_i = k;
    for (i, hop) in hops.iter().enumerate() {
        total += forward_traversal_cost(p, k_i, &classes[i], hop.fan);
        k_i = c_approx(hop.totlinks, hop.totref, k_i * hop.fan);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> PhysicalParams {
        PhysicalParams::paper_calibrated()
    }

    fn vehicle() -> ClassInfo {
        ClassInfo {
            cardinality: 20_000.0,
            nbpages: 2_000.0,
        }
    }

    fn drivetrain() -> ClassInfo {
        ClassInfo {
            cardinality: 10_000.0,
            nbpages: 750.0,
        }
    }

    fn engine() -> ClassInfo {
        ClassInfo {
            cardinality: 10_000.0,
            nbpages: 5_000.0,
        }
    }

    fn company() -> ClassInfo {
        ClassInfo {
            cardinality: 200_000.0,
            nbpages: 2_500.0,
        }
    }

    #[test]
    fn table16_p2_forward_cost_exact() {
        // F2 = forward traversal of v.company from all 20000 Vehicles:
        // RNDCOST(nbpg_c) + RNDCOST(20000) = 520.825 under the calibrated
        // disk (calibration has exactly one free parameter; see DESIGN.md).
        let hop = PathHop {
            fan: 1.0,
            totref: 20_000.0,
            totlinks: 20_000.0,
        };
        let f2 = path_forward_cost(&disk(), &[vehicle(), company()], &[hop], 20_000.0);
        assert!((f2 - 520.825).abs() < 1e-6, "got {f2}");
    }

    #[test]
    fn table16_p1_forward_cost_shape() {
        // F1 = v.drivetrain.engine: hop 1 touches all Vehicle pages and
        // 20000 refs; hop 2 starts from the 10000 distinct drivetrains.
        // Paper prints 771.825; our per-hop application of §6.1 gives
        // 775.33 (+0.45%) — the residual is documented in EXPERIMENTS.md.
        let hops = [
            PathHop {
                fan: 1.0,
                totref: 10_000.0,
                totlinks: 20_000.0,
            },
            PathHop {
                fan: 1.0,
                totref: 10_000.0,
                totlinks: 10_000.0,
            },
        ];
        let f1 = path_forward_cost(
            &disk(),
            &[vehicle(), drivetrain(), engine()],
            &hops,
            20_000.0,
        );
        assert!(
            (f1 - 771.825).abs() / 771.825 < 0.01,
            "within 1% of Table 16: got {f1}"
        );
        // And the ordering property that actually matters: F1 > F2.
        let hop2 = PathHop {
            fan: 1.0,
            totref: 20_000.0,
            totlinks: 20_000.0,
        };
        let f2 = path_forward_cost(&disk(), &[vehicle(), company()], &[hop2], 20_000.0);
        assert!(f1 > f2);
    }

    #[test]
    fn forward_cost_grows_with_k() {
        let p = disk();
        let c = vehicle();
        let small = forward_traversal_cost(&p, 10.0, &c, 1.0);
        let large = forward_traversal_cost(&p, 10_000.0, &c, 1.0);
        assert!(small < large);
        // k=0 costs nothing.
        assert_eq!(forward_traversal_cost(&p, 0.0, &c, 1.0), 0.0);
    }

    #[test]
    fn backward_cost_includes_both_scans_unless_cached() {
        let p = disk();
        let with = backward_traversal_cost(
            &p,
            100.0,
            10.0,
            &vehicle(),
            &engine(),
            1.0,
            DEFAULT_CPU_COST,
            false,
        );
        let without = backward_traversal_cost(
            &p,
            100.0,
            10.0,
            &vehicle(),
            &engine(),
            1.0,
            DEFAULT_CPU_COST,
            true,
        );
        assert!((with - without - seqcost(&p, engine().nbpages)).abs() < 1e-9);
    }

    #[test]
    fn hash_partition_cheaper_than_forward_for_full_extents() {
        // Joining everything: chasing 20000 pointers randomly loses to
        // 3 partitioned sequential passes — this is why Example 8.2 picks
        // HASH_PARTITION for the full-extent joins.
        let p = disk();
        let j = JoinInputs {
            k_c: 20_000.0,
            k_d: 10_000.0,
            c: vehicle(),
            d: drivetrain(),
            fan: 1.0,
            totref: 10_000.0,
            index: None,
            d_already_accessed: false,
            cpu_cost: DEFAULT_CPU_COST,
            c_in_memory: false,
            d_in_memory: false,
        };
        let ftc = join_cost(&p, JoinMethod::ForwardTraversal, &j).unwrap();
        let hhc = join_cost(&p, JoinMethod::HashPartition, &j).unwrap();
        assert!(hhc < ftc, "hhc={hhc} ftc={ftc}");
    }

    #[test]
    fn forward_beats_hash_for_few_starting_objects() {
        // With one qualifying C-object already in memory (a prior
        // operator's output, like T1 in Example 8.1), chasing one pointer
        // beats hash-partitioning — the crossover the optimizer exploits
        // after a selective predicate.
        let p = disk();
        let j = JoinInputs {
            c_in_memory: true,
            d_in_memory: false,
            k_c: 1.0,
            k_d: 10_000.0,
            c: vehicle(),
            d: drivetrain(),
            fan: 1.0,
            totref: 10_000.0,
            index: None,
            d_already_accessed: false,
            cpu_cost: DEFAULT_CPU_COST,
        };
        let ftc = join_cost(&p, JoinMethod::ForwardTraversal, &j).unwrap();
        let hhc = join_cost(&p, JoinMethod::HashPartition, &j).unwrap();
        assert!(ftc < hhc, "ftc={ftc} hhc={hhc}");
    }

    #[test]
    fn binary_join_index_requires_index() {
        let p = disk();
        let mut j = JoinInputs {
            k_c: 100.0,
            k_d: 100.0,
            c: vehicle(),
            d: drivetrain(),
            fan: 1.0,
            totref: 10_000.0,
            index: None,
            d_already_accessed: false,
            cpu_cost: DEFAULT_CPU_COST,
            c_in_memory: false,
            d_in_memory: false,
        };
        assert_eq!(join_cost(&p, JoinMethod::BinaryJoinIndex, &j), None);
        j.index = Some(IndexParams {
            order: 100.0,
            levels: 2,
            leaves: 200.0,
            keysize: 14,
            unique: false,
        });
        assert!(join_cost(&p, JoinMethod::BinaryJoinIndex, &j).unwrap() > 0.0);
    }

    #[test]
    fn best_join_method_picks_minimum() {
        let p = disk();
        let j = JoinInputs {
            k_c: 20_000.0,
            k_d: 10_000.0,
            c: vehicle(),
            d: drivetrain(),
            fan: 1.0,
            totref: 10_000.0,
            index: None,
            d_already_accessed: false,
            cpu_cost: DEFAULT_CPU_COST,
            c_in_memory: false,
            d_in_memory: false,
        };
        let (method, cost) = best_join_method(&p, &j);
        for m in JoinMethod::ALL {
            if let Some(other) = join_cost(&p, m, &j) {
                assert!(cost <= other + 1e-12, "{method:?} not minimal vs {m:?}");
            }
        }
    }

    #[test]
    fn plan_names_match_paper_spelling() {
        assert_eq!(JoinMethod::HashPartition.plan_name(), "HASH_PARTITION");
        assert_eq!(
            JoinMethod::ForwardTraversal.plan_name(),
            "FORWARD_TRAVERSAL"
        );
    }
}
