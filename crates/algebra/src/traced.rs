//! Span-wrapped algebra operators.
//!
//! Thin adapters over [`ops::select`](crate::ops::select) and
//! [`join::join`](crate::join::join) that run the operator inside a
//! `mood-trace` span named `op:SELECT` / `op:JOIN(<METHOD>)`, recording the
//! result cardinality and the disk-counter delta. Callers driving the
//! algebra directly (benches, the algebra tests) get the same per-operator
//! observability the MOODSQL executor produces, without threading a tracer
//! through every operator signature.

use mood_catalog::Catalog;
use mood_storage::DiskMetrics;
use mood_trace::Tracer;

use crate::collection::{Collection, Obj};
use crate::error::Result;
use crate::join::{join, JoinMethod, JoinRhs};
use crate::ops::{select, Predicate};

/// [`select`] inside an `op:SELECT` span.
pub fn traced_select(
    tracer: &Tracer,
    metrics: &DiskMetrics,
    catalog: &Catalog,
    arg: &Collection,
    p: Predicate<'_>,
) -> Result<Collection> {
    let mut span = tracer.span("op:SELECT", metrics);
    let out = select(catalog, arg, p)?;
    span.set_rows(out.len() as u64);
    Ok(out)
}

/// [`join`] inside an `op:JOIN(<METHOD>)` span.
pub fn traced_join(
    tracer: &Tracer,
    metrics: &DiskMetrics,
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    method: JoinMethod,
) -> Result<Vec<(Obj, Obj)>> {
    let mut span = tracer.span(format!("op:JOIN({})", method.plan_name()), metrics);
    let pairs = join(catalog, left, attr, rhs, method)?;
    span.set_rows(pairs.len() as u64);
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::RingBuffer;

    #[test]
    fn traced_select_emits_an_operator_span() {
        let sm = std::sync::Arc::new(mood_storage::StorageManager::in_memory());
        let catalog = Catalog::create(sm.clone()).unwrap();
        let builder = mood_catalog::ClassBuilder::class("C")
            .attribute("x", mood_datamodel::TypeDescriptor::integer());
        catalog.define_class(builder).unwrap();
        for i in 0..4 {
            catalog
                .new_object(
                    "C",
                    mood_datamodel::Value::tuple(vec![("x", mood_datamodel::Value::Integer(i))]),
                )
                .unwrap();
        }
        let tracer = Tracer::new();
        let ring = RingBuffer::new(8);
        tracer.subscribe(ring.clone());

        let extent = crate::ops::bind_class(&catalog, "C", false, &[]).unwrap();
        let kept = traced_select(&tracer, sm.metrics(), &catalog, &extent, &|o| {
            Ok(o.value.field("x").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 2.0)
        })
        .unwrap();
        assert_eq!(kept.len(), 2);

        let spans = ring.named("op:SELECT");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].rows, Some(2));
    }
}
