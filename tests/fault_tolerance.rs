//! Fault-tolerance integration tests: page checksums, WAL-based page
//! repair, retrying disk, deadlock detection, and degraded mode —
//! exercised end to end through the SQL surface.
//!
//! Everything here is deterministic: faults come from pinned
//! [`FaultPlan`]s, backoff sleeps are injected (no wall clock), and the
//! deadlock schedules synchronize on the lock manager's own wait
//! counter. The `#[ignore]`d sweeps widen the same scenarios to every
//! fault point; CI runs them in the non-gating crash-sweep job.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mood_core::{Answer, Mood, Value};
use mood_storage::{
    Disk, FaultPlan, FaultyDisk, FileDisk, FileLog, LockMode, Page, RetryDisk, StorageError,
    StorageManager, PAGE_USABLE,
};

static RUN: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mood-faulttol-{tag}-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Open a file-backed database whose disk is wrapped by `plan`. The log
/// is clean: these tests fault the page device, not the WAL.
fn open_pooled(dir: &Path, plan: Arc<FaultPlan>, frames: usize) -> Mood {
    let fd = FileDisk::open(dir.join("pages")).unwrap();
    let disk: Arc<dyn Disk> = Arc::new(FaultyDisk::with_plan(fd, plan));
    let log = Box::new(FileLog::open(dir.join("wal.log")).unwrap());
    let sm = StorageManager::with_parts(disk, log, frames).unwrap();
    Mood::open_with_storage(Arc::new(sm), dir).unwrap()
}

fn open_faulted(dir: &Path, plan: Arc<FaultPlan>) -> Mood {
    open_pooled(dir, plan, 64)
}

type Ledger = BTreeMap<i32, i32>;

/// Commit an indexed Account population. All of it lands in the WAL as
/// committed after-images — the repair source for every test. The `pad`
/// attribute bloats each record past 300 bytes so the heap spans many
/// pages: against a tiny pool that working set forces evictions
/// (write-backs) and re-reads, the traffic checksums protect.
fn seed_accounts(db: &Mood) {
    db.execute("CREATE CLASS Account TUPLE (id Integer, balance Integer, pad String)")
        .unwrap();
    db.execute("CREATE UNIQUE BTREE INDEX ON Account(id)")
        .unwrap();
    let pad = "x".repeat(300);
    for i in 1..=120 {
        db.execute(&format!("new Account <{i}, {}, '{pad}'>", i * 10))
            .unwrap();
    }
}

/// Read back the whole class two ways — sequential scan and indexed
/// point queries — so both the heap and the B+-tree pages get read (and
/// verified) on the way.
fn read_workload(db: &Mood) -> Ledger {
    let mut led = Ledger::new();
    let mut cur = db.query("SELECT a.id, a.balance FROM Account a").unwrap();
    while let Some(row) = cur.next() {
        let (Value::Integer(id), Value::Integer(bal)) = (&row[0], &row[1]) else {
            panic!("non-integer Account row: {row:?}");
        };
        led.insert(*id, *bal);
    }
    for id in [1, 13, 27, 40, 77, 120] {
        let mut cur = db
            .query(&format!(
                "SELECT a.balance FROM Account a WHERE a.id = {id}"
            ))
            .unwrap();
        let row = cur.next().expect("point query must find the row");
        assert_eq!(Value::Integer(led[&id]), row[0], "index/heap disagree");
    }
    led
}

/// Fetch one metric's rendered value from `SHOW METRICS`.
fn metric_value(db: &Mood, name: &str) -> String {
    let Answer::Rows(result) = db.execute("SHOW METRICS").unwrap() else {
        panic!("SHOW METRICS must return rows");
    };
    let row = result
        .rows
        .iter()
        .find(|row| row[0] == Value::String(name.into()))
        .unwrap_or_else(|| panic!("metric {name} missing from SHOW METRICS"));
    match &row[1] {
        Value::String(s) => s.clone(),
        other => panic!("metric {name} has non-string value {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Checksums and WAL-based page repair
// ----------------------------------------------------------------------

/// A tiny buffer pool: seeding and scanning 40 rows plus the catalog
/// and index churns every frame, so committed pages keep getting
/// written back (stamped) and re-read from the device (verified). That
/// read/write-back traffic is the bit-flip target — `Mood` checkpoints
/// (truncating the WAL) at the end of every open, so only corruption of
/// pages committed *since* open has a repair image, and that is exactly
/// the traffic a live engine produces.
const TINY_POOL: usize = 8;

/// One sweep step in a fresh directory: arm a one-shot bit flip at disk
/// op `k`, seed and read everything twice, and demand results identical
/// to the clean run. Returns how many pages were repaired from the WAL.
fn bit_flip_run(baseline: &Ledger, k: u64) -> u64 {
    let dir = fresh_dir("bitflip-k");
    let plan = FaultPlan::bit_flip_at(k, 0x5eed_0000 ^ k);
    let db = open_pooled(&dir, plan, TINY_POOL);
    seed_accounts(&db);
    // Two passes: the first may be the one whose write-back gets
    // flipped; the second re-reads every page from the device.
    assert_eq!(
        &read_workload(&db),
        baseline,
        "first read diverged with a bit flip at disk op {k}"
    );
    assert_eq!(
        &read_workload(&db),
        baseline,
        "re-read diverged with a bit flip at disk op {k}"
    );
    let repairs = db.engine_metrics().page_repairs;
    if repairs > 0 {
        // The repair is visible at the SQL surface too.
        let shown: u64 = metric_value(&db, "page.repairs").parse().unwrap();
        assert_eq!(shown, repairs, "SHOW METRICS disagrees with the registry");
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    repairs
}

/// Clean run of the same schedule, returning the expected results plus
/// the op domain for the sweep: `(ledger, first op after open, total)`.
fn bit_flip_domain() -> (Ledger, u64, u64) {
    let dir = fresh_dir("bitflip-dry");
    let dry = FaultPlan::disarmed();
    let db = open_pooled(&dir, dry.clone(), TINY_POOL);
    let after_open = dry.ops();
    seed_accounts(&db);
    let baseline = read_workload(&db);
    assert_eq!(read_workload(&db), baseline);
    let total = dry.ops();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(total > after_open, "the workload must hit the device");
    (baseline, after_open, total)
}

#[test]
fn bit_flips_are_detected_and_repaired_from_the_wal() {
    let (baseline, after_open, total) = bit_flip_domain();
    // Sample fault points across the post-open domain (flips during
    // bootstrap land before the open-time checkpoint truncates their
    // repair images — a corrupt page there is detected but torn for
    // good, which the unrepairable-corruption test covers instead).
    // Flips on non-write ops are no-ops by design: silent corruption is
    // a write phenomenon.
    let step = ((total - after_open) / 12).max(1);
    let mut total_repairs = 0;
    let mut k = after_open + 1;
    while k <= total {
        total_repairs += bit_flip_run(&baseline, k);
        k += step;
    }
    assert!(
        total_repairs >= 1,
        "no sampled bit flip was caught by a checksum — detection is dead"
    );
}

#[test]
fn checksum_roundtrip_over_seeded_random_pages() {
    // SplitMix64: the same generator the fault plans use.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..200 {
        let mut p = Page::new();
        for b in p.data[..PAGE_USABLE].iter_mut() {
            *b = next() as u8;
        }
        // Unstamped pages (no trailer magic) are trusted: fresh
        // allocations were never checksummed and must read back clean.
        assert!(
            p.verify_checksum().is_ok(),
            "round {round}: unstamped page rejected"
        );
        p.stamp_checksum();
        assert!(
            p.verify_checksum().is_ok(),
            "round {round}: stamp/verify roundtrip failed"
        );
        // Any single-byte corruption in the covered region is detected...
        let off = (next() as usize) % PAGE_USABLE;
        let mask = (next() as u8) | 1; // nonzero: the byte really changes
        p.data[off] ^= mask;
        let (expected, actual) = p
            .verify_checksum()
            .expect_err("round {round}: corruption went unnoticed");
        assert_ne!(expected, actual);
        // ...and undoing it restores validity.
        p.data[off] ^= mask;
        assert!(p.verify_checksum().is_ok());
    }
}

// ----------------------------------------------------------------------
// Retrying disk
// ----------------------------------------------------------------------

/// Reopen the seeded database behind a `RetryDisk` over a device that
/// fails its first `n` operations, with an injected sleeper. Returns the
/// recorded backoff sleeps.
fn retry_run(dir: &Path, baseline: &Ledger, n: u64) -> Vec<u64> {
    let sleeps = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let fd = FileDisk::open(dir.join("pages")).unwrap();
    let faulty = FaultyDisk::with_plan(fd, FaultPlan::fail_n_then_heal(n));
    let recorder = sleeps.clone();
    let retry = RetryDisk::with_backoff(
        faulty,
        vec![1, 2, 4, 8],
        Box::new(move |ms| recorder.lock().push(ms)),
    );
    let disk: Arc<dyn Disk> = Arc::new(retry);
    let log = Box::new(FileLog::open(dir.join("wal.log")).unwrap());
    // Recovery's first page write eats the injected failures; the
    // backoff schedule (4 retries) outlasts them.
    let sm = StorageManager::with_parts(disk, log, 64).unwrap();
    let db = Mood::open_with_storage(Arc::new(sm), dir).unwrap();
    assert_eq!(&read_workload(&db), baseline, "data diverged after retries");
    let metrics = db.engine_metrics();
    assert_eq!(metrics.io_retries, n, "each injected failure costs one retry");
    assert_eq!(metrics.io_gave_up, 0, "the schedule must outlast {n} faults");
    // Registry discovery surfaces the wrapper's counters in SQL.
    assert_eq!(metric_value(&db, "io.retries"), n.to_string());
    assert_eq!(metric_value(&db, "io.gave_up"), "0");
    let recorded = sleeps.lock().clone();
    recorded
}

#[test]
fn transient_disk_faults_are_ridden_out_with_backoff() {
    let dir = fresh_dir("retry");
    let baseline = {
        let db = open_faulted(&dir, FaultPlan::disarmed());
        seed_accounts(&db);
        read_workload(&db)
    };
    // Three consecutive failures, then the device heals: the first
    // recovery write retries through exactly the 1ms/2ms/4ms prefix of
    // the schedule — all injected, no wall clock.
    assert_eq!(retry_run(&dir, &baseline, 3), vec![1, 2, 4]);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Deadlock detection through the SQL surface
// ----------------------------------------------------------------------

fn two_class_db() -> Mood {
    let db = Mood::in_memory();
    db.execute("CREATE CLASS Alpha TUPLE (id Integer, v Integer)")
        .unwrap();
    db.execute("CREATE CLASS Beta TUPLE (id Integer, v Integer)")
        .unwrap();
    db.execute("new Alpha <1, 10>").unwrap();
    db.execute("new Beta <1, 20>").unwrap();
    db
}

fn read_one(db: &Mood, sql: &str) -> i32 {
    let mut cur = db.query(sql).unwrap();
    let row = cur.next().expect("row must exist");
    let Value::Integer(v) = row[0] else {
        panic!("non-integer value: {row:?}");
    };
    v
}

#[test]
fn deadlock_aborts_the_rival_and_the_session_commits() {
    let db = two_class_db();
    let locks = db.storage().locks().clone();

    db.execute("BEGIN").unwrap();
    db.execute("UPDATE Alpha a SET v = 11 WHERE a.id = 1").unwrap(); // holds class:Alpha

    // A rival with the largest possible owner id: always the youngest
    // cycle member, hence always the victim.
    const RIVAL: u64 = u64::MAX;
    locks
        .acquire(RIVAL, "class:Beta", LockMode::Exclusive)
        .unwrap();
    let waits_before = locks.wait_count();
    let rival_locks = locks.clone();
    let rival = std::thread::spawn(move || {
        let err = rival_locks
            .acquire(RIVAL, "class:Alpha", LockMode::Exclusive)
            .unwrap_err();
        rival_locks.release_all(RIVAL); // the doomed rival aborts
        err
    });
    // Let the rival block on class:Alpha before closing the cycle.
    while locks.wait_count() == waits_before {
        std::thread::yield_now();
    }

    // This statement closes the cycle; detection dooms the rival within
    // the pass and the statement proceeds once the rival lets go.
    db.execute("UPDATE Beta b SET v = 21 WHERE b.id = 1").unwrap();
    db.execute("COMMIT").unwrap();

    match rival.join().unwrap() {
        StorageError::Deadlock { victim, cycle } => {
            assert_eq!(victim, RIVAL);
            assert_eq!(cycle.len(), 2, "cycle is session <-> rival: {cycle:?}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
    assert_eq!(read_one(&db, "SELECT a.v FROM Alpha a WHERE a.id = 1"), 11);
    assert_eq!(read_one(&db, "SELECT b.v FROM Beta b WHERE b.id = 1"), 21);
    assert_eq!(locks.deadlock_count(), 1);
    assert_eq!(
        locks.timeout_count(),
        0,
        "detection must beat the timeout backstop"
    );
    assert_eq!(metric_value(&db, "lock.deadlocks"), "1");
}

#[test]
fn deadlock_victim_statement_rolls_back_and_the_transaction_survives() {
    let db = two_class_db();
    let locks = db.storage().locks().clone();

    db.execute("BEGIN").unwrap();
    db.execute("UPDATE Alpha a SET v = 11 WHERE a.id = 1").unwrap();

    // A rival with owner id 0: older than any transaction id, so the
    // session itself is the youngest cycle member — and the victim.
    const RIVAL: u64 = 0;
    locks
        .acquire(RIVAL, "class:Beta", LockMode::Exclusive)
        .unwrap();
    let waits_before = locks.wait_count();
    let rival_locks = locks.clone();
    let rival = std::thread::spawn(move || {
        // Blocks until the session's COMMIT releases class:Alpha.
        let granted = rival_locks.acquire(RIVAL, "class:Alpha", LockMode::Exclusive);
        rival_locks.release_all(RIVAL);
        granted
    });
    while locks.wait_count() == waits_before {
        std::thread::yield_now();
    }

    // The session closes the cycle and is its youngest member: the
    // statement fails with Deadlock on the spot...
    let err = db
        .execute("UPDATE Beta b SET v = 99 WHERE b.id = 1")
        .unwrap_err();
    assert!(
        err.to_string().contains("deadlock detected"),
        "expected a deadlock error, got: {err}"
    );

    // ...but only the statement died (savepoint rollback). The
    // transaction is alive: it keeps working and commits.
    db.execute("UPDATE Alpha a SET v = 12 WHERE a.id = 1").unwrap();
    db.execute("COMMIT").unwrap();

    rival
        .join()
        .unwrap()
        .expect("the surviving rival gets class:Alpha after the commit");
    assert_eq!(read_one(&db, "SELECT a.v FROM Alpha a WHERE a.id = 1"), 12);
    assert_eq!(
        read_one(&db, "SELECT b.v FROM Beta b WHERE b.id = 1"),
        20,
        "the aborted statement's write must not surface"
    );
    assert!(locks.deadlock_count() >= 1);
    assert_eq!(locks.timeout_count(), 0);
}

// ----------------------------------------------------------------------
// Degraded mode
// ----------------------------------------------------------------------

#[test]
fn degraded_mode_refuses_writes_until_healed() {
    let db = Mood::in_memory();
    db.execute("CREATE CLASS Note TUPLE (id Integer)").unwrap();
    db.execute("new Note <1>").unwrap();
    assert_eq!(metric_value(&db, "storage.degraded"), "no");

    let health = db.storage().health();
    health.mark_degraded("simulated device failure");

    // Writes are refused with the reason...
    let err = db.execute("new Note <2>").unwrap_err();
    assert!(
        err.to_string().contains("read-only (degraded mode)"),
        "unexpected refusal: {err}"
    );
    // ...DDL too...
    assert!(db
        .execute("CREATE CLASS Blocked TUPLE (id Integer)")
        .is_err());
    // ...while reads keep working and the flag is visible in SQL.
    assert_eq!(read_one(&db, "SELECT n.id FROM Note n WHERE n.id = 1"), 1);
    assert_eq!(
        metric_value(&db, "storage.degraded"),
        "yes (simulated device failure)"
    );

    health.heal();
    db.execute("new Note <2>").unwrap();
    assert_eq!(metric_value(&db, "storage.degraded"), "no");
}

// ----------------------------------------------------------------------
// Extended sweeps — every fault point. Run by the CI crash-sweep job
// with `--ignored`; not gating.
// ----------------------------------------------------------------------

#[test]
#[ignore = "exhaustive sweep; run with --ignored in the CI crash-sweep job"]
fn sweep_every_bit_flip_point() {
    let (baseline, after_open, total) = bit_flip_domain();
    let mut total_repairs = 0;
    for k in after_open + 1..=total {
        total_repairs += bit_flip_run(&baseline, k);
    }
    assert!(total_repairs >= 1);
}

#[test]
#[ignore = "exhaustive sweep; run with --ignored in the CI crash-sweep job"]
fn sweep_retry_depths() {
    let dir = fresh_dir("retry-sweep");
    let baseline = {
        let db = open_faulted(&dir, FaultPlan::disarmed());
        seed_accounts(&db);
        read_workload(&db)
    };
    // Every survivable failure depth: the schedule has four entries, so
    // up to four consecutive faults get ridden out.
    let schedule = [1u64, 2, 4, 8];
    for n in 1..=4u64 {
        assert_eq!(
            retry_run(&dir, &baseline, n),
            schedule[..n as usize].to_vec(),
            "backoff prefix mismatch at depth {n}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
