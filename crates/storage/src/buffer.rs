//! Sharded buffer pool with scan-resistant clock (second-chance) replacement
//! and sequential readahead.
//!
//! The pool is split into N shards (default one per 64 frames, minimum 4,
//! never more shards than frames); each shard owns its own frame set, page
//! map, clock hand, mutex and condvar. Pages map to shards round-robin by
//! page number (offset per file), so consecutive pages of one file spread
//! across all shards — a sequential scan drives every shard instead of
//! convoying on one lock, and a transaction that pins K consecutive pages
//! under no-steal pins ~K/N per shard, keeping the effective exhaustion
//! threshold at the old whole-pool capacity.
//!
//! Access is closure-based: `with_page` / `with_page_mut` pin the frame for
//! the duration of the callback only, which keeps the API free of guard
//! lifetimes. Callbacks must not re-enter the pool (the higher layers
//! materialize node/record data into owned values before touching another
//! page, so nesting never occurs in practice; a debug re-entrancy check
//! enforces it).
//!
//! Disk *reads* run outside the shard lock through the same checkout
//! protocol: a miss (and every readahead page) first publishes its frame in
//! the shard map marked `checked_out`, then reads with the lock dropped.
//! The reservation makes concurrent same-page accessors wait on the shard
//! condvar and keeps eviction away from the frame, so no other thread can
//! load, dirty and write back the page while the read is in flight — the
//! read can never install a stale image over a newer committed one.
//! Eviction write-backs of dirty victims still happen under the shard lock.
//!
//! Every *logical* access is classified by the caller as sequential, random
//! or index ([`AccessKind`]); the pool records a physical read only on a
//! miss, so the [`DiskMetrics`] counters reflect real I/O with caching — the
//! paper's worst-case cost formulas are recovered by sizing the pool small.
//!
//! Replacement is scan-resistant: frames loaded by sequential accesses (and
//! by readahead) enter at the clock's *cold* position, and eviction prefers
//! cold frames, touching hot frames' reference bits only when no cold frame
//! is evictable. A full-extent sweep therefore recycles its own pages and
//! cannot flush the hot set (B-tree roots, inner nodes) — the moral
//! equivalent of midpoint insertion in an LRU chain. A cold frame promotes
//! to hot the first time a random or index access hits it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::disk::Disk;
use crate::error::{Result, StorageError};
use crate::metrics::{AccessKind, DiskMetrics, MetricsSnapshot};
use crate::oid::{FileId, PageId};
use crate::page::Page;

/// Supplies a known-good image of a page (typically the last committed
/// after-image in the WAL) when a disk read fails checksum verification.
/// `Ok(None)` means the source has no image for the page — corruption then
/// surfaces as [`StorageError::PageCorrupt`].
pub type PageRepairer = Box<dyn Fn(FileId, PageId) -> Result<Option<Page>> + Send + Sync>;

/// Fault-tolerance state shared between a [`BufferPool`], its owning
/// storage manager, and the metrics registry.
///
/// *Degraded mode*: a page write-back or WAL-append failure that survives
/// the retry layer means the engine can no longer guarantee durability, so
/// it flips to read-only — reads keep working from cache/disk, writes are
/// refused with [`StorageError::Degraded`] until [`heal`](Self::heal). The
/// first failure's reason is kept (later failures are symptoms).
#[derive(Debug, Default)]
pub struct PoolHealth {
    degraded: std::sync::atomic::AtomicBool,
    reason: Mutex<String>,
    page_repairs: AtomicU64,
}

impl PoolHealth {
    /// Is the engine refusing writes?
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Why the engine degraded (empty when healthy).
    pub fn reason(&self) -> String {
        self.reason.lock().clone()
    }

    /// Flip to read-only. The first caller's reason wins; repeat failures
    /// while already degraded are dropped.
    pub fn mark_degraded(&self, reason: &str) {
        let mut r = self.reason.lock();
        if !self.degraded.swap(true, Ordering::AcqRel) {
            *r = reason.to_string();
        }
    }

    /// Clear degraded mode (operator intervention / tests after the
    /// underlying fault is fixed).
    pub fn heal(&self) {
        let mut r = self.reason.lock();
        r.clear();
        self.degraded.store(false, Ordering::Release);
    }

    /// Refuse the operation if degraded.
    pub fn check_writable(&self) -> Result<()> {
        if self.is_degraded() {
            Err(StorageError::Degraded {
                reason: self.reason(),
            })
        } else {
            Ok(())
        }
    }

    /// Pages reconstructed from the WAL after a checksum mismatch.
    pub fn page_repairs(&self) -> u64 {
        self.page_repairs.load(Ordering::Relaxed)
    }

    fn record_repair(&self) {
        self.page_repairs.fetch_add(1, Ordering::Relaxed);
    }
}

/// Largest readahead batch (pages); the effective window is also capped at
/// half the smallest shard so prefetched pages cannot thrash tiny pools.
const MAX_READAHEAD: usize = 8;

struct Frame {
    key: Option<(FileId, PageId)>,
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// True while a callback holds the page outside the shard lock; other
    /// threads touching the same page wait on the shard condvar.
    checked_out: bool,
    /// Loaded by a sequential sweep (or readahead) and not yet touched by a
    /// random/index access: evicted preferentially, so scans recycle their
    /// own frames instead of flushing the hot set.
    cold: bool,
}

/// A page's state captured at its first write inside a transaction (or
/// statement): the bytes to restore on rollback and whether the frame was
/// already dirty, so rollback can put the dirty flag back too.
struct UndoEntry {
    before: Page,
    was_dirty: bool,
}

struct StmtEntry {
    before: Page,
    was_dirty: bool,
    /// First dirtied by *this* statement (not an earlier one in the same
    /// transaction) — statement rollback must also forget the
    /// transaction-level undo entry, returning the page to pre-txn state.
    fresh_in_txn: bool,
}

/// Undo bookkeeping for the (single) open transaction. The pool is the one
/// place that sees every page write, so it captures before-images here:
/// the redo-only WAL can replay committed work after a crash but cannot
/// undo a live transaction — that takes these images.
struct TxnTracker {
    undo: HashMap<(FileId, PageId), UndoEntry>,
    /// Statement-level savepoint: captured per page while a statement runs
    /// inside an explicit transaction, so a failing statement rolls back
    /// alone without taking the whole transaction with it.
    stmt: Option<HashMap<(FileId, PageId), StmtEntry>>,
}

/// Pool-level transaction slot. Lock order: a thread may take this mutex
/// *while holding a shard lock* (brief, never blocking), so nothing must
/// ever acquire a shard lock or wait on a shard condvar while holding it.
struct TxnSlot {
    tracker: Mutex<Option<TxnTracker>>,
    /// Signalled when the open transaction ends (single-writer gate).
    free: Condvar,
}

struct ShardState {
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageId), usize>,
    hand: usize,
    /// Occupied frames currently marked cold; `evict_one` skips the
    /// cold-first pass when a fully occupied shard has none.
    cold: usize,
}

/// Per-shard slice of the pool's accounting, mirroring the
/// [`MetricsSnapshot`] fields the pool records. Summing all shards'
/// snapshots componentwise reproduces exactly what the pool contributed to
/// the shared [`DiskMetrics`].
#[derive(Debug, Default)]
struct ShardCounters {
    seq_pages: AtomicU64,
    seq_batches: AtomicU64,
    rnd_pages: AtomicU64,
    idx_pages: AtomicU64,
    writes: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_misses: AtomicU64,
    buffer_evictions: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            seq_pages: self.seq_pages.load(Ordering::Relaxed),
            seq_batches: self.seq_batches.load(Ordering::Relaxed),
            rnd_pages: self.rnd_pages.load(Ordering::Relaxed),
            idx_pages: self.idx_pages.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            buffer_evictions: self.buffer_evictions.load(Ordering::Relaxed),
        }
    }
}

struct Shard {
    state: Mutex<ShardState>,
    returned: Condvar,
    counters: ShardCounters,
}

impl Shard {
    fn new(frames: usize) -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                frames: (0..frames)
                    .map(|_| Frame {
                        key: None,
                        page: Page::new(),
                        dirty: false,
                        pins: 0,
                        referenced: false,
                        checked_out: false,
                        cold: false,
                    })
                    .collect(),
                map: HashMap::new(),
                hand: 0,
                cold: 0,
            }),
            returned: Condvar::new(),
            counters: ShardCounters::default(),
        }
    }
}

/// A shared buffer pool over a [`Disk`].
pub struct BufferPool {
    disk: Arc<dyn Disk>,
    shards: Vec<Shard>,
    txn: TxnSlot,
    metrics: DiskMetrics,
    capacity: usize,
    /// No-steal discipline: pages dirtied by the open transaction are
    /// pinned in the pool (never evicted or flushed) until it commits.
    /// Durable (file-backed) managers set this; in-memory ones don't need
    /// it — their rollback path rewrites before-images through the disk.
    no_steal: bool,
    /// Nanoseconds threads spent blocked on shard locks and on the
    /// `returned` condvars (pool contention; the single-writer transaction
    /// gate is deliberate serialization and is not counted).
    wait_ns: Arc<AtomicU64>,
    /// Readahead window in pages; 0 disables prefetching (tiny pools).
    readahead: u32,
    /// Degraded-mode flag + repair counter, shared with the storage
    /// manager and the metrics registry.
    health: Arc<PoolHealth>,
    /// WAL-backed single-page repair hook; installed by the storage
    /// manager after recovery (plain pools read pages as-is).
    repairer: Mutex<Option<PageRepairer>>,
}

thread_local! {
    /// Per-thread re-entrancy guard: a callback on this thread must not call
    /// back into any pool (higher layers materialize data before the next
    /// page access).
    static IN_CALLBACK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl BufferPool {
    /// Shard count for a pool of `capacity` frames: one shard per 64
    /// frames, at least 4, but never more shards than frames.
    fn shards_for(capacity: usize) -> usize {
        (capacity / 64).max(4).min(capacity).max(1)
    }

    /// Pool with `capacity` frames over `disk`, reporting into `metrics`.
    pub fn new(disk: Arc<dyn Disk>, capacity: usize, metrics: DiskMetrics) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let n = Self::shards_for(capacity);
        let base = capacity / n;
        let extra = capacity % n;
        let shards: Vec<Shard> = (0..n)
            .map(|s| Shard::new(base + usize::from(s < extra)))
            .collect();
        // Prefetching into a shard smaller than twice the window would let
        // the readahead itself evict pages it just loaded; gate on the
        // smallest shard and disable entirely below 2 pages.
        let window = (base / 2).min(MAX_READAHEAD) as u32;
        BufferPool {
            disk,
            shards,
            txn: TxnSlot {
                tracker: Mutex::new(None),
                free: Condvar::new(),
            },
            metrics,
            capacity,
            no_steal: false,
            wait_ns: Arc::new(AtomicU64::new(0)),
            readahead: if window < 2 { 0 } else { window },
            health: Arc::new(PoolHealth::default()),
            repairer: Mutex::new(None),
        }
    }

    /// Like [`BufferPool::new`], but with the no-steal discipline: pages
    /// dirtied by the open transaction stay resident until it ends, which
    /// is what lets a redo-only log skip undo records. Durable managers
    /// use this; see the `no_steal` field.
    pub fn new_no_steal(disk: Arc<dyn Disk>, capacity: usize, metrics: DiskMetrics) -> Self {
        let mut pool = Self::new(disk, capacity, metrics);
        pool.no_steal = true;
        pool
    }

    /// Override the readahead window (0 disables prefetching). Benches use
    /// this to compare batched and unbatched scans on one pool size.
    pub fn with_readahead(mut self, window: u32) -> Self {
        self.readahead = window;
        self
    }

    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the frames are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Effective readahead window in pages (0 = disabled).
    pub fn readahead_window(&self) -> u32 {
        self.readahead
    }

    /// Total nanoseconds threads have spent blocked on shard locks or
    /// waiting for checked-out pages to come back.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Shared handle to the wait counter (the metrics registry surfaces it
    /// as `buffer.wait_ns`).
    pub fn wait_counter(&self) -> Arc<AtomicU64> {
        self.wait_ns.clone()
    }

    /// Shared fault-tolerance state: degraded flag + page-repair counter.
    pub fn health(&self) -> Arc<PoolHealth> {
        self.health.clone()
    }

    /// Install the WAL-backed page repairer. Called by the storage manager
    /// after recovery; reads that fail checksum verification consult it
    /// before surfacing [`StorageError::PageCorrupt`].
    pub fn set_repairer(&self, repairer: PageRepairer) {
        *self.repairer.lock() = Some(repairer);
    }

    /// Read a page from disk and verify its checksum trailer. On a
    /// mismatch, try to reconstruct the page from the repairer (the last
    /// committed WAL image): a successful repair is written back to disk so
    /// the next cold read is clean, and counted in
    /// [`PoolHealth::page_repairs`]. Unrepairable corruption surfaces as
    /// [`StorageError::PageCorrupt`] with the location and both checksums.
    fn read_page_checked(&self, file: FileId, page: PageId, buf: &mut Page) -> Result<()> {
        self.disk.read_page(file, page, buf)?;
        if let Err((expected, actual)) = buf.verify_checksum() {
            let repaired = self
                .repairer
                .lock()
                .as_ref()
                .and_then(|fix| fix(file, page).ok().flatten());
            match repaired {
                Some(image) => {
                    // Best-effort write-back of the good image; even if the
                    // disk refuses, the in-memory copy serves this read.
                    let _ = self.disk.write_page(file, page, &image);
                    *buf = image;
                    self.health.record_repair();
                }
                None => {
                    return Err(StorageError::PageCorrupt {
                        file,
                        page,
                        expected,
                        actual,
                    })
                }
            }
        }
        Ok(())
    }

    /// Stamp the page's checksum trailer and write it back, flipping the
    /// pool into degraded (read-only) mode if the disk refuses: a failed
    /// write-back means buffered committed data can no longer be persisted.
    fn write_back(&self, key: (FileId, PageId), page: &mut Page) -> Result<()> {
        page.stamp_checksum();
        self.disk.write_page(key.0, key.1, page).inspect_err(|e| {
            self.health
                .mark_degraded(&format!("page write-back failed: {e}"));
        })
    }

    /// Per-shard accounting snapshots, in shard order. Componentwise sums
    /// equal exactly what this pool recorded into its [`DiskMetrics`].
    pub fn shard_snapshots(&self) -> Vec<MetricsSnapshot> {
        self.shards.iter().map(|s| s.counters.snapshot()).collect()
    }

    fn shard_index(&self, key: (FileId, PageId)) -> usize {
        // Round-robin by page number, offset per file: consecutive pages of
        // one file land on consecutive shards (scans and no-steal pins
        // spread evenly), while different files start at different shards.
        let n = self.shards.len();
        (key.1 .0 as usize + (key.0 .0 as usize).wrapping_mul(0x9E37)) % n
    }

    /// Lock a shard, charging contended acquisitions to the wait counter.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardState> {
        if let Some(g) = shard.state.try_lock() {
            return g;
        }
        let t0 = Instant::now();
        let g = shard.state.lock();
        self.wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    /// Wait on a shard's `returned` condvar, charging the wait counter.
    fn wait_returned(&self, shard: &Shard, st: &mut MutexGuard<'_, ShardState>) {
        let t0 = Instant::now();
        shard.returned.wait(st);
        self.wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn record_read(&self, shard: &Shard, kind: AccessKind) {
        self.metrics.record_read(kind);
        let field = match kind {
            AccessKind::Sequential => &shard.counters.seq_pages,
            AccessKind::Random => &shard.counters.rnd_pages,
            AccessKind::Index => &shard.counters.idx_pages,
        };
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn record_write(&self, shard: &Shard) {
        self.metrics.record_write();
        shard.counters.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn record_hit(&self, shard: &Shard) {
        self.metrics.record_buffer_hit();
        shard.counters.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    fn record_miss(&self, shard: &Shard) {
        self.metrics.record_buffer_miss();
        shard.counters.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }

    fn record_eviction(&self, shard: &Shard) {
        self.metrics.record_buffer_eviction();
        shard
            .counters
            .buffer_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Read access to a page.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R> {
        self.access(file, page, kind, false, |p| f(p))
    }

    /// Write access to a page; the frame is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        self.access(file, page, kind, true, f)
    }

    fn access<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        write: bool,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        assert!(
            !IN_CALLBACK.with(|c| c.get()),
            "buffer pool callbacks must not re-enter the pool"
        );
        let key = (file, page);
        let shard = &self.shards[self.shard_index(key)];
        let mut st = self.lock_shard(shard);
        let idx = loop {
            match st.map.get(&key).copied() {
                Some(i) if st.frames[i].checked_out => {
                    // Another thread holds this page outside the lock; wait
                    // for it to come back, then retry the lookup (the frame
                    // cannot be evicted while pinned).
                    self.wait_returned(shard, &mut st);
                }
                Some(i) => {
                    self.record_hit(shard);
                    // A random/index hit promotes a scan-loaded frame into
                    // the hot set; sequential re-reads leave it cold.
                    if kind != AccessKind::Sequential && st.frames[i].cold {
                        st.frames[i].cold = false;
                        st.cold -= 1;
                    }
                    break i;
                }
                None => {
                    let i = match self.evict_one(shard, &mut st) {
                        Ok(i) => i,
                        Err(StorageError::PoolExhausted) => {
                            if st.frames.iter().any(|fr| fr.checked_out) {
                                // Every frame is pinned by an in-flight
                                // callback. Wait for one to be returned,
                                // then retry the lookup (another thread may
                                // even load this page for us in the
                                // meantime, turning this into a hit).
                                self.wait_returned(shard, &mut st);
                                continue;
                            }
                            // Nothing will be returned: the shard is full of
                            // pages pinned by the open transaction (no-steal).
                            // Surface the error so the statement aborts and
                            // rollback frees them.
                            return Err(StorageError::PoolExhausted);
                        }
                        Err(e) => return Err(e),
                    };
                    self.record_miss(shard);
                    self.record_read(shard, kind);
                    // Reserve the frame and publish it before reading: the
                    // map entry plus `checked_out` makes same-page accessors
                    // wait on the condvar and keeps eviction off the frame,
                    // so the read itself runs without the shard lock.
                    st.frames[i].key = Some(key);
                    st.frames[i].dirty = false;
                    st.frames[i].referenced = true;
                    st.frames[i].checked_out = true;
                    st.map.insert(key, i);
                    let mut buf = std::mem::take(&mut st.frames[i].page);
                    drop(st);
                    let read = self.read_page_checked(file, page, &mut buf);
                    st = self.lock_shard(shard);
                    st.frames[i].page = buf;
                    st.frames[i].checked_out = false;
                    if let Err(e) = read {
                        // Unpublish the reservation; woken waiters retry
                        // and surface their own errors.
                        st.map.remove(&key);
                        st.frames[i].key = None;
                        st.frames[i].referenced = false;
                        drop(st);
                        shard.returned.notify_all();
                        return Err(e);
                    }
                    st.frames[i].cold = kind == AccessKind::Sequential;
                    if st.frames[i].cold {
                        st.cold += 1;
                    }
                    break i;
                }
            }
        };
        st.frames[idx].referenced = true;
        st.frames[idx].pins += 1;
        if write {
            // First write inside a transaction (or statement): capture the
            // page's before-image so a live rollback can restore it — the
            // redo-only WAL cannot. The txn mutex nests briefly inside the
            // shard lock (see TxnSlot's lock-order note).
            let mut slot = self.txn.tracker.lock();
            if let Some(tr) = slot.as_mut() {
                let fresh = !tr.undo.contains_key(&key);
                if fresh {
                    tr.undo.insert(
                        key,
                        UndoEntry {
                            before: st.frames[idx].page.clone(),
                            was_dirty: st.frames[idx].dirty,
                        },
                    );
                }
                if let Some(stmt) = tr.stmt.as_mut() {
                    stmt.entry(key).or_insert_with(|| StmtEntry {
                        before: st.frames[idx].page.clone(),
                        was_dirty: st.frames[idx].dirty,
                        fresh_in_txn: fresh,
                    });
                }
            }
            drop(slot);
            st.frames[idx].dirty = true;
        }
        st.frames[idx].checked_out = true;
        // Temporarily move the page out so the callback runs without the
        // shard lock; `checked_out` makes same-page accessors wait above.
        let mut owned = std::mem::take(&mut st.frames[idx].page);
        drop(st);
        IN_CALLBACK.with(|c| c.set(true));
        let result = f(&mut owned);
        IN_CALLBACK.with(|c| c.set(false));
        let mut st = self.lock_shard(shard);
        st.frames[idx].page = owned;
        st.frames[idx].pins -= 1;
        st.frames[idx].checked_out = false;
        drop(st);
        shard.returned.notify_all();
        Ok(result)
    }

    /// Allocate a fresh page in `file`, run `init` on it, and return its id.
    pub fn new_page<R>(
        &self,
        file: FileId,
        init: impl FnOnce(&mut Page) -> R,
    ) -> Result<(PageId, R)> {
        let pid = self.disk.allocate_page(file)?;
        let r = self.with_page_mut(file, pid, AccessKind::Random, init)?;
        Ok((pid, r))
    }

    /// Prefetch up to `max` pages of `file` starting at `start`, reading
    /// each maximal run of non-resident pages as **one** contiguous disk
    /// batch (recorded via `record_sequential_batch`). Every missing page's
    /// frame is *reserved* — published in its shard map marked checked out —
    /// before the disk is touched, so a concurrent load-dirty-evict of the
    /// same page cannot slip between the batch read and the install: writers
    /// wait on the shard condvar for the fill instead, and the batch can
    /// never put a stale image over a newer committed one.
    ///
    /// Readahead is strictly best-effort: pages already resident, pages
    /// whose shard cannot free a frame, and runs whose batch read fails are
    /// skipped (their reservations released), never surfaced as errors —
    /// the scan's on-demand reads report anything real. Returns the number
    /// of pages installed.
    pub fn prefetch_sequential(&self, file: FileId, start: PageId, max: u32) -> u32 {
        let window = self.readahead.min(max);
        if window == 0 {
            return 0;
        }
        let total = match self.disk.page_count(file) {
            Ok(n) => n,
            Err(_) => return 0,
        };
        if start.0 >= total {
            return 0;
        }
        let end = total.min(start.0.saturating_add(window));
        // Reservation pass: (page, frame index, the frame's taken buffer).
        let mut reserved: Vec<(PageId, usize, Page)> = Vec::new();
        for p in start.0..end {
            let pid = PageId(p);
            let pkey = (file, pid);
            let shard = &self.shards[self.shard_index(pkey)];
            let mut st = self.lock_shard(shard);
            if st.map.contains_key(&pkey) {
                continue;
            }
            let i = match self.evict_one(shard, &mut st) {
                Ok(i) => i,
                Err(_) => continue,
            };
            st.frames[i].key = Some(pkey);
            st.frames[i].dirty = false;
            st.frames[i].referenced = true;
            st.frames[i].checked_out = true;
            st.map.insert(pkey, i);
            let buf = std::mem::take(&mut st.frames[i].page);
            reserved.push((pid, i, buf));
        }
        let mut installed = 0u32;
        let mut run_start = 0usize;
        while run_start < reserved.len() {
            let mut run_end = run_start + 1;
            while run_end < reserved.len() && reserved[run_end].0 .0 == reserved[run_end - 1].0 .0 + 1
            {
                run_end += 1;
            }
            let first = reserved[run_start].0;
            let run = &mut reserved[run_start..run_end];
            let mut bufs: Vec<Page> = run.iter_mut().map(|(_, _, b)| std::mem::take(b)).collect();
            // A checksum mismatch anywhere in the batch fails the whole
            // run: the reservations are released and the scan's on-demand
            // reads (which verify and repair per page) take over.
            let ok = self.disk.read_pages(file, first, &mut bufs).is_ok()
                && bufs.iter().all(|b| b.verify_checksum().is_ok());
            for ((_, _, slot), buf) in run.iter_mut().zip(bufs) {
                *slot = buf;
            }
            if ok {
                // Process totals: run-length sequential pages, one batch.
                // Shard slices: each page counts against its own shard; the
                // batch is attributed to the first page's shard — both sums
                // telescope.
                self.metrics.record_sequential_batch(run.len() as u64);
                self.shards[self.shard_index((file, first))]
                    .counters
                    .seq_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
            for (pid, i, buf) in run.iter_mut() {
                let pkey = (file, *pid);
                let shard = &self.shards[self.shard_index(pkey)];
                let mut st = self.lock_shard(shard);
                st.frames[*i].page = std::mem::take(buf);
                st.frames[*i].checked_out = false;
                if ok {
                    st.frames[*i].cold = true;
                    st.cold += 1;
                    shard.counters.seq_pages.fetch_add(1, Ordering::Relaxed);
                    installed += 1;
                } else {
                    // Failed batch: release the reservation; woken waiters
                    // fall back to on-demand reads.
                    st.map.remove(&pkey);
                    st.frames[*i].key = None;
                    st.frames[*i].referenced = false;
                }
                drop(st);
                shard.returned.notify_all();
            }
            run_start = run_end;
        }
        installed
    }

    fn is_txn_pinned(&self, key: (FileId, PageId)) -> bool {
        if !self.no_steal {
            return false;
        }
        self.txn
            .tracker
            .lock()
            .as_ref()
            .is_some_and(|tr| tr.undo.contains_key(&key))
    }

    fn evict_one(&self, shard: &Shard, st: &mut ShardState) -> Result<usize> {
        // Cold-first pass: free frames and scan-loaded (cold) frames only.
        // Hot frames' reference bits are untouched here, which is what
        // keeps a full-extent sweep from aging the hot set out. When a
        // fully occupied shard has no cold frames the pass cannot succeed,
        // so it is skipped (`st.cold` tracks exactly this).
        if st.cold > 0 || st.map.len() < st.frames.len() {
            if let Some(i) = self.sweep(shard, st, true)? {
                return Ok(i);
            }
        }
        // Classic two-pass clock over everything (first pass clears bits).
        if let Some(i) = self.sweep(shard, st, false)? {
            return Ok(i);
        }
        Err(StorageError::PoolExhausted)
    }

    fn sweep(&self, shard: &Shard, st: &mut ShardState, cold_only: bool) -> Result<Option<usize>> {
        for _ in 0..(2 * st.frames.len() + 1) {
            let i = st.hand;
            st.hand = (st.hand + 1) % st.frames.len();
            if cold_only && st.frames[i].key.is_some() && !st.frames[i].cold {
                continue;
            }
            if st.frames[i].pins > 0 || st.frames[i].checked_out {
                continue;
            }
            // No-steal: pages dirtied by the open transaction are pinned —
            // flushing them would put uncommitted bytes on disk that a
            // redo-only log could never undo after a crash. Only dirty
            // frames can be txn-pinned (the txn dirtied them and nothing
            // cleans them before commit), so the txn-mutex peek is skipped
            // for the clean majority.
            if st.frames[i].dirty && st.frames[i].key.is_some_and(|key| self.is_txn_pinned(key)) {
                continue;
            }
            if st.frames[i].referenced {
                st.frames[i].referenced = false;
                continue;
            }
            if let Some(key) = st.frames[i].key {
                if st.frames[i].dirty {
                    self.record_write(shard);
                    // Write back *before* detaching the frame, so an I/O
                    // error leaves the page mapped and dirty — the caller
                    // can surface or swallow the error without the pool
                    // losing its only up-to-date copy.
                    self.write_back(key, &mut st.frames[i].page)?;
                    st.frames[i].dirty = false;
                }
                if st.frames[i].cold {
                    st.frames[i].cold = false;
                    st.cold -= 1;
                }
                st.frames[i].key = None;
                st.map.remove(&key);
                self.record_eviction(shard);
            }
            return Ok(Some(i));
        }
        Ok(None)
    }

    /// Write all dirty frames back to disk (without dropping them). Under
    /// no-steal, pages dirtied by the open transaction are skipped — they
    /// reach disk only after their commit record is durable.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut st = self.lock_shard(shard);
            for i in 0..st.frames.len() {
                // A checked-out frame's page lives with the callback; wait
                // it out rather than flushing the blank placeholder.
                while st.frames[i].checked_out {
                    self.wait_returned(shard, &mut st);
                }
                if let (Some(key), true) = (st.frames[i].key, st.frames[i].dirty) {
                    if self.is_txn_pinned(key) {
                        continue;
                    }
                    self.record_write(shard);
                    self.write_back(key, &mut st.frames[i].page)?;
                    st.frames[i].dirty = false;
                }
            }
        }
        self.disk.sync()
    }

    /// Evict all frames belonging to `file`, writing dirty ones back first.
    /// Used when a file handle is retired; the data stays on disk.
    pub fn discard_file(&self, file: FileId) {
        for shard in &self.shards {
            let mut st = self.lock_shard(shard);
            let keys: Vec<_> = st.map.keys().filter(|(f, _)| *f == file).copied().collect();
            for key in keys {
                loop {
                    match st.map.get(&key).copied() {
                        Some(i) if st.frames[i].checked_out => {
                            self.wait_returned(shard, &mut st);
                        }
                        Some(i) => {
                            if st.frames[i].dirty {
                                self.record_write(shard);
                                // Best-effort write-back; a failing disk
                                // loses the frame (and degrades the pool).
                                let _ = self.write_back(key, &mut st.frames[i].page);
                            }
                            st.map.remove(&key);
                            st.frames[i].key = None;
                            st.frames[i].dirty = false;
                            st.frames[i].referenced = false;
                            if st.frames[i].cold {
                                st.frames[i].cold = false;
                                st.cold -= 1;
                            }
                            break;
                        }
                        None => break,
                    }
                }
            }
        }
        // File drops are not transactional (DDL autocommits): stop tracking
        // its pages so commit/rollback don't resurrect a dropped file.
        let mut slot = self.txn.tracker.lock();
        if let Some(tr) = slot.as_mut() {
            tr.undo.retain(|(f, _), _| *f != file);
            if let Some(stmt) = tr.stmt.as_mut() {
                stmt.retain(|(f, _), _| *f != file);
            }
        }
    }

    /// Number of frames currently caching pages (for tests).
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().map.len()).sum()
    }

    /// Is `page` of `file` currently cached? (test/bench introspection)
    pub fn is_resident(&self, file: FileId, page: PageId) -> bool {
        let key = (file, page);
        self.shards[self.shard_index(key)]
            .state
            .lock()
            .map
            .contains_key(&key)
    }

    /// How many frames — across *all* shards — currently hold `page` of
    /// `file`. Sharding must keep this at most 1; the stress tests assert
    /// it.
    pub fn frames_holding(&self, file: FileId, page: PageId) -> usize {
        let key = (file, page);
        self.shards
            .iter()
            .map(|s| {
                let st = s.state.lock();
                st.frames
                    .iter()
                    .filter(|fr| fr.key == Some(key))
                    .count()
            })
            .sum()
    }

    // ------------------------------------------------------------------
    // Transaction bookkeeping. The pool tracks a single open transaction
    // (MOOD's sessions serialize writers); `txn_begin` blocks until the
    // current one ends, giving single-writer semantics across sessions.
    // ------------------------------------------------------------------

    /// Open the transaction slot, blocking while another transaction holds
    /// it. From here until [`txn_end`](Self::txn_end) /
    /// [`txn_rollback`](Self::txn_rollback), every page write captures a
    /// before-image, and under no-steal the dirtied pages are pinned.
    pub fn txn_begin(&self) {
        let mut slot = self.txn.tracker.lock();
        while slot.is_some() {
            self.txn.free.wait(&mut slot);
        }
        *slot = Some(TxnTracker {
            undo: HashMap::new(),
            stmt: None,
        });
    }

    /// Is a transaction currently open?
    pub fn txn_active(&self) -> bool {
        self.txn.tracker.lock().is_some()
    }

    /// Current images of every page the open transaction dirtied, in
    /// deterministic (file, page) order — what the committer logs as
    /// after-images. Pages of files dropped mid-transaction are skipped.
    pub fn txn_dirty_pages(&self) -> Result<Vec<(FileId, PageId, Page)>> {
        let keys = {
            let slot = self.txn.tracker.lock();
            match slot.as_ref() {
                Some(tr) => {
                    let mut keys: Vec<_> = tr.undo.keys().copied().collect();
                    keys.sort();
                    keys
                }
                None => return Ok(Vec::new()),
            }
        };
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let shard = &self.shards[self.shard_index(key)];
            let mut st = self.lock_shard(shard);
            let resident = loop {
                match st.map.get(&key).copied() {
                    Some(i) if st.frames[i].checked_out => {
                        self.wait_returned(shard, &mut st);
                    }
                    Some(i) => break Some(st.frames[i].page.clone()),
                    None => break None,
                }
            };
            drop(st);
            match resident {
                Some(page) => out.push((key.0, key.1, page)),
                None => {
                    // Evicted (steal mode only). The disk holds the latest
                    // image; read it back for the log.
                    let mut p = Page::new();
                    match self.read_page_checked(key.0, key.1, &mut p) {
                        Ok(()) => out.push((key.0, key.1, p)),
                        Err(StorageError::UnknownFile(_))
                        | Err(StorageError::PageOutOfRange { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Close the transaction slot after a successful commit: drop the undo
    /// images and unpin the pages (they flush through normal eviction or
    /// checkpoints from here on).
    pub fn txn_end(&self) {
        *self.txn.tracker.lock() = None;
        self.txn.free.notify_all();
        for shard in &self.shards {
            shard.returned.notify_all();
        }
    }

    /// Roll the open transaction back: restore every captured before-image
    /// and close the slot. Returns whether the transaction had dirtied any
    /// pages. Restoration keeps going past per-page errors (dropped files)
    /// and reports the first real one.
    pub fn txn_rollback(&self) -> Result<bool> {
        let tracker = self.txn.tracker.lock().take();
        let tr = match tracker {
            Some(t) => t,
            None => return Ok(false),
        };
        let had_writes = !tr.undo.is_empty();
        let mut entries: Vec<_> = tr.undo.into_iter().collect();
        entries.sort_by_key(|(k, _)| *k);
        let mut first_err = None;
        for (key, e) in entries {
            if let Err(err) = self.restore_page(key, e.before, e.was_dirty) {
                first_err.get_or_insert(err);
            }
        }
        self.txn.free.notify_all();
        for shard in &self.shards {
            shard.returned.notify_all();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(had_writes),
        }
    }

    /// Open a statement-level savepoint inside the current transaction.
    /// No-op without an open transaction (autocommit wraps the statement
    /// in its own transaction instead).
    pub fn stmt_begin(&self) {
        if let Some(tr) = self.txn.tracker.lock().as_mut() {
            tr.stmt = Some(HashMap::new());
        }
    }

    /// Release the statement savepoint (the statement succeeded).
    pub fn stmt_end(&self) {
        if let Some(tr) = self.txn.tracker.lock().as_mut() {
            tr.stmt = None;
        }
    }

    /// Roll back just the current statement's writes, leaving earlier
    /// statements of the transaction intact.
    pub fn stmt_rollback(&self) -> Result<()> {
        let entries: Vec<((FileId, PageId), StmtEntry)> = {
            let mut slot = self.txn.tracker.lock();
            let tr = match slot.as_mut() {
                Some(t) => t,
                None => return Ok(()),
            };
            let stmt = match tr.stmt.take() {
                Some(m) => m,
                None => return Ok(()),
            };
            // Pages first touched by this statement return to their
            // pre-transaction state: forget their txn-level undo too.
            for (key, e) in &stmt {
                if e.fresh_in_txn {
                    tr.undo.remove(key);
                }
            }
            let mut v: Vec<_> = stmt.into_iter().collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        let mut first_err = None;
        for (key, e) in entries {
            if let Err(err) = self.restore_page(key, e.before, e.was_dirty) {
                first_err.get_or_insert(err);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Put a before-image back: into the frame if the page is resident
    /// (waiting out any in-flight callback on it), else straight to disk
    /// (steal mode can have flushed-and-evicted the uncommitted version).
    /// Vanished files/pages (dropped mid-transaction) are ignored.
    fn restore_page(&self, key: (FileId, PageId), mut before: Page, was_dirty: bool) -> Result<()> {
        let shard = &self.shards[self.shard_index(key)];
        let mut st = self.lock_shard(shard);
        loop {
            match st.map.get(&key).copied() {
                Some(i) if st.frames[i].checked_out => {
                    self.wait_returned(shard, &mut st);
                }
                Some(i) => {
                    st.frames[i].page = before;
                    // Under no-steal the disk still holds the pre-txn bytes,
                    // so a clean capture restores clean. In steal mode the
                    // uncommitted version may have been flushed — force a
                    // write-back.
                    st.frames[i].dirty = was_dirty || !self.no_steal;
                    return Ok(());
                }
                None => {
                    self.record_write(shard);
                    before.stamp_checksum();
                    return match self.disk.write_page(key.0, key.1, &before) {
                        Ok(()) => Ok(()),
                        Err(StorageError::UnknownFile(_))
                        | Err(StorageError::PageOutOfRange { .. }) => Ok(()),
                        Err(e) => {
                            self.health
                                .mark_degraded(&format!("page write-back failed: {e}"));
                            Err(e)
                        }
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;
    use crate::disk::MemDisk;
    use crate::page::PAGE_USABLE;

    fn pool(cap: usize) -> (BufferPool, FileId) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), cap, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        (pool, f)
    }

    #[test]
    fn read_your_writes_through_pool() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 42).unwrap();
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, f) = pool(2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let (pid, _) = pool.new_page(f, |p| p.data[0] = i).unwrap();
            pids.push(pid);
        }
        // All five pages exceed the 2-frame pool; earlier ones were evicted
        // and must come back from disk with their data intact.
        for (i, pid) in pids.iter().enumerate() {
            let v = pool
                .with_page(f, *pid, AccessKind::Random, |p| p.data[0])
                .unwrap();
            assert_eq!(v as usize, i);
        }
        assert!(pool.resident() <= 2);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        let before = pool.metrics().snapshot();
        for _ in 0..10 {
            pool.with_page(f, pid, AccessKind::Sequential, |_| {})
                .unwrap();
        }
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!(d.buffer_hits, 10);
        assert_eq!(d.buffer_misses, 0);
        assert_eq!(d.seq_pages, 0, "cached accesses cost no I/O");
    }

    #[test]
    fn misses_record_reads_by_kind() {
        let (pool, f) = pool(1);
        let (p0, _) = pool.new_page(f, |_| {}).unwrap();
        let (p1, _) = pool.new_page(f, |_| {}).unwrap();
        let before = pool.metrics().snapshot();
        // Ping-pong between two pages with a 1-frame pool: every access misses.
        pool.with_page(f, p0, AccessKind::Random, |_| {}).unwrap();
        pool.with_page(f, p1, AccessKind::Index, |_| {}).unwrap();
        pool.with_page(f, p0, AccessKind::Sequential, |_| {})
            .unwrap();
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!((d.rnd_pages, d.idx_pages, d.seq_pages), (1, 1, 1));
    }

    #[test]
    fn flush_all_persists_to_disk() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        // The last *usable* byte: [PAGE_USABLE, PAGE_SIZE) is the checksum
        // trailer, stamped by flush.
        let (pid, _) = pool.new_page(f, |p| p.data[PAGE_USABLE - 1] = 9).unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[PAGE_USABLE - 1], 9);
        assert!(raw.verify_checksum().is_ok(), "flush must stamp the trailer");
    }

    #[test]
    fn discard_file_drops_frames() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        assert_eq!(pool.resident(), 1);
        pool.discard_file(f);
        assert_eq!(pool.resident(), 0);
        // The page is still on disk (discard is not delete).
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn txn_rollback_restores_before_images() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 99)
            .unwrap();
        assert!(pool.txn_rollback().unwrap());
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1, "rollback must restore the before-image");
    }

    #[test]
    fn txn_rollback_reaches_evicted_pages_in_steal_mode() {
        // 1-frame steal-mode pool: the txn's first write is flushed and
        // evicted by the second; rollback must still undo it via the disk.
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 1, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (p0, _) = pool.new_page(f, |p| p.data[0] = 10).unwrap();
        let (p1, _) = pool.new_page(f, |p| p.data[0] = 20).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, p0, AccessKind::Random, |p| p.data[0] = 11)
            .unwrap();
        pool.with_page_mut(f, p1, AccessKind::Random, |p| p.data[0] = 21)
            .unwrap(); // evicts p0 with its uncommitted byte
        assert!(pool.txn_rollback().unwrap());
        let v0 = pool
            .with_page(f, p0, AccessKind::Random, |p| p.data[0])
            .unwrap();
        let v1 = pool
            .with_page(f, p1, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!((v0, v1), (10, 20));
    }

    #[test]
    fn stmt_rollback_undoes_only_the_statement() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 2)
            .unwrap(); // statement 1 (kept)
        pool.stmt_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 3)
            .unwrap(); // statement 2 (rolled back)
        pool.stmt_rollback().unwrap();
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 2, "stmt rollback keeps earlier statements' writes");
        // The whole txn can still roll back to the pre-txn image.
        assert!(pool.txn_rollback().unwrap());
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn stmt_rollback_forgets_fresh_pages_at_txn_level() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 7).unwrap();
        pool.txn_begin();
        pool.stmt_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 8)
            .unwrap();
        pool.stmt_rollback().unwrap();
        // The statement was the only writer: the txn has nothing to undo.
        assert!(!pool.txn_rollback().unwrap());
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn no_steal_pins_uncommitted_dirty_pages() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new_no_steal(disk.clone(), 4, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 5).unwrap();
        pool.flush_all().unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 6)
            .unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[0], 5, "uncommitted bytes must not reach disk");
        pool.txn_end();
        pool.flush_all().unwrap();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[0], 6, "after commit the page flushes normally");
    }

    #[test]
    fn no_steal_exhaustion_errors_instead_of_hanging() {
        // A 1-frame no-steal pool with a txn-pinned dirty page cannot load
        // a second page; the access must error, not deadlock.
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new_no_steal(disk.clone(), 1, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (p0, _) = pool.new_page(f, |_| {}).unwrap();
        let p1 = disk.allocate_page(f).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, p0, AccessKind::Random, |p| p.data[0] = 1)
            .unwrap();
        let err = pool.with_page(f, p1, AccessKind::Random, |_| {});
        assert!(matches!(err, Err(StorageError::PoolExhausted)));
        // Rollback frees the pinned frame; the pool works again.
        pool.txn_rollback().unwrap();
        pool.with_page(f, p1, AccessKind::Random, |_| {}).unwrap();
    }

    #[test]
    #[should_panic(expected = "re-enter")]
    fn reentrancy_is_detected() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        let pool_ref = &pool;
        let _ = pool.with_page(f, pid, AccessKind::Random, |_| {
            let _ = pool_ref.with_page(f, pid, AccessKind::Random, |_| {});
        });
    }

    // ---------------- sharding, scan resistance, readahead ----------------

    #[test]
    fn shard_sizing_follows_capacity() {
        // min 4 shards, 1 per 64 frames, never more shards than frames.
        for (cap, shards) in [(1, 1), (2, 2), (4, 4), (16, 4), (64, 4), (256, 4), (1024, 16)] {
            let disk = Arc::new(MemDisk::new());
            let p = BufferPool::new(disk, cap, DiskMetrics::new());
            assert_eq!(p.shard_count(), shards, "capacity {cap}");
        }
    }

    #[test]
    fn consecutive_pages_spread_across_shards() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 64, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let n = pool.shard_count();
        let hit: HashSet<usize> = (0..n as u32)
            .map(|p| pool.shard_index((f, PageId(p))))
            .collect();
        assert_eq!(hit.len(), n, "N consecutive pages cover all N shards");
    }

    #[test]
    fn shard_counters_sum_to_pool_totals() {
        let (pool, f) = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let (pid, _) = pool.new_page(f, |p| p.data[0] = i).unwrap();
            pids.push(pid);
        }
        for pid in &pids {
            pool.with_page(f, *pid, AccessKind::Sequential, |_| {})
                .unwrap();
        }
        pool.flush_all().unwrap();
        let total = pool.metrics().snapshot();
        let sum = pool
            .shard_snapshots()
            .into_iter()
            .fold(MetricsSnapshot::default(), |acc, s| acc.plus(&s));
        assert_eq!(sum, total, "per-shard slices must telescope exactly");
    }

    #[test]
    fn sequential_sweep_does_not_evict_hot_pages() {
        // 8 frames = 4 shards x 2. Pin a hot page per shard by random
        // accesses, then sweep a file far larger than the pool: the sweep
        // must recycle its own (cold) frames and leave the hot set alone.
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 8, DiskMetrics::new());
        let hot_file = disk.create_file().unwrap();
        let mut hot = Vec::new();
        for i in 0..4u8 {
            let (pid, _) = pool.new_page(hot_file, |p| p.data[0] = i).unwrap();
            hot.push(pid);
        }
        let scan_file = disk.create_file().unwrap();
        for _ in 0..64 {
            disk.allocate_page(scan_file).unwrap();
        }
        // Touch the hot pages with random accesses (hot class).
        for pid in &hot {
            pool.with_page(hot_file, *pid, AccessKind::Random, |_| {})
                .unwrap();
        }
        let before = pool.metrics().snapshot();
        for p in 0..64u32 {
            pool.with_page(scan_file, PageId(p), AccessKind::Sequential, |_| {})
                .unwrap();
        }
        let d = pool.metrics().snapshot().delta(&before);
        for pid in &hot {
            assert!(
                pool.is_resident(hot_file, *pid),
                "hot page {pid:?} evicted by a sequential sweep"
            );
        }
        // And re-touching the hot set afterwards costs no I/O.
        for pid in &hot {
            pool.with_page(hot_file, *pid, AccessKind::Random, |_| {})
                .unwrap();
        }
        let d2 = pool.metrics().snapshot().delta(&before);
        assert_eq!(
            d2.rnd_pages, d.rnd_pages,
            "hot pages must still be hits after the sweep"
        );
    }

    #[test]
    fn random_hit_promotes_cold_frame() {
        // Load a page sequentially (cold), promote it with a random hit,
        // then sweep: the promoted page must survive. 8 frames = 4 shards
        // x 2, so each shard can hold one hot page plus the sweep's frame.
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 8, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        for _ in 0..16 {
            disk.allocate_page(f).unwrap();
        }
        pool.with_page(f, PageId(0), AccessKind::Sequential, |_| {})
            .unwrap();
        pool.with_page(f, PageId(0), AccessKind::Random, |_| {})
            .unwrap(); // promote
        let shard0 = pool.shard_index((f, PageId(0)));
        // Sweep the pages that share page 0's shard (stride = shard count).
        let n = pool.shard_count() as u32;
        for p in (0..16u32).filter(|p| pool.shard_index((f, PageId(*p))) == shard0 && *p != 0) {
            pool.with_page(f, PageId(p), AccessKind::Sequential, |_| {})
                .unwrap();
        }
        assert!(n >= 1);
        assert!(
            pool.is_resident(f, PageId(0)),
            "promoted page evicted by later sweep"
        );
    }

    #[test]
    fn prefetch_batches_sequential_reads() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 64, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        for _ in 0..16 {
            disk.allocate_page(f).unwrap();
        }
        assert!(pool.readahead_window() >= 2);
        let before = pool.metrics().snapshot();
        let got = pool.prefetch_sequential(f, PageId(0), 8);
        assert_eq!(got, pool.readahead_window().min(8));
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!(d.seq_pages, got as u64);
        assert_eq!(d.seq_batches, 1, "one contiguous run, one batch");
        assert_eq!(d.buffer_misses, 0, "prefetch records no misses");
        // The prefetched pages are now hits.
        pool.with_page(f, PageId(0), AccessKind::Sequential, |_| {})
            .unwrap();
        let d2 = pool.metrics().snapshot().delta(&before);
        assert_eq!(d2.buffer_hits, 1);
        assert_eq!(d2.seq_pages, d.seq_pages, "no second physical read");
    }

    #[test]
    fn prefetch_skips_resident_pages_and_splits_runs() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 64, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        for _ in 0..16 {
            disk.allocate_page(f).unwrap();
        }
        // Make page 2 resident: the window [0, 8) splits into two runs.
        pool.with_page(f, PageId(2), AccessKind::Random, |_| {})
            .unwrap();
        let before = pool.metrics().snapshot();
        let got = pool.prefetch_sequential(f, PageId(0), 8);
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!(got as u64, d.seq_pages);
        assert_eq!(d.seq_batches, 2, "resident page splits the run in two");
        assert_eq!(pool.frames_holding(f, PageId(2)), 1, "no double frame");
    }

    #[test]
    fn tiny_pools_disable_readahead() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
        assert_eq!(pool.readahead_window(), 0);
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();
        assert_eq!(pool.prefetch_sequential(f, PageId(0), 8), 0);
    }

    // ---------------- checksums, repair, degraded mode ----------------

    #[test]
    fn corrupt_page_surfaces_page_corrupt_without_repairer() {
        let disk = Arc::new(MemDisk::new());
        let f = disk.create_file().unwrap();
        let pid;
        {
            let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
            let (p, _) = pool.new_page(f, |pg| pg.data[0] = 1).unwrap();
            pool.flush_all().unwrap();
            pid = p;
        }
        // Flip a checksummed byte behind the pool's back (raw disk write,
        // no restamp) — the next verified read must notice.
        let mut raw = Page::new();
        disk.read_page(f, pid, &mut raw).unwrap();
        raw.data[0] ^= 0xFF;
        disk.write_page(f, pid, &raw).unwrap();
        let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
        assert!(matches!(
            pool.with_page(f, pid, AccessKind::Random, |_| {}),
            Err(StorageError::PageCorrupt { file, page, .. }) if file == f && page == pid
        ));
    }

    #[test]
    fn corrupt_page_repairs_from_the_hook() {
        let disk = Arc::new(MemDisk::new());
        let f = disk.create_file().unwrap();
        let pid;
        {
            let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
            let (p, _) = pool.new_page(f, |pg| pg.data[0] = 42).unwrap();
            pool.flush_all().unwrap();
            pid = p;
        }
        let mut good = Page::new();
        disk.read_page(f, pid, &mut good).unwrap(); // stamped committed image
        let mut bad = good.clone();
        bad.data[0] ^= 0xFF;
        disk.write_page(f, pid, &bad).unwrap();
        let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
        let fixed = good.clone();
        pool.set_repairer(Box::new(move |file, page| {
            assert_eq!((file, page), (f, pid));
            Ok(Some(fixed.clone()))
        }));
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 42, "read is served the repaired image");
        assert_eq!(pool.health().page_repairs(), 1);
        // The good image was written back: a raw reread verifies clean.
        let mut back = Page::new();
        disk.read_page(f, pid, &mut back).unwrap();
        assert_eq!(back.data[0], 42);
        assert!(back.verify_checksum().is_ok());
    }

    #[test]
    fn write_back_failure_degrades_the_pool() {
        use crate::disk::FaultyDisk;
        use crate::fault::FaultPlan;
        let inner = MemDisk::new();
        let f = inner.create_file().unwrap();
        let pid = inner.allocate_page(f).unwrap();
        // One op (the cache-miss read) succeeds; the flush write fails.
        let disk = Arc::new(FaultyDisk::with_plan(inner, FaultPlan::fail_after(1)));
        let pool = BufferPool::new(disk, 4, DiskMetrics::new());
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 7)
            .unwrap();
        let health = pool.health();
        assert!(!health.is_degraded());
        assert!(pool.flush_all().is_err());
        assert!(health.is_degraded());
        assert!(matches!(
            health.check_writable(),
            Err(StorageError::Degraded { .. })
        ));
        assert!(!health.reason().is_empty());
        health.heal();
        assert!(!health.is_degraded());
        assert!(health.check_writable().is_ok());
    }

    #[test]
    fn wait_counter_visible_under_contention() {
        let disk = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk.clone(), 4, DiskMetrics::new()));
        let f = disk.create_file().unwrap();
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        pool.with_page(f, pid, AccessKind::Random, |_| {
                            // Hold the checkout long enough that peers must
                            // block on the returned condvar (single-core
                            // boxes otherwise rarely overlap).
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        })
                        .unwrap();
                    }
                });
            }
        });
        // Four threads hammering one page must have waited on the checkout
        // protocol at least once.
        assert!(pool.wait_ns() > 0, "contention must register wait time");
    }
}
