//! Class-hierarchy (IS-A DAG) computations.
//!
//! The data model "supports multiple inheritance" (Section 3.1); the
//! hierarchy is a DAG (MoodView draws it with a DAG placement algorithm).
//! These functions are pure over a name→[`ClassDef`] map so they can be
//! tested without storage.

use std::collections::HashMap;

use crate::error::{CatalogError, Result};
use crate::schema::{AttributeDef, ClassDef, MethodSig};

/// Map from class name to definition — the in-memory symbol table.
pub type ClassMap = HashMap<String, ClassDef>;

/// Would adding `class` (with the given superclasses) introduce a cycle?
pub fn check_acyclic(classes: &ClassMap, class: &str, superclasses: &[String]) -> Result<()> {
    // A cycle exists iff `class` is reachable upward from any superclass.
    let mut stack: Vec<&str> = superclasses.iter().map(|s| s.as_str()).collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(cur) = stack.pop() {
        if cur == class {
            return Err(CatalogError::InheritanceCycle(class.to_string()));
        }
        if !seen.insert(cur.to_string()) {
            continue;
        }
        if let Some(def) = classes.get(cur) {
            stack.extend(def.superclasses.iter().map(|s| s.as_str()));
        }
    }
    Ok(())
}

/// All (transitive) superclasses of `class`, nearest first, duplicates
/// removed (left-to-right depth-first, the classic C++ lookup order the
/// MOOD type system inherits from cfront).
pub fn all_superclasses<'a>(classes: &'a ClassMap, class: &str) -> Vec<&'a ClassDef> {
    let mut out: Vec<&ClassDef> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    fn walk<'a>(
        classes: &'a ClassMap,
        name: &str,
        out: &mut Vec<&'a ClassDef>,
        seen: &mut std::collections::HashSet<String>,
    ) {
        if let Some(def) = classes.get(name) {
            for sup in &def.superclasses {
                if seen.insert(sup.clone()) {
                    if let Some(sdef) = classes.get(sup) {
                        out.push(sdef);
                    }
                    walk(classes, sup, out, seen);
                }
            }
        }
    }
    walk(classes, class, &mut out, &mut seen);
    out
}

/// All (transitive) subclasses of `class`, excluding itself.
pub fn all_subclasses<'a>(classes: &'a ClassMap, class: &str) -> Vec<&'a ClassDef> {
    let mut out = Vec::new();
    let mut frontier = vec![class.to_string()];
    let mut seen = std::collections::HashSet::new();
    while let Some(cur) = frontier.pop() {
        for def in classes.values() {
            if def.superclasses.contains(&cur) && seen.insert(def.name.clone()) {
                frontier.push(def.name.clone());
                out.push(def);
            }
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Is `sub` equal to or a transitive subclass of `sup`?
pub fn is_subclass_of(classes: &ClassMap, sub: &str, sup: &str) -> bool {
    if sub == sup {
        return true;
    }
    all_superclasses(classes, sub).iter().any(|d| d.name == sup)
}

/// The *effective* attributes of a class: inherited (nearest-superclass
/// first) then own, with same-name/same-type duplicates merged and
/// same-name/different-type definitions rejected as a conflict.
pub fn effective_attributes(classes: &ClassMap, class: &str) -> Result<Vec<AttributeDef>> {
    let def = classes
        .get(class)
        .ok_or_else(|| CatalogError::UnknownClass(class.to_string()))?;
    let mut out: Vec<AttributeDef> = Vec::new();
    let mut push = |attr: &AttributeDef| -> Result<()> {
        match out.iter().find(|a| a.name == attr.name) {
            None => {
                out.push(attr.clone());
                Ok(())
            }
            Some(existing) if existing.ty == attr.ty => Ok(()), // diamond: same origin
            Some(_) => Err(CatalogError::InheritanceConflict {
                class: class.to_string(),
                attribute: attr.name.clone(),
            }),
        }
    };
    // Superclass attributes first (they are the "older" part of the layout),
    // walked farthest-first so a subclass sees root attributes first, like a
    // C++ object layout.
    let supers = all_superclasses(classes, class);
    for sdef in supers.iter().rev() {
        for attr in &sdef.attributes {
            push(attr)?;
        }
    }
    for attr in &def.attributes {
        push(attr)?;
    }
    Ok(out)
}

/// Resolve a method by name with late-binding order: own methods shadow
/// inherited ones; among superclasses, nearest (leftmost, depth-first)
/// wins. Returns the defining class name alongside the signature.
pub fn resolve_method<'a>(
    classes: &'a ClassMap,
    class: &str,
    method: &str,
) -> Option<(&'a str, &'a MethodSig)> {
    if let Some(def) = classes.get(class) {
        if let Some(sig) = def.method(method) {
            return Some((def.name.as_str(), sig));
        }
        for sdef in all_superclasses(classes, class) {
            if let Some(sig) = sdef.method(method) {
                return Some((sdef.name.as_str(), sig));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassBuilder;
    use mood_datamodel::TypeDescriptor;

    fn def(b: ClassBuilder, id: u32) -> ClassDef {
        b.build(id, None)
    }

    fn paper_hierarchy() -> ClassMap {
        // Vehicle ← Automobile ← JapaneseAuto (Section 3.1)
        let mut m = ClassMap::new();
        m.insert(
            "Vehicle".into(),
            def(
                ClassBuilder::class("Vehicle")
                    .attribute("id", TypeDescriptor::integer())
                    .attribute("weight", TypeDescriptor::integer())
                    .method(MethodSig::new(
                        "lbweight",
                        TypeDescriptor::integer(),
                        vec![],
                    ))
                    .method(MethodSig::new("weight", TypeDescriptor::integer(), vec![])),
                1,
            ),
        );
        m.insert(
            "Automobile".into(),
            def(ClassBuilder::class("Automobile").inherits("Vehicle"), 2),
        );
        m.insert(
            "JapaneseAuto".into(),
            def(
                ClassBuilder::class("JapaneseAuto").inherits("Automobile"),
                3,
            ),
        );
        m
    }

    #[test]
    fn transitive_super_and_subclasses() {
        let m = paper_hierarchy();
        let sups: Vec<_> = all_superclasses(&m, "JapaneseAuto")
            .iter()
            .map(|d| d.name.clone())
            .collect();
        assert_eq!(sups, vec!["Automobile", "Vehicle"]);
        let subs: Vec<_> = all_subclasses(&m, "Vehicle")
            .iter()
            .map(|d| d.name.clone())
            .collect();
        assert_eq!(subs, vec!["Automobile", "JapaneseAuto"]);
        assert!(all_subclasses(&m, "JapaneseAuto").is_empty());
    }

    #[test]
    fn is_subclass_includes_self() {
        let m = paper_hierarchy();
        assert!(is_subclass_of(&m, "JapaneseAuto", "Vehicle"));
        assert!(is_subclass_of(&m, "Vehicle", "Vehicle"));
        assert!(!is_subclass_of(&m, "Vehicle", "JapaneseAuto"));
    }

    #[test]
    fn inherited_attributes_flow_down() {
        let m = paper_hierarchy();
        let attrs = effective_attributes(&m, "JapaneseAuto").unwrap();
        let names: Vec<_> = attrs.iter().map(|a| a.name.clone()).collect();
        assert_eq!(names, vec!["id", "weight"]);
    }

    #[test]
    fn method_resolution_walks_up() {
        let m = paper_hierarchy();
        let (owner, sig) = resolve_method(&m, "JapaneseAuto", "lbweight").unwrap();
        assert_eq!(owner, "Vehicle");
        assert_eq!(sig.name, "lbweight");
        assert!(resolve_method(&m, "JapaneseAuto", "nope").is_none());
    }

    #[test]
    fn own_method_shadows_inherited() {
        let mut m = paper_hierarchy();
        m.insert(
            "Automobile".into(),
            def(
                ClassBuilder::class("Automobile")
                    .inherits("Vehicle")
                    .method(MethodSig::new("lbweight", TypeDescriptor::float(), vec![])),
                2,
            ),
        );
        let (owner, sig) = resolve_method(&m, "Automobile", "lbweight").unwrap();
        assert_eq!(owner, "Automobile");
        assert_eq!(sig.return_type, TypeDescriptor::float());
    }

    #[test]
    fn diamond_inheritance_merges_common_root() {
        let mut m = ClassMap::new();
        m.insert(
            "Base".into(),
            def(
                ClassBuilder::class("Base").attribute("x", TypeDescriptor::integer()),
                1,
            ),
        );
        m.insert(
            "L".into(),
            def(ClassBuilder::class("L").inherits("Base"), 2),
        );
        m.insert(
            "R".into(),
            def(ClassBuilder::class("R").inherits("Base"), 3),
        );
        m.insert(
            "D".into(),
            def(ClassBuilder::class("D").inherits("L").inherits("R"), 4),
        );
        let attrs = effective_attributes(&m, "D").unwrap();
        assert_eq!(attrs.len(), 1, "diamond root attribute appears once");
    }

    #[test]
    fn conflicting_inherited_attributes_rejected() {
        let mut m = ClassMap::new();
        m.insert(
            "A".into(),
            def(
                ClassBuilder::class("A").attribute("x", TypeDescriptor::integer()),
                1,
            ),
        );
        m.insert(
            "B".into(),
            def(
                ClassBuilder::class("B").attribute("x", TypeDescriptor::string()),
                2,
            ),
        );
        m.insert(
            "C".into(),
            def(ClassBuilder::class("C").inherits("A").inherits("B"), 3),
        );
        assert!(matches!(
            effective_attributes(&m, "C"),
            Err(CatalogError::InheritanceConflict { .. })
        ));
    }

    #[test]
    fn cycle_detection() {
        let m = paper_hierarchy();
        // Making Vehicle inherit from JapaneseAuto closes a cycle.
        assert!(matches!(
            check_acyclic(&m, "Vehicle", &["JapaneseAuto".to_string()]),
            Err(CatalogError::InheritanceCycle(_))
        ));
        // A fresh leaf is fine.
        check_acyclic(&m, "Truck", &["Vehicle".to_string()]).unwrap();
    }

    use crate::schema::MethodSig;
}
