//! Multi-threaded stress tests for the sharded buffer pool: lost updates,
//! double-framing across shards, per-shard metrics telescoping, and the
//! scan-resistant replacement policy protecting the B-tree hot set.

use std::sync::Arc;

use mood_storage::{
    AccessKind, BTree, BufferPool, Disk, DiskMetrics, HeapFile, MemDisk, MetricsSnapshot, Oid,
    PageId, SlotId,
};

/// SplitMix64 — deterministic per-thread mixing without a rand dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// 8 threads x mixed increment/point-get/scan over a pool far smaller than
/// the working set. Asserts: no lost updates (per-page counters sum to the
/// number of increments), no page ever held by two frames, and the pool's
/// process totals equal the componentwise sum of the per-shard slices.
#[test]
fn mixed_workload_has_no_lost_updates_or_double_frames() {
    const THREADS: u64 = 8;
    const OPS: u64 = 400;
    const COUNTER_PAGES: u32 = 64;

    let disk = Arc::new(MemDisk::new());
    let metrics = DiskMetrics::new();
    // 16 frames (4 shards x 4) against a 64-page counter file plus a heap:
    // constant eviction pressure.
    let pool = Arc::new(BufferPool::new(disk.clone(), 16, metrics.clone()));
    let counters = disk.create_file().unwrap();
    for _ in 0..COUNTER_PAGES {
        let pid = disk.allocate_page(counters).unwrap();
        pool.with_page_mut(counters, pid, AccessKind::Random, |p| {
            p.data[0..8].copy_from_slice(&0u64.to_le_bytes());
        })
        .unwrap();
    }
    let heap = Arc::new(HeapFile::create(pool.clone()).unwrap());
    let seed_oids: Arc<Vec<Oid>> = Arc::new(
        (0..200u32)
            .map(|i| heap.insert(format!("seed-{i:04}").as_bytes()).unwrap())
            .collect(),
    );

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = pool.clone();
            let heap = heap.clone();
            let seed_oids = seed_oids.clone();
            s.spawn(move || {
                for op in 0..OPS {
                    let r = mix(t * 1_000_003 + op);
                    match r % 4 {
                        // Increment a counter page (read-modify-write under
                        // the checkout protocol).
                        0 | 1 => {
                            let pid = PageId((r >> 8) as u32 % COUNTER_PAGES);
                            pool.with_page_mut(counters, pid, AccessKind::Random, |p| {
                                let v = u64::from_le_bytes(p.data[0..8].try_into().unwrap());
                                std::thread::yield_now(); // widen the race window
                                p.data[0..8].copy_from_slice(&(v + 1).to_le_bytes());
                            })
                            .unwrap();
                        }
                        // Point-get a seeded heap record.
                        2 => {
                            let oid = seed_oids[(r >> 8) as usize % seed_oids.len()];
                            let bytes = heap.get(oid).unwrap();
                            assert!(bytes.starts_with(b"seed-"));
                        }
                        // Insert, then scan a slice of the heap.
                        _ => {
                            heap.insert(format!("t{t}-{op}").as_bytes()).unwrap();
                            let pages = heap.pages().unwrap();
                            let start = (r >> 16) as u32 % pages;
                            heap.scan_range_with(start, (start + 4).min(pages), |_, _| true)
                                .unwrap();
                        }
                    }
                }
            });
        }
    });

    // No lost updates: every increment landed.
    let increments: u64 = (0..THREADS * OPS)
        .filter(|i| {
            let (t, op) = (i / OPS, i % OPS);
            mix(t * 1_000_003 + op) % 4 <= 1
        })
        .count() as u64;
    let mut total = 0u64;
    for p in 0..COUNTER_PAGES {
        total += pool
            .with_page(counters, PageId(p), AccessKind::Random, |p| {
                u64::from_le_bytes(p.data[0..8].try_into().unwrap())
            })
            .unwrap();
    }
    assert_eq!(total, increments, "lost update under concurrency");

    // No page is ever cached by two frames (one shard owns each page).
    for p in 0..COUNTER_PAGES {
        assert!(
            pool.frames_holding(counters, PageId(p)) <= 1,
            "page {p} double-framed"
        );
    }
    for p in 0..heap.pages().unwrap() {
        assert!(pool.frames_holding(heap.file_id(), PageId(p)) <= 1);
    }

    // Per-shard accounting telescopes to the process totals exactly.
    let totals = metrics.snapshot();
    let sum = pool
        .shard_snapshots()
        .into_iter()
        .fold(MetricsSnapshot::default(), |acc, s| acc.plus(&s));
    assert_eq!(sum, totals, "shard slices must sum to pool totals");
    assert!(totals.buffer_evictions > 0, "workload must thrash the pool");
}

/// A full-extent sweep over a file much larger than the pool must not
/// degrade the hit ratio on the hot B-tree pages: the root stays resident
/// and a post-sweep lookup costs zero additional index-page reads.
#[test]
fn btree_hot_set_survives_full_extent_sweep() {
    let disk = Arc::new(MemDisk::new());
    let metrics = DiskMetrics::new();
    // 16 frames = 4 shards x 4; the sweep file is ~10x bigger.
    let pool = Arc::new(BufferPool::new(disk.clone(), 16, metrics.clone()));
    let tree = BTree::create(pool.clone(), true).unwrap();
    let key = |i: u32| i.to_be_bytes();
    let oid = |i: u32| Oid::new(tree.file_id(), PageId(i / 100), SlotId((i % 100) as u16), 1);
    for i in 0..2000u32 {
        tree.insert(&key(i), oid(i)).unwrap();
    }

    let heap = HeapFile::create(pool.clone()).unwrap();
    while heap.pages().unwrap() < 160 {
        heap.insert(&vec![7u8; 400]).unwrap();
    }

    // Seed every shard with evictable (cold) frames, so the pool is not
    // wall-to-wall hot pages left over from the index build.
    for p in 0..16u32 {
        pool.with_page(heap.file_id(), PageId(p), AccessKind::Sequential, |_| {})
            .unwrap();
    }
    // Warm the lookup path: root, inner, leaf load as Index (hot) pages.
    tree.lookup(&key(1000)).unwrap();
    let root = pool
        .with_page(tree.file_id(), PageId(0), AccessKind::Index, |p| {
            PageId(u32::from_le_bytes(p.data[4..8].try_into().unwrap()))
        })
        .unwrap();
    assert!(pool.is_resident(tree.file_id(), root));

    // Warm path verified: a second lookup is pure buffer hits.
    let before = metrics.snapshot();
    assert_eq!(tree.lookup(&key(1000)).unwrap(), vec![oid(1000)]);
    let warm = metrics.snapshot().delta(&before);
    assert_eq!(warm.idx_pages, 0, "warm lookup must be all hits");

    // The sweep: ten pool capacities of sequential pages.
    let mut visited = 0u64;
    heap.scan_with(|_, _| {
        visited += 1;
        true
    })
    .unwrap();
    assert!(visited > 0);

    // Hot index pages were untouched: root still resident, and the same
    // lookup still costs zero index-page reads — the hit ratio on the hot
    // set is unchanged by the sweep.
    assert!(
        pool.is_resident(tree.file_id(), root),
        "sweep evicted the B-tree root"
    );
    let before = metrics.snapshot();
    assert_eq!(tree.lookup(&key(1000)).unwrap(), vec![oid(1000)]);
    let after = metrics.snapshot().delta(&before);
    assert_eq!(
        after.idx_pages, 0,
        "post-sweep lookup must hit the still-resident hot set"
    );
    assert_eq!(after.buffer_misses, 0);
}
