//! # mood-storage — the ESM substrate for MOOD
//!
//! The METU Object-Oriented DBMS was built on the Exodus Storage Manager
//! (ESM), which provided storage management, concurrency control, and backup
//! and recovery. This crate is the from-scratch Rust substitute: everything
//! the MOOD kernel needed from ESM, with the addition of *instrumentation*
//! — every page access is counted and classified (sequential / random /
//! index) so the reproduction can compare measured access patterns against
//! the paper's analytic cost model (Sections 4–6).
//!
//! Components:
//!
//! * [`disk`] — raw block stores (in-memory, file-backed, fault-injecting);
//! * [`page`] — 4 KB pages with a slotted record layout;
//! * [`buffer`] — a clock-replacement buffer pool;
//! * [`heap`] — heap files of records with physical OIDs and ESM-style
//!   forwarding;
//! * [`btree`] — a disk-resident B+-tree exposing the Table 9 statistics;
//! * [`hash`] — a static hash index with overflow chaining;
//! * [`lock`] — a shared/exclusive lock manager with timeout deadlock
//!   resolution;
//! * [`wal`] — a redo-only write-ahead log with crash recovery;
//! * [`metrics`] — access counters plus the Table 10 physical disk model.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod heap;
pub mod lock;
pub mod metrics;
pub mod oid;
pub mod page;
pub mod registry;
pub mod wal;

pub use btree::{BTree, BTreeStats};
pub use buffer::{BufferPool, PageRepairer, PoolHealth};
pub use disk::{Disk, FaultyDisk, FileDisk, MemDisk, RetryDisk, RetryStats};
pub use error::{Result, StorageError};
pub use exec::{chunk_ranges, run_chunked, ExecutionConfig};
pub use fault::{Fault, FaultPlan, FaultyLog};
pub use hash::HashIndex;
pub use heap::HeapFile;
pub use lock::{LockManager, LockMode, OwnerId};
pub use metrics::{AccessHint, AccessKind, DiskMetrics, MetricsSnapshot, PhysicalParams};
pub use oid::{FileId, Oid, PageId, SlotId};
pub use page::{Page, SlottedPage, PAGE_SIZE, PAGE_USABLE};
pub use registry::{EngineMetrics, MetricsRegistry, OperatorTotals, PlanCacheStats};
pub use wal::{FileLog, LogStore, MemLog, TxnId, Wal, WalStats};

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Everything a MOOD kernel instance needs from its storage layer, wired
/// together: a disk, a buffer pool, a lock manager, a WAL and the shared
/// metrics. This is the handle the catalog and algebra layers hold.
///
/// Index handles are cached per file id so every caller shares one
/// [`BTree`]/[`HashIndex`] instance — and therefore its writer lock.
pub struct StorageManager {
    pool: Arc<BufferPool>,
    locks: Arc<LockManager>,
    wal: Arc<Wal>,
    metrics: DiskMetrics,
    registry: Arc<MetricsRegistry>,
    btrees: Mutex<HashMap<FileId, Arc<BTree>>>,
    hashes: Mutex<HashMap<FileId, Arc<HashIndex>>>,
    /// Durable managers (file-backed or harness-supplied) run the full
    /// no-steal + redo-WAL protocol: dirty pages of an open transaction
    /// stay pinned, commits log after-images and force the log. In-memory
    /// managers keep only the live-rollback bookkeeping — there is nothing
    /// to recover after a "crash", so they skip the log traffic entirely.
    durable: bool,
}

impl StorageManager {
    /// An in-memory storage manager (tests, benches, examples).
    pub fn in_memory() -> Self {
        Self::in_memory_with_pool(1024)
    }

    /// In-memory with an explicit buffer-pool size in frames — benches size
    /// this small to reproduce the paper's no-buffer-hit worst cases.
    pub fn in_memory_with_pool(frames: usize) -> Self {
        let metrics = DiskMetrics::new();
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, frames, metrics.clone()));
        let locks = Arc::new(LockManager::default());
        let wal = Arc::new(Wal::new(Box::new(MemLog::new())));
        let registry = Arc::new(MetricsRegistry::new(
            metrics.clone(),
            wal.clone(),
            locks.clone(),
            pool.wait_counter(),
        ));
        registry.attach_health(pool.health());
        StorageManager {
            pool,
            locks,
            wal,
            metrics,
            registry,
            btrees: Mutex::new(HashMap::new()),
            hashes: Mutex::new(HashMap::new()),
            durable: false,
        }
    }

    /// A file-backed storage manager rooted at `dir` (pages under
    /// `dir/pages`, log at `dir/wal.log`). Replays the WAL before serving:
    /// a process that died after commit but before its pages were flushed
    /// gets them back here.
    pub fn on_disk(dir: impl AsRef<std::path::Path>, frames: usize) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let disk: Arc<dyn Disk> = Arc::new(FileDisk::open(dir.join("pages"))?);
        let log = Box::new(FileLog::open(dir.join("wal.log"))?);
        Self::with_parts(disk, log, frames)
    }

    /// Assemble a durable manager from caller-supplied parts — how the
    /// crash-simulation harness interposes [`FaultyDisk`] / [`FaultyLog`]
    /// wrappers while keeping the real bytes underneath. Recovery runs
    /// here, before the buffer pool sees the disk.
    pub fn with_parts(
        disk: Arc<dyn Disk>,
        log: Box<dyn wal::LogStore>,
        frames: usize,
    ) -> Result<Self> {
        let metrics = DiskMetrics::new();
        let wal = Wal::new(log);
        wal.recover(&*disk)?;
        let pool = Arc::new(BufferPool::new_no_steal(disk, frames, metrics.clone()));
        let locks = Arc::new(LockManager::default());
        let wal = Arc::new(wal);
        // Checksum failures on durable managers repair from the redo log's
        // last committed after-image instead of failing the query.
        {
            let wal = wal.clone();
            pool.set_repairer(Box::new(move |file, page| {
                wal.latest_committed_image(file, page)
            }));
        }
        let registry = Arc::new(MetricsRegistry::new(
            metrics.clone(),
            wal.clone(),
            locks.clone(),
            pool.wait_counter(),
        ));
        registry.attach_health(pool.health());
        // Surface retry counters when some layer of the disk stack is a
        // RetryDisk (the harness composes wrappers; discovery keeps the
        // manager agnostic to the stacking order).
        if let Some(stats) = pool.disk().retry_stats() {
            registry.attach_retry_stats(stats);
        }
        Ok(StorageManager {
            pool,
            locks,
            wal,
            metrics,
            registry,
            btrees: Mutex::new(HashMap::new()),
            hashes: Mutex::new(HashMap::new()),
            durable: true,
        })
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    /// The engine-wide metrics registry (disk + WAL + locks + operators).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Fault-tolerance state: degraded (read-only) flag and page-repair
    /// counter, shared with the buffer pool that maintains it.
    pub fn health(&self) -> Arc<buffer::PoolHealth> {
        self.pool.health()
    }

    /// Create a new heap file on this manager.
    pub fn create_heap(&self) -> Result<HeapFile> {
        HeapFile::create(self.pool.clone())
    }

    /// Open an existing heap file.
    pub fn open_heap(&self, file: FileId) -> HeapFile {
        HeapFile::open(self.pool.clone(), file)
    }

    /// Create a B+-tree index (the shared handle is cached).
    pub fn create_btree(&self, unique: bool) -> Result<Arc<BTree>> {
        let tree = Arc::new(BTree::create(self.pool.clone(), unique)?);
        self.btrees.lock().insert(tree.file_id(), tree.clone());
        Ok(tree)
    }

    /// Open an existing B+-tree index; all callers share one handle (and
    /// its writer lock).
    pub fn open_btree(&self, file: FileId) -> Arc<BTree> {
        self.btrees
            .lock()
            .entry(file)
            .or_insert_with(|| Arc::new(BTree::open(self.pool.clone(), file)))
            .clone()
    }

    /// Create a hash index with the given bucket count (handle cached).
    pub fn create_hash(&self, buckets: u32) -> Result<Arc<HashIndex>> {
        let h = Arc::new(HashIndex::create(self.pool.clone(), buckets)?);
        self.hashes.lock().insert(h.file_id(), h.clone());
        Ok(h)
    }

    /// Open an existing hash index; all callers share one handle.
    pub fn open_hash(&self, file: FileId, buckets: u32) -> Arc<HashIndex> {
        self.hashes
            .lock()
            .entry(file)
            .or_insert_with(|| Arc::new(HashIndex::open(self.pool.clone(), file, buckets)))
            .clone()
    }

    /// Drop a cached index handle (call when the index file is deleted).
    pub fn forget_index(&self, file: FileId) {
        self.btrees.lock().remove(&file);
        self.hashes.lock().remove(&file);
    }

    /// Flush all dirty pages and truncate the log (checkpoint). Refused
    /// while a transaction is open: the flush would skip its pinned pages,
    /// and truncating the log underneath them would lose the last committed
    /// images a crash-recovery would need.
    pub fn checkpoint(&self) -> Result<()> {
        if self.pool.txn_active() {
            return Err(StorageError::TxnActive);
        }
        self.pool.flush_all()?;
        self.wal.checkpoint()
    }

    /// Is this manager running the durable (logged, no-steal) protocol?
    pub fn durable(&self) -> bool {
        self.durable
    }

    // ------------------------------------------------------------------
    // Transactions. One writer at a time (txn_begin blocks on the pool's
    // transaction slot); SQL sessions drive these for both explicit
    // BEGIN/COMMIT/ROLLBACK and the per-statement autocommit wrapper.
    // ------------------------------------------------------------------

    /// Begin a transaction: claim the pool's single writer slot and hand
    /// out a WAL transaction id.
    pub fn txn_begin(&self) -> TxnId {
        self.pool.txn_begin();
        self.wal.begin()
    }

    /// Is a transaction currently open on this manager?
    pub fn txn_active(&self) -> bool {
        self.pool.txn_active()
    }

    /// Commit: log the after-image of every page the transaction dirtied,
    /// append the commit record, and force the log — only then are the
    /// pages unpinned (they reach disk lazily afterwards). Read-only
    /// transactions skip the log entirely. If the log cannot take the
    /// commit durably, the transaction rolls back, an abort record is
    /// appended best-effort (recovery treats the *last* marker as the
    /// truth), and the error surfaces.
    pub fn txn_commit(&self, txn: TxnId) -> Result<()> {
        if !self.durable {
            self.pool.txn_end();
            self.locks.release_all(txn);
            return Ok(());
        }
        let result = (|| {
            let pages = self.pool.txn_dirty_pages()?;
            if pages.is_empty() {
                return Ok(());
            }
            for (file, page, image) in &pages {
                self.wal.log_page_write(txn, *file, *page, image)?;
            }
            self.wal.commit(txn)
        })();
        let out = match result {
            Ok(()) => {
                self.pool.txn_end();
                Ok(())
            }
            Err(e) => {
                // A WAL that cannot take the commit durably means no future
                // write can be made durable either: flip to read-only until
                // an operator heals the engine. (Deterministic storage
                // errors from collecting the images are not device trouble.)
                if matches!(e, StorageError::Io(_)) {
                    self.pool
                        .health()
                        .mark_degraded(&format!("WAL append failed at commit: {e}"));
                }
                let _ = self.wal.abort(txn);
                let _ = self.pool.txn_rollback();
                Err(e)
            }
        };
        self.locks.release_all(txn);
        out
    }

    /// Roll back: restore every dirtied page's before-image in the pool and
    /// note the abort in the log (best-effort — recovery ignores the
    /// transaction anyway, since no commit record exists).
    pub fn txn_rollback(&self, txn: TxnId) -> Result<()> {
        let result = self.pool.txn_rollback();
        self.locks.release_all(txn);
        let had_writes = result?;
        if self.durable && had_writes {
            let _ = self.wal.abort(txn);
        }
        Ok(())
    }

    /// Statement-level savepoint inside an explicit transaction; see
    /// [`BufferPool::stmt_begin`].
    pub fn stmt_begin(&self) {
        self.pool.stmt_begin();
    }

    /// Release the statement savepoint (statement succeeded).
    pub fn stmt_end(&self) {
        self.pool.stmt_end();
    }

    /// Undo just the current statement's page writes.
    pub fn stmt_rollback(&self) -> Result<()> {
        self.pool.stmt_rollback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_wires_components() {
        let sm = StorageManager::in_memory();
        let heap = sm.create_heap().unwrap();
        let oid = heap.insert(b"kernel object").unwrap();
        assert_eq!(heap.get(oid).unwrap(), b"kernel object");

        let idx = sm.create_btree(false).unwrap();
        idx.insert(b"key", oid).unwrap();
        assert_eq!(idx.lookup(b"key").unwrap(), vec![oid]);

        let h = sm.create_hash(16).unwrap();
        h.insert(b"key", oid).unwrap();
        assert_eq!(h.lookup(b"key").unwrap(), vec![oid]);

        assert!(sm.metrics().snapshot().total_reads() > 0);
        sm.checkpoint().unwrap();
    }

    #[test]
    fn reopen_heap_by_file_id() {
        let sm = StorageManager::in_memory();
        let heap = sm.create_heap().unwrap();
        let oid = heap.insert(b"persist me").unwrap();
        let fid = heap.file_id();
        drop(heap);
        let again = sm.open_heap(fid);
        assert_eq!(again.get(oid).unwrap(), b"persist me");
    }

    #[test]
    fn with_parts_recovers_committed_and_drops_uncommitted() {
        // Shared disk + log survive the "crash" (dropping the manager);
        // everything else — pool, pinned dirty pages — is lost with it.
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLog::new());
        let fid;
        let oid;
        {
            let sm =
                StorageManager::with_parts(disk.clone(), Box::new(log.clone()), 16).unwrap();
            let t = sm.txn_begin();
            let heap = sm.create_heap().unwrap();
            fid = heap.file_id();
            oid = heap.insert(b"committed").unwrap();
            sm.txn_commit(t).unwrap();
            let _t2 = sm.txn_begin();
            heap.insert(b"uncommitted").unwrap();
            // Crash: neither commit nor rollback, pool dropped.
        }
        let sm = StorageManager::with_parts(disk, Box::new(log), 16).unwrap();
        let heap = sm.open_heap(fid);
        assert_eq!(heap.get(oid).unwrap(), b"committed");
        assert_eq!(heap.count().unwrap(), 1, "uncommitted insert must vanish");
    }

    #[test]
    fn durable_rollback_undoes_a_transaction() {
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLog::new());
        let sm = StorageManager::with_parts(disk, Box::new(log), 16).unwrap();
        let t = sm.txn_begin();
        let heap = sm.create_heap().unwrap();
        let oid = heap.insert(b"keep").unwrap();
        sm.txn_commit(t).unwrap();
        let t = sm.txn_begin();
        heap.insert(b"discard-1").unwrap();
        heap.insert(b"discard-2").unwrap();
        sm.txn_rollback(t).unwrap();
        assert_eq!(heap.get(oid).unwrap(), b"keep");
        assert_eq!(heap.count().unwrap(), 1);
    }

    #[test]
    fn checkpoint_refused_while_txn_open() {
        let sm = StorageManager::in_memory();
        let t = sm.txn_begin();
        assert!(matches!(sm.checkpoint(), Err(StorageError::TxnActive)));
        sm.txn_rollback(t).unwrap();
        sm.checkpoint().unwrap();
    }

    #[test]
    fn on_disk_manager_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mood-sm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fid;
        let oid;
        {
            let sm = StorageManager::on_disk(&dir, 64).unwrap();
            let heap = sm.create_heap().unwrap();
            oid = heap.insert(b"durable").unwrap();
            fid = heap.file_id();
            sm.checkpoint().unwrap();
        }
        {
            let sm = StorageManager::on_disk(&dir, 64).unwrap();
            let heap = sm.open_heap(fid);
            assert_eq!(heap.get(oid).unwrap(), b"durable");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
