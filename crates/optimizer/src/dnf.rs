//! Disjunctive-normal-form transformation (Section 7).
//!
//! "The predicates in the WHERE and HAVING clauses in the query are
//! transformed into disjunctive normal form … Thus, the UNION operation is
//! performed after evaluating the predicates for the AND-terms."
//!
//! Generic over the leaf predicate type so both the SQL layer (AST
//! predicates) and tests (booleans) can reuse it. `NOT` is pushed to the
//! leaves (De Morgan) through the [`Negate`] trait.

/// A Boolean expression tree over leaf predicates `L`.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr<L> {
    Leaf(L),
    And(Vec<BoolExpr<L>>),
    Or(Vec<BoolExpr<L>>),
    Not(Box<BoolExpr<L>>),
}

/// Leaves must know how to negate themselves (`a = b` ⇒ `a <> b`, …).
pub trait Negate {
    fn negate(&self) -> Self;
}

impl<L: Clone + Negate> BoolExpr<L> {
    /// Push every `Not` down to the leaves.
    fn push_not(&self, negated: bool) -> BoolExpr<L> {
        match self {
            BoolExpr::Leaf(l) => {
                if negated {
                    BoolExpr::Leaf(l.negate())
                } else {
                    BoolExpr::Leaf(l.clone())
                }
            }
            BoolExpr::Not(inner) => inner.push_not(!negated),
            BoolExpr::And(parts) => {
                let mapped = parts.iter().map(|p| p.push_not(negated)).collect();
                if negated {
                    BoolExpr::Or(mapped)
                } else {
                    BoolExpr::And(mapped)
                }
            }
            BoolExpr::Or(parts) => {
                let mapped = parts.iter().map(|p| p.push_not(negated)).collect();
                if negated {
                    BoolExpr::And(mapped)
                } else {
                    BoolExpr::Or(mapped)
                }
            }
        }
    }

    /// Transform into DNF: a disjunction (outer Vec) of AND-terms (inner
    /// Vecs of leaves), exactly the
    /// `(p11 AND … AND p1m) OR (p21 AND … AND p2r) OR …` form of Section 7.
    pub fn to_dnf(&self) -> Vec<Vec<L>> {
        fn dnf<L: Clone + Negate>(e: &BoolExpr<L>) -> Vec<Vec<L>> {
            match e {
                BoolExpr::Leaf(l) => vec![vec![l.clone()]],
                BoolExpr::Not(_) => unreachable!("push_not removed all Nots"),
                BoolExpr::Or(parts) => parts.iter().flat_map(dnf).collect(),
                BoolExpr::And(parts) => {
                    // Cross-product of the parts' DNFs.
                    let mut acc: Vec<Vec<L>> = vec![Vec::new()];
                    for p in parts {
                        let terms = dnf(p);
                        let mut next = Vec::with_capacity(acc.len() * terms.len());
                        for a in &acc {
                            for t in &terms {
                                let mut merged = a.clone();
                                merged.extend(t.iter().cloned());
                                next.push(merged);
                            }
                        }
                        acc = next;
                    }
                    acc
                }
            }
        }
        dnf(&self.push_not(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test leaf: a variable index, possibly negated.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct V(usize, bool);

    impl Negate for V {
        fn negate(&self) -> Self {
            V(self.0, !self.1)
        }
    }

    fn leaf(i: usize) -> BoolExpr<V> {
        BoolExpr::Leaf(V(i, true))
    }

    /// Evaluate a BoolExpr under an assignment.
    fn eval(e: &BoolExpr<V>, assign: &[bool]) -> bool {
        match e {
            BoolExpr::Leaf(V(i, pos)) => assign[*i] == *pos,
            BoolExpr::And(ps) => ps.iter().all(|p| eval(p, assign)),
            BoolExpr::Or(ps) => ps.iter().any(|p| eval(p, assign)),
            BoolExpr::Not(p) => !eval(p, assign),
        }
    }

    /// Evaluate a DNF under an assignment.
    fn eval_dnf(dnf: &[Vec<V>], assign: &[bool]) -> bool {
        dnf.iter()
            .any(|term| term.iter().all(|V(i, pos)| assign[*i] == *pos))
    }

    fn assert_equivalent(e: &BoolExpr<V>, nvars: usize) {
        let dnf = e.to_dnf();
        for mask in 0..(1u32 << nvars) {
            let assign: Vec<bool> = (0..nvars).map(|i| mask & (1 << i) != 0).collect();
            assert_eq!(
                eval(e, &assign),
                eval_dnf(&dnf, &assign),
                "mismatch at {assign:?} for {e:?} → {dnf:?}"
            );
        }
    }

    #[test]
    fn leaf_is_its_own_dnf() {
        assert_eq!(leaf(0).to_dnf(), vec![vec![V(0, true)]]);
    }

    #[test]
    fn simple_and_or() {
        // a AND (b OR c)  →  (a AND b) OR (a AND c)
        let e = BoolExpr::And(vec![leaf(0), BoolExpr::Or(vec![leaf(1), leaf(2)])]);
        let dnf = e.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf[0], vec![V(0, true), V(1, true)]);
        assert_eq!(dnf[1], vec![V(0, true), V(2, true)]);
        assert_equivalent(&e, 3);
    }

    #[test]
    fn de_morgan_push_down() {
        // NOT (a AND b) → (¬a) OR (¬b)
        let e = BoolExpr::Not(Box::new(BoolExpr::And(vec![leaf(0), leaf(1)])));
        let dnf = e.to_dnf();
        assert_eq!(dnf, vec![vec![V(0, false)], vec![V(1, false)]]);
        assert_equivalent(&e, 2);
    }

    #[test]
    fn double_negation() {
        let e = BoolExpr::Not(Box::new(BoolExpr::Not(Box::new(leaf(0)))));
        assert_eq!(e.to_dnf(), vec![vec![V(0, true)]]);
    }

    #[test]
    fn nested_mixture_is_equivalent() {
        // (a OR NOT(b AND (c OR NOT d))) AND (d OR (a AND NOT c))
        let e = BoolExpr::And(vec![
            BoolExpr::Or(vec![
                leaf(0),
                BoolExpr::Not(Box::new(BoolExpr::And(vec![
                    leaf(1),
                    BoolExpr::Or(vec![leaf(2), BoolExpr::Not(Box::new(leaf(3)))]),
                ]))),
            ]),
            BoolExpr::Or(vec![
                leaf(3),
                BoolExpr::And(vec![leaf(0), BoolExpr::Not(Box::new(leaf(2)))]),
            ]),
        ]);
        assert_equivalent(&e, 4);
    }

    #[test]
    fn random_expressions_are_equivalent() {
        // Deterministic pseudo-random expression generator.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn gen(depth: usize, next: &mut impl FnMut() -> u64) -> BoolExpr<V> {
            if depth == 0 || next().is_multiple_of(3) {
                return BoolExpr::Leaf(V((next() % 5) as usize, next().is_multiple_of(2)));
            }
            match next() % 3 {
                0 => BoolExpr::And(vec![gen(depth - 1, next), gen(depth - 1, next)]),
                1 => BoolExpr::Or(vec![gen(depth - 1, next), gen(depth - 1, next)]),
                _ => BoolExpr::Not(Box::new(gen(depth - 1, next))),
            }
        }
        for _ in 0..50 {
            let e = gen(4, &mut next);
            assert_equivalent(&e, 5);
        }
    }
}
