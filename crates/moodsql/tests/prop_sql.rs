//! Property tests for MOODSQL: expression render → parse round-trip, and
//! lexer totality on printable input.

use proptest::prelude::*;

use mood_sql::ast::{AggFunc, CmpOp, Expr, Lit, PathRef};
use mood_sql::{parse_expr, Statement};

fn arb_path() -> impl Strategy<Value = PathRef> {
    // Identifiers prefixed with 'q' so generated names can never collide
    // with MOODSQL keywords (OR, AND, SET, …).
    (
        "q[a-z0-9]{0,4}",
        proptest::collection::vec("q[a-z0-9]{0,6}", 0..3),
    )
        .prop_map(|(var, segments)| PathRef { var, segments })
}

fn arb_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        any::<i32>().prop_map(|i| Lit::Int(i as i64)),
        // Floats whose Display form re-lexes as a float literal.
        (1i32..10_000, 1u32..100).prop_map(|(a, b)| Lit::Float(a as f64 + b as f64 / 100.0)),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Lit::Str),
        any::<bool>().prop_map(Lit::Bool),
        Just(Lit::Null),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Boolean expressions whose rendering is unambiguous under the parser's
/// precedence (comparisons over paths/literals, composed with AND/OR/NOT).
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = (arb_cmp(), arb_path(), arb_lit()).prop_map(|(op, p, l)| Expr::Compare {
        op,
        left: Box::new(Expr::Path(p)),
        right: Box::new(Expr::Literal(l)),
    });
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// Normalize nested And/Or nesting introduced by re-parsing
/// (`And([And([a,b]),c])` ≡ `And([a,b,c])`) so round-trips compare
/// structurally.
fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::And(parts) => {
            let mut flat = Vec::new();
            for p in parts {
                match normalize(p) {
                    Expr::And(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.pop().expect("one")
            } else {
                Expr::And(flat)
            }
        }
        Expr::Or(parts) => {
            let mut flat = Vec::new();
            for p in parts {
                match normalize(p) {
                    Expr::Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.pop().expect("one")
            } else {
                Expr::Or(flat)
            }
        }
        Expr::Not(inner) => Expr::Not(Box::new(normalize(inner))),
        Expr::Compare { op, left, right } => Expr::Compare {
            op: *op,
            left: Box::new(normalize(left)),
            right: Box::new(normalize(right)),
        },
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn render_parse_roundtrip(e in arb_bool_expr()) {
        let text = e.render();
        let back = parse_expr(&text).unwrap_or_else(|err| {
            panic!("rendered expression failed to parse: {text}\n{err}")
        });
        prop_assert_eq!(normalize(&back), normalize(&e), "text was: {}", text);
    }

    #[test]
    fn lexer_never_panics_on_printable_ascii(src in "[ -~]{0,60}") {
        let _ = mood_sql::parse(&src); // may error, must not panic
    }

    #[test]
    fn select_statements_roundtrip_projection(paths in proptest::collection::vec(arb_path(), 1..4)) {
        let projection: Vec<String> = paths.iter().map(PathRef::render).collect();
        let sql = format!("SELECT {} FROM Thing t", projection.join(", "));
        let Statement::Select(s) = mood_sql::parse(&sql).unwrap() else { panic!() };
        let rendered: Vec<String> = s.projection.iter().map(Expr::render).collect();
        prop_assert_eq!(rendered, projection);
    }

    #[test]
    fn aggregates_roundtrip(func in prop_oneof![
        Just(AggFunc::Count), Just(AggFunc::Sum), Just(AggFunc::Avg),
        Just(AggFunc::Min), Just(AggFunc::Max),
    ], p in arb_path()) {
        let text = format!("{}({})", func.name(), p.render());
        let e = parse_expr(&text).unwrap();
        prop_assert_eq!(e.render(), text);
    }
}
