//! Heap files: unordered collections of variable-length records addressed by
//! physical OIDs, with ESM-style forwarding for relocated records.
//!
//! Record layout on the page: a 1-byte tag (`TAG_NORMAL` or `TAG_MOVED_IN`)
//! followed by the payload. When an update outgrows its page, the record is
//! relocated and a forwarding stub is left at the original slot; the copy at
//! the new home is tagged `TAG_MOVED_IN` so sequential scans skip it and
//! instead reach it through the stub — which is exactly the extra random
//! access the cost model charges for forwarded objects.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::metrics::{AccessHint, AccessKind};
use crate::oid::{FileId, Oid, PageId, SlotId};
use crate::page::{SlotContent, SlottedPage, MAX_RECORD};

const TAG_NORMAL: u8 = 0;
const TAG_MOVED_IN: u8 = 1;

/// Largest payload a heap record may carry (page capacity minus the tag).
pub const MAX_PAYLOAD: usize = MAX_RECORD - 1;

/// A heap file of records.
pub struct HeapFile {
    file: FileId,
    pool: Arc<BufferPool>,
    /// Pages recently observed to have free space, newest last.
    free_hints: Mutex<Vec<PageId>>,
}

impl HeapFile {
    /// Create a brand-new heap file on the pool's disk.
    pub fn create(pool: Arc<BufferPool>) -> Result<HeapFile> {
        let file = pool.disk().create_file()?;
        Ok(HeapFile {
            file,
            pool,
            free_hints: Mutex::new(Vec::new()),
        })
    }

    /// Re-open an existing heap file.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> HeapFile {
        HeapFile {
            file,
            pool,
            free_hints: Mutex::new(Vec::new()),
        }
    }

    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of allocated pages — the cost model's `nbpages(C)`.
    pub fn pages(&self) -> Result<u32> {
        self.pool.disk().page_count(self.file)
    }

    /// Insert a record, returning its OID.
    pub fn insert(&self, payload: &[u8]) -> Result<Oid> {
        self.insert_tagged(payload, TAG_NORMAL)
    }

    fn insert_tagged(&self, payload: &[u8], tag: u8) -> Result<Oid> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        let mut rec = Vec::with_capacity(payload.len() + 1);
        rec.push(tag);
        rec.extend_from_slice(payload);

        // Try hinted pages (newest first), then the last page, then extend.
        let mut candidates: Vec<PageId> = {
            let hints = self.free_hints.lock();
            hints.iter().rev().copied().collect()
        };
        let pages = self.pages()?;
        if pages > 0 {
            let last = PageId(pages - 1);
            if !candidates.contains(&last) {
                candidates.push(last);
            }
        }
        for pid in candidates {
            let placed = self
                .pool
                .with_page_mut(self.file, pid, AccessKind::Random, |p| {
                    if SlottedPage::fits(p, rec.len()) {
                        Some(SlottedPage::insert(p, &rec))
                    } else {
                        None
                    }
                })?;
            if let Some(res) = placed {
                let (slot, unique) = res?;
                return Ok(Oid::new(self.file, pid, slot, unique));
            }
            self.free_hints.lock().retain(|h| *h != pid);
        }
        let (pid, res) = self.pool.new_page(self.file, |p| {
            SlottedPage::init(p);
            SlottedPage::insert(p, &rec)
        })?;
        let (slot, unique) = res?;
        self.free_hints.lock().push(pid);
        Ok(Oid::new(self.file, pid, slot, unique))
    }

    fn check_file(&self, oid: Oid) -> Result<()> {
        if oid.file != self.file {
            return Err(StorageError::DanglingOid(oid));
        }
        Ok(())
    }

    /// Fetch a record by OID (random access), following one forwarding hop.
    pub fn get(&self, oid: Oid) -> Result<Vec<u8>> {
        self.get_kind(oid, AccessKind::Random)
    }

    fn get_kind(&self, oid: Oid, kind: AccessKind) -> Result<Vec<u8>> {
        self.check_file(oid)?;
        let content = self
            .pool
            .with_page(self.file, oid.page, kind, |p| {
                SlottedPage::get(p, oid.slot, oid.unique)
            })?
            .map_err(|_| StorageError::DanglingOid(oid))?;
        match content {
            SlotContent::Record(bytes) => Ok(bytes[1..].to_vec()),
            SlotContent::Forward(fwd) => {
                let target = Oid::from_bytes(&fwd).ok_or(StorageError::CorruptAt {
                    file: self.file,
                    page: oid.page,
                    detail: "bad forwarding address".into(),
                })?;
                // Forwarded access always pays an extra random page fetch.
                let content = self
                    .pool
                    .with_page(self.file, target.page, AccessKind::Random, |p| {
                        SlottedPage::get(p, target.slot, target.unique)
                    })?
                    .map_err(|_| StorageError::DanglingOid(oid))?;
                match content {
                    SlotContent::Record(bytes) => Ok(bytes[1..].to_vec()),
                    _ => Err(StorageError::DanglingOid(oid)),
                }
            }
            SlotContent::Free => Err(StorageError::DanglingOid(oid)),
        }
    }

    /// Update a record in place, relocating with a forwarding stub when the
    /// new payload no longer fits. The record's OID never changes.
    pub fn update(&self, oid: Oid, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        self.check_file(oid)?;
        let mut rec = Vec::with_capacity(payload.len() + 1);
        rec.push(TAG_NORMAL);
        rec.extend_from_slice(payload);

        enum Outcome {
            Done,
            Relocate,
            FollowForward(Oid),
        }
        let outcome = self
            .pool
            .with_page_mut(
                self.file,
                oid.page,
                AccessKind::Random,
                |p| match SlottedPage::get(p, oid.slot, oid.unique) {
                    Err(_) | Ok(SlotContent::Free) => Err(StorageError::DanglingOid(oid)),
                    Ok(SlotContent::Forward(fwd)) => {
                        let target = Oid::from_bytes(&fwd).ok_or(StorageError::CorruptAt {
                            file: oid.file,
                            page: oid.page,
                            detail: "bad forwarding address".into(),
                        })?;
                        Ok(Outcome::FollowForward(target))
                    }
                    Ok(SlotContent::Record(_)) => {
                        if SlottedPage::try_update(p, oid.slot, &rec)? {
                            Ok(Outcome::Done)
                        } else {
                            Ok(Outcome::Relocate)
                        }
                    }
                },
            )??;
        match outcome {
            Outcome::Done => Ok(()),
            Outcome::FollowForward(target) => {
                // Update the relocated copy; keep the MOVED_IN tag so scans
                // still reach it only via the stub. Re-relocation (the copy
                // outgrowing its new page) re-points the original stub.
                let mut moved = rec.clone();
                moved[0] = TAG_MOVED_IN;
                let done = self.pool.with_page_mut(
                    self.file,
                    target.page,
                    AccessKind::Random,
                    |p| SlottedPage::try_update(p, target.slot, &moved),
                )??;
                if done {
                    return Ok(());
                }
                // Drop the outgrown copy, place a fresh one, and re-point
                // the original stub at it. `make_forward` rewrites the stub
                // in place, keeping the slot's stamp — the caller's OID
                // stays valid.
                self.pool
                    .with_page_mut(self.file, target.page, AccessKind::Random, |p| {
                        SlottedPage::delete(p, target.slot)
                    })??;
                let new_home = self.insert_tagged(payload, TAG_MOVED_IN)?;
                self.pool
                    .with_page_mut(self.file, oid.page, AccessKind::Random, |p| {
                        SlottedPage::make_forward(p, oid.slot, &new_home.to_bytes())
                    })??;
                Ok(())
            }
            Outcome::Relocate => {
                let new_home = self.insert_tagged(payload, TAG_MOVED_IN)?;
                self.pool
                    .with_page_mut(self.file, oid.page, AccessKind::Random, |p| {
                        SlottedPage::make_forward(p, oid.slot, &new_home.to_bytes())
                    })??;
                Ok(())
            }
        }
    }

    /// Delete a record (and its relocated copy, if any).
    pub fn delete(&self, oid: Oid) -> Result<()> {
        self.check_file(oid)?;
        let fwd = self
            .pool
            .with_page_mut(
                self.file,
                oid.page,
                AccessKind::Random,
                |p| match SlottedPage::get(p, oid.slot, oid.unique) {
                    Err(_) | Ok(SlotContent::Free) => Err(StorageError::DanglingOid(oid)),
                    Ok(SlotContent::Forward(bytes)) => {
                        SlottedPage::delete(p, oid.slot)?;
                        Ok(Oid::from_bytes(&bytes))
                    }
                    Ok(SlotContent::Record(_)) => {
                        SlottedPage::delete(p, oid.slot)?;
                        Ok(None)
                    }
                },
            )??;
        self.free_hints.lock().push(oid.page);
        if let Some(target) = fwd {
            self.pool
                .with_page_mut(self.file, target.page, AccessKind::Random, |p| {
                    SlottedPage::delete(p, target.slot)
                })??;
            self.free_hints.lock().push(target.page);
        }
        Ok(())
    }

    /// Sequential scan over all live records, in (page, slot) order,
    /// yielding each record's canonical OID.
    ///
    /// Relocated records are emitted when their forwarding stub is reached
    /// (one extra random access each), and their `MOVED_IN` home copy is
    /// skipped — so every record appears exactly once under its original OID.
    pub fn scan(&self) -> Result<Vec<(Oid, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_with(|oid, bytes| {
            out.push((oid, bytes.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Streaming scan; the visitor returns `false` to stop early.
    pub fn scan_with(&self, mut visit: impl FnMut(Oid, &[u8]) -> bool) -> Result<()> {
        let pages = self.pages()?;
        self.scan_pages(0, pages, AccessHint::Sequential, &mut visit)
    }

    /// Streaming scan with an explicit access hint. `Sequential` is the
    /// normal extent-sweep path (readahead, cold frame placement);
    /// `Random` reads each page as a random access — frames enter the hot
    /// set, which suits small metadata heaps read once at bootstrap and
    /// consulted point-wise afterwards.
    pub fn scan_hint_with(
        &self,
        hint: AccessHint,
        mut visit: impl FnMut(Oid, &[u8]) -> bool,
    ) -> Result<()> {
        let pages = self.pages()?;
        self.scan_pages(0, pages, hint, &mut visit)
    }

    /// Streaming scan over pages `[start, end)` — the unit the chunk-parallel
    /// executor hands one thread.
    pub fn scan_range_with(
        &self,
        start: u32,
        end: u32,
        mut visit: impl FnMut(Oid, &[u8]) -> bool,
    ) -> Result<()> {
        self.scan_pages(start, end, AccessHint::Sequential, &mut visit)
    }

    /// Pages `[start, end)` in order. Sequential scans are read with
    /// readahead: at each window boundary the pool prefetches the next K
    /// pages as one contiguous disk batch (`record_sequential_batch`),
    /// which is the physical behavior SEQCOST's one-seek-per-run term
    /// models.
    fn scan_pages(
        &self,
        start: u32,
        end: u32,
        hint: AccessHint,
        visit: &mut dyn FnMut(Oid, &[u8]) -> bool,
    ) -> Result<()> {
        let end = end.min(self.pages()?);
        let kind = hint.kind();
        let window = match hint {
            AccessHint::Sequential => self.pool.readahead_window(),
            AccessHint::Random => 0,
        };
        'pages: for pnum in start..end {
            let pid = PageId(pnum);
            if window > 0 && (pnum - start).is_multiple_of(window) {
                let span = window.min(end - pnum);
                // Advisory: a failed readahead just means the pages are
                // fetched on demand below, where real errors surface.
                self.pool.prefetch_sequential(self.file, pid, span);
            }
            // Materialize the page's live slots, then resolve forwards
            // outside the page callback (no pool re-entrancy).
            let entries: Vec<(SlotId, u32, bool, Option<Vec<u8>>)> =
                self.pool
                    .with_page(self.file, pid, kind, |p| {
                        SlottedPage::live_slots(p)
                            .into_iter()
                            .map(|(slot, stamp, is_fwd)| {
                                let bytes = match SlottedPage::get_any(p, slot) {
                                    Ok(SlotContent::Record(b)) => Some(b),
                                    Ok(SlotContent::Forward(b)) => Some(b),
                                    _ => None,
                                };
                                (slot, stamp, is_fwd, bytes)
                            })
                            .collect()
                    })?;
            for (slot, stamp, is_fwd, bytes) in entries {
                let Some(bytes) = bytes else { continue };
                let oid = Oid::new(self.file, pid, slot, stamp);
                if is_fwd {
                    let record = self.get_kind(oid, AccessKind::Random)?;
                    if !visit(oid, &record) {
                        break 'pages;
                    }
                } else if bytes.first() == Some(&TAG_NORMAL) && !visit(oid, &bytes[1..]) {
                    break 'pages;
                }
                // TAG_MOVED_IN records are skipped: reached via their stub.
            }
        }
        Ok(())
    }

    /// Count live records (scans the file).
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        self.scan_with(|_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::metrics::DiskMetrics;

    fn heap() -> HeapFile {
        let disk = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, 64, DiskMetrics::new()));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let oid = h.insert(b"record one").unwrap();
        assert_eq!(h.get(oid).unwrap(), b"record one");
    }

    #[test]
    fn many_records_span_pages() {
        let h = heap();
        let oids: Vec<_> = (0..500)
            .map(|i| h.insert(format!("rec-{i:04}").as_bytes()).unwrap())
            .collect();
        assert!(h.pages().unwrap() > 1, "500 records need multiple pages");
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(h.get(*oid).unwrap(), format!("rec-{i:04}").as_bytes());
        }
        assert_eq!(h.count().unwrap(), 500);
    }

    #[test]
    fn delete_then_get_is_dangling() {
        let h = heap();
        let oid = h.insert(b"gone").unwrap();
        h.delete(oid).unwrap();
        assert!(matches!(h.get(oid), Err(StorageError::DanglingOid(_))));
        assert!(matches!(h.delete(oid), Err(StorageError::DanglingOid(_))));
    }

    #[test]
    fn update_in_place() {
        let h = heap();
        let oid = h.insert(b"aaaa").unwrap();
        h.update(oid, b"bb").unwrap();
        assert_eq!(h.get(oid).unwrap(), b"bb");
    }

    #[test]
    fn update_relocates_with_stable_oid() {
        let h = heap();
        let oid = h.insert(b"small").unwrap();
        // Fill the rest of the page so growth forces relocation.
        while h.pages().unwrap() == 1 {
            h.insert(&vec![7u8; 600]).unwrap();
        }
        let big = vec![9u8; 3500];
        h.update(oid, &big).unwrap();
        assert_eq!(h.get(oid).unwrap(), big, "OID survives relocation");
        // And the record appears exactly once in a scan, under its OID.
        let hits: Vec<_> = h
            .scan()
            .unwrap()
            .into_iter()
            .filter(|(o, _)| *o == oid)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, big);
    }

    #[test]
    fn scan_sees_all_records_once() {
        let h = heap();
        let mut expect = std::collections::BTreeMap::new();
        for i in 0..200 {
            let payload = format!("row{i}");
            let oid = h.insert(payload.as_bytes()).unwrap();
            expect.insert(oid, payload.into_bytes());
        }
        // Delete a third, update a third.
        let oids: Vec<_> = expect.keys().copied().collect();
        for (i, oid) in oids.iter().enumerate() {
            if i % 3 == 0 {
                h.delete(*oid).unwrap();
                expect.remove(oid);
            } else if i % 3 == 1 {
                let new = vec![b'u'; 100 + i];
                h.update(*oid, &new).unwrap();
                expect.insert(*oid, new);
            }
        }
        let scanned: std::collections::BTreeMap<_, _> = h.scan().unwrap().into_iter().collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn scan_early_stop() {
        let h = heap();
        for i in 0..50 {
            h.insert(&[i]).unwrap();
        }
        let mut seen = 0;
        h.scan_with(|_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn scan_counts_sequential_pages() {
        let disk = Arc::new(MemDisk::new());
        let metrics = DiskMetrics::new();
        let pool = Arc::new(BufferPool::new(disk, 4, metrics.clone()));
        let h = HeapFile::create(pool).unwrap();
        for _ in 0..100 {
            h.insert(&vec![1u8; 400]).unwrap();
        }
        metrics.reset();
        let _ = h.scan().unwrap();
        let snap = metrics.snapshot();
        assert!(snap.seq_pages > 0, "scan reads pages sequentially");
        assert_eq!(snap.rnd_pages, 0, "no forwards, so no random fetches");
    }

    #[test]
    fn scan_readahead_batches_page_reads() {
        let disk = Arc::new(MemDisk::new());
        let metrics = DiskMetrics::new();
        // 64 frames -> readahead enabled (window 8).
        let pool = Arc::new(BufferPool::new(disk, 64, metrics.clone()));
        assert!(pool.readahead_window() >= 2);
        let h = HeapFile::create(pool).unwrap();
        for i in 0..600u32 {
            h.insert(format!("row-{i:05}").as_bytes()).unwrap();
        }
        let pages = h.pages().unwrap() as u64;
        assert!(pages > 2);
        // Evict everything so the scan starts cold.
        h.pool.discard_file(h.file_id());
        metrics.reset();
        assert_eq!(h.count().unwrap(), 600);
        let snap = metrics.snapshot();
        assert_eq!(snap.seq_pages, pages, "every page read exactly once");
        assert!(
            snap.seq_batches < pages,
            "readahead coalesces page reads into batches \
             ({} batches for {pages} pages)",
            snap.seq_batches
        );
        assert_eq!(snap.rnd_pages, 0);
    }

    #[test]
    fn range_scan_partitions_cover_full_scan() {
        let h = heap();
        for i in 0..300u32 {
            h.insert(format!("r{i}").as_bytes()).unwrap();
        }
        let full: Vec<_> = h.scan().unwrap();
        let pages = h.pages().unwrap();
        let mid = pages / 2;
        let mut halves = Vec::new();
        for (a, b) in [(0, mid), (mid, pages)] {
            h.scan_range_with(a, b, |oid, bytes| {
                halves.push((oid, bytes.to_vec()));
                true
            })
            .unwrap();
        }
        assert_eq!(halves, full, "range partitions concatenate to the scan");
    }

    #[test]
    fn oversized_record_rejected() {
        let h = heap();
        assert!(matches!(
            h.insert(&vec![0u8; MAX_PAYLOAD + 1]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn deleted_space_is_reused() {
        let h = heap();
        let oids: Vec<_> = (0..64)
            .map(|_| h.insert(&vec![3u8; 450]).unwrap())
            .collect();
        let pages_before = h.pages().unwrap();
        for oid in &oids {
            h.delete(*oid).unwrap();
        }
        for _ in 0..64 {
            h.insert(&vec![4u8; 450]).unwrap();
        }
        assert_eq!(
            h.pages().unwrap(),
            pages_before,
            "freed space reused, no growth"
        );
    }
}
