//! Disk-access instrumentation and the paper's physical disk model.
//!
//! The MOOD optimizer's cost formulas (Sections 5 and 6) are expressed in
//! page accesses weighted by the Table 10 physical parameters. The authors'
//! testbed disk is unavailable (and Table 10's numeric values were never
//! published), so we *instrument* every page access instead: each operation
//! scope counts sequential and random page reads/writes, and
//! [`PhysicalParams`] converts those counts into modelled seconds. Benches
//! report both wall-clock and modelled cost, which is what lets the
//! reproduction compare measured access patterns against the paper's cost
//! formulas on equal footing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

use crate::page::PAGE_SIZE;

/// Physical disk parameters — the paper's Table 10.
///
/// * `block` — block size `B` in bytes,
/// * `btt` — block transfer time,
/// * `ebt` — effective block transfer time (sequential, amortized),
/// * `rot` — average rotational latency `r`,
/// * `seek` — average seek time `s`.
///
/// All times in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalParams {
    pub block: usize,
    pub btt: f64,
    pub ebt: f64,
    pub rot: f64,
    pub seek: f64,
}

impl PhysicalParams {
    /// Era-plausible values following Salzberg's *File Structures* (1988):
    /// a 4 KB block, 16 ms average seek, 8.3 ms rotational latency
    /// (3600 rpm), 1.4 MB/s sustained transfer.
    pub fn salzberg_1988() -> Self {
        let btt = PAGE_SIZE as f64 / 1.4e6;
        PhysicalParams {
            block: PAGE_SIZE,
            btt,
            ebt: btt,
            rot: 8.3e-3,
            seek: 16.0e-3,
        }
    }

    /// Calibrated so the Table 16 forward-traversal cost of path P2
    /// (`v.company.name`) equals the paper's 520.825: the only free
    /// parameter the formula exposes is `u = s + r + btt`, and
    /// `F2 = RNDCOST(nbpg_c) + RNDCOST(|Vehicle| * fan) ≈ 22000 * u`
    /// gives `u = 23.674 ms`. `ebt` is set to `btt` (ESM stores files as
    /// B+-trees, making sequential and random access equal in cost, as the
    /// paper notes in Section 5).
    pub fn paper_calibrated() -> Self {
        // nbpg_c = nbpages(Vehicle) * (1 - (1 - 1/nbpages)^|Vehicle|), the
        // Section 6.1 page-hit estimate with the Table 13 statistics.
        let nbpg_c = 2000.0 * (1.0 - (1.0 - 1.0 / 2000.0_f64).powi(20000));
        let u = 520.825 / (nbpg_c + 20_000.0);
        // Split u across seek/rot/btt in era-typical proportions; only the
        // sum matters to RNDCOST.
        let seek = u * 0.60;
        let rot = u * 0.30;
        let btt = u * 0.10;
        PhysicalParams {
            block: PAGE_SIZE,
            btt,
            ebt: btt,
            rot,
            seek,
        }
    }

    /// Cost of one random page access: `s + r + btt`.
    pub fn random_page(&self) -> f64 {
        self.seek + self.rot + self.btt
    }

    /// SEQCOST(b) — Section 5: one seek + latency, then `b` effective
    /// transfers.
    pub fn seq_cost(&self, pages: f64) -> f64 {
        if pages <= 0.0 {
            return 0.0;
        }
        self.seek + self.rot + pages * self.ebt
    }

    /// RNDCOST(b) — Section 5.
    pub fn rnd_cost(&self, pages: f64) -> f64 {
        pages.max(0.0) * self.random_page()
    }

    /// SEQCOST with readahead batching: `b` pages fetched in contiguous
    /// batches of (at most) `k` pay one seek + latency per *batch* instead
    /// of per page-run — `ceil(b/k) * (s + r) + b * ebt`.
    pub fn seq_cost_batched(&self, pages: f64, batch: u32) -> f64 {
        if pages <= 0.0 {
            return 0.0;
        }
        let k = batch.max(1) as f64;
        (pages / k).ceil() * (self.seek + self.rot) + pages * self.ebt
    }

    /// Modelled time for a recorded access pattern.
    pub fn time(&self, snapshot: &MetricsSnapshot) -> f64 {
        // Each sequential *batch* pays one seek + latency; individual pages
        // in the batch pay `ebt`. Accesses recorded before readahead
        // batching existed have `seq_batches == 0` and count as one run.
        // Random pages pay the full `s + r + btt`.
        let seq = if snapshot.seq_pages > 0 {
            let runs = snapshot.seq_batches.max(1) as f64;
            runs * (self.seek + self.rot) + snapshot.seq_pages as f64 * self.ebt
        } else {
            0.0
        };
        seq + self.rnd_cost((snapshot.rnd_pages + snapshot.idx_pages) as f64)
            + self.rnd_cost(snapshot.writes as f64)
    }
}

impl Default for PhysicalParams {
    fn default() -> Self {
        PhysicalParams::salzberg_1988()
    }
}

/// Category of a page access, chosen by the *caller* (the file/index layer
/// knows whether it is scanning or probing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Page touched as part of a sequential scan run.
    Sequential,
    /// Page fetched by direct addressing (OID chase, hash probe).
    Random,
    /// Page fetched while descending or scanning an index.
    Index,
}

/// How a caller intends to walk a collection — chosen at the scan entry
/// points (extent binds, nested-loop rebinds) and threaded down to the
/// heap/buffer layer, where it selects the [`AccessKind`] recorded per page
/// and decides whether readahead and cold (scan-resistant) frame insertion
/// apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessHint {
    /// A front-to-back sweep: pages are classified [`AccessKind::Sequential`],
    /// prefetched in contiguous batches, and cached at the clock's cold
    /// position so the sweep cannot flush the hot set.
    Sequential,
    /// Unordered or selective access: pages are classified
    /// [`AccessKind::Random`], no readahead, normal (hot) caching.
    Random,
}

impl AccessHint {
    /// The [`AccessKind`] recorded for pages read under this hint.
    pub fn kind(self) -> AccessKind {
        match self {
            AccessHint::Sequential => AccessKind::Sequential,
            AccessHint::Random => AccessKind::Random,
        }
    }
}

/// Shared counters. Cloning shares the underlying counters (Arc).
///
/// Besides the process-wide totals, every access is also attributed to the
/// recording thread, so parallel operators can report how page work was
/// distributed across their workers. The totals are always the sum of the
/// per-thread counts — parallel execution redistributes accesses between
/// threads but must never change the totals the cost model is checked
/// against.
#[derive(Debug, Default, Clone)]
pub struct DiskMetrics {
    inner: Arc<Counters>,
    per_thread: Arc<Mutex<HashMap<ThreadId, Arc<Counters>>>>,
}

#[derive(Debug, Default)]
struct Counters {
    seq_pages: AtomicU64,
    seq_batches: AtomicU64,
    rnd_pages: AtomicU64,
    idx_pages: AtomicU64,
    writes: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_misses: AtomicU64,
    buffer_evictions: AtomicU64,
}

/// A point-in-time copy of the counters (or a delta between two points).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub seq_pages: u64,
    /// Contiguous readahead batches issued (each covering several
    /// `seq_pages` with a single seek); 0 when scans ran unbatched.
    pub seq_batches: u64,
    pub rnd_pages: u64,
    pub idx_pages: u64,
    pub writes: u64,
    pub buffer_hits: u64,
    pub buffer_misses: u64,
    pub buffer_evictions: u64,
}

impl MetricsSnapshot {
    pub fn total_reads(&self) -> u64 {
        self.seq_pages + self.rnd_pages + self.idx_pages
    }

    /// Component-wise sum (saturating).
    pub fn plus(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            seq_pages: self.seq_pages.saturating_add(other.seq_pages),
            seq_batches: self.seq_batches.saturating_add(other.seq_batches),
            rnd_pages: self.rnd_pages.saturating_add(other.rnd_pages),
            idx_pages: self.idx_pages.saturating_add(other.idx_pages),
            writes: self.writes.saturating_add(other.writes),
            buffer_hits: self.buffer_hits.saturating_add(other.buffer_hits),
            buffer_misses: self.buffer_misses.saturating_add(other.buffer_misses),
            buffer_evictions: self.buffer_evictions.saturating_add(other.buffer_evictions),
        }
    }

    /// Component-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            seq_pages: self.seq_pages.saturating_sub(earlier.seq_pages),
            seq_batches: self.seq_batches.saturating_sub(earlier.seq_batches),
            rnd_pages: self.rnd_pages.saturating_sub(earlier.rnd_pages),
            idx_pages: self.idx_pages.saturating_sub(earlier.idx_pages),
            writes: self.writes.saturating_sub(earlier.writes),
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            buffer_misses: self.buffer_misses.saturating_sub(earlier.buffer_misses),
            buffer_evictions: self.buffer_evictions.saturating_sub(earlier.buffer_evictions),
        }
    }
}

impl DiskMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter block attributed to the calling thread, creating it on
    /// first use. The lock is held only for the map lookup; the atomic bumps
    /// happen outside it.
    fn thread_counters(&self) -> Arc<Counters> {
        let id = std::thread::current().id();
        self.per_thread.lock().entry(id).or_default().clone()
    }

    fn bump_read(c: &Counters, kind: AccessKind) {
        let field = match kind {
            AccessKind::Sequential => &c.seq_pages,
            AccessKind::Random => &c.rnd_pages,
            AccessKind::Index => &c.idx_pages,
        };
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot_of(c: &Counters) -> MetricsSnapshot {
        MetricsSnapshot {
            seq_pages: c.seq_pages.load(Ordering::Relaxed),
            seq_batches: c.seq_batches.load(Ordering::Relaxed),
            rnd_pages: c.rnd_pages.load(Ordering::Relaxed),
            idx_pages: c.idx_pages.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            buffer_hits: c.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: c.buffer_misses.load(Ordering::Relaxed),
            buffer_evictions: c.buffer_evictions.load(Ordering::Relaxed),
        }
    }

    pub fn record_read(&self, kind: AccessKind) {
        Self::bump_read(&self.inner, kind);
        Self::bump_read(&self.thread_counters(), kind);
    }

    /// One contiguous readahead batch of `pages` sequential pages: counts
    /// the pages as sequential reads and the batch itself once — the cost
    /// model charges one seek + latency per batch, not per page run.
    pub fn record_sequential_batch(&self, pages: u64) {
        self.inner.seq_pages.fetch_add(pages, Ordering::Relaxed);
        self.inner.seq_batches.fetch_add(1, Ordering::Relaxed);
        let tc = self.thread_counters();
        tc.seq_pages.fetch_add(pages, Ordering::Relaxed);
        tc.seq_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_write(&self) {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        self.thread_counters().writes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_buffer_hit(&self) {
        self.inner.buffer_hits.fetch_add(1, Ordering::Relaxed);
        self.thread_counters()
            .buffer_hits
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_buffer_miss(&self) {
        self.inner.buffer_misses.fetch_add(1, Ordering::Relaxed);
        self.thread_counters()
            .buffer_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_buffer_eviction(&self) {
        self.inner.buffer_evictions.fetch_add(1, Ordering::Relaxed);
        self.thread_counters()
            .buffer_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        Self::snapshot_of(&self.inner)
    }

    /// Per-thread view of the counters, ordered by thread id for stable
    /// output. Summing the snapshots componentwise reproduces
    /// [`DiskMetrics::snapshot`] (for accesses recorded since the last
    /// [`DiskMetrics::reset`]).
    pub fn per_thread_snapshot(&self) -> Vec<(ThreadId, MetricsSnapshot)> {
        let mut out: Vec<(ThreadId, MetricsSnapshot)> = self
            .per_thread
            .lock()
            .iter()
            .map(|(id, c)| (*id, Self::snapshot_of(c)))
            .collect();
        out.sort_by_key(|(id, _)| format!("{id:?}"));
        out
    }

    pub fn reset(&self) {
        self.inner.seq_pages.store(0, Ordering::Relaxed);
        self.inner.seq_batches.store(0, Ordering::Relaxed);
        self.inner.rnd_pages.store(0, Ordering::Relaxed);
        self.inner.idx_pages.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
        self.inner.buffer_hits.store(0, Ordering::Relaxed);
        self.inner.buffer_misses.store(0, Ordering::Relaxed);
        self.inner.buffer_evictions.store(0, Ordering::Relaxed);
        self.per_thread.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = DiskMetrics::new();
        m.record_read(AccessKind::Sequential);
        m.record_read(AccessKind::Random);
        m.record_read(AccessKind::Random);
        m.record_read(AccessKind::Index);
        m.record_write();
        let s = m.snapshot();
        assert_eq!(s.seq_pages, 1);
        assert_eq!(s.rnd_pages, 2);
        assert_eq!(s.idx_pages, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total_reads(), 4);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn per_thread_counts_sum_to_totals() {
        let m = DiskMetrics::new();
        m.record_read(AccessKind::Sequential);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let m = m.clone();
                s.spawn(move || {
                    m.record_read(AccessKind::Random);
                    m.record_write();
                });
            }
        });
        let per = m.per_thread_snapshot();
        assert_eq!(per.len(), 4, "main + 3 workers");
        let total = m.snapshot();
        assert_eq!(per.iter().map(|(_, s)| s.seq_pages).sum::<u64>(), total.seq_pages);
        assert_eq!(per.iter().map(|(_, s)| s.rnd_pages).sum::<u64>(), total.rnd_pages);
        assert_eq!(per.iter().map(|(_, s)| s.writes).sum::<u64>(), total.writes);
        m.reset();
        assert!(m.per_thread_snapshot().is_empty());
    }

    #[test]
    fn clones_share_counters() {
        let m = DiskMetrics::new();
        let m2 = m.clone();
        m2.record_read(AccessKind::Random);
        assert_eq!(m.snapshot().rnd_pages, 1);
    }

    #[test]
    fn delta_is_componentwise() {
        let m = DiskMetrics::new();
        m.record_read(AccessKind::Random);
        let before = m.snapshot();
        m.record_read(AccessKind::Random);
        m.record_read(AccessKind::Sequential);
        let after = m.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.rnd_pages, 1);
        assert_eq!(d.seq_pages, 1);
    }

    #[test]
    fn seq_cheaper_than_rnd_for_many_pages() {
        let p = PhysicalParams::salzberg_1988();
        assert!(p.seq_cost(1000.0) < p.rnd_cost(1000.0));
        // A single page costs the same either way when ebt == btt.
        assert!((p.seq_cost(1.0) - p.rnd_cost(1.0)).abs() < 1e-12);
    }

    #[test]
    fn paper_calibration_reproduces_f2() {
        let p = PhysicalParams::paper_calibrated();
        let nbpg_c = 2000.0 * (1.0 - (1.0 - 1.0 / 2000.0_f64).powi(20000));
        let f2 = p.rnd_cost(nbpg_c) + p.rnd_cost(20000.0);
        assert!((f2 - 520.825).abs() < 1e-6, "calibrated F2 = {f2}");
    }

    #[test]
    fn modelled_time_counts_all_categories() {
        let p = PhysicalParams::salzberg_1988();
        let snap = MetricsSnapshot {
            seq_pages: 10,
            rnd_pages: 5,
            idx_pages: 2,
            writes: 1,
            ..Default::default()
        };
        let t = p.time(&snap);
        assert!(t > 0.0);
        // Removing random pages must reduce modelled time.
        let less = MetricsSnapshot {
            rnd_pages: 0,
            ..snap
        };
        assert!(p.time(&less) < t);
    }
}
