//! Vendored stand-in for the `rand` crate so the workspace builds offline.
//! Provides a deterministic `StdRng` (SplitMix64 core — not the real
//! ChaCha12, so streams differ from upstream, which is fine: the repo only
//! needs reproducibility under a fixed seed) plus the `Rng::gen_range`
//! surface the data generator uses.

use std::ops::Range;

/// Core 64-bit generator state (SplitMix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Scramble the raw seed once so seed 0 doesn't start at state 0.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

/// Types usable as a `gen_range` bound.
pub trait SampleUniform: Copy {
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),* $(,)?) => {
        $(impl SampleUniform for $ty {
            fn sample(rng: &mut StdRng, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $ty
            }
        })*
    };
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

pub mod rngs {
    pub use super::StdRng;
}

pub mod prelude {
    pub use super::{Rng, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3..4usize);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..8).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
