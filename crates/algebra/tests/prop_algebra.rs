//! Property tests for the algebra's laws: set operators form a Boolean
//! algebra over OID sets, Sort orders without losing elements, DupElim is
//! idempotent, Nest inverts Unnest, and the four join methods agree on
//! randomized databases.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use mood_algebra::{
    difference, difference_par, dup_elim, dup_elim_par, intersection, intersection_par, join,
    join_par, nest, project, project_par, select, select_par, sort, sort_par, union, union_par,
    unnest, Collection, ExecutionConfig, JoinMethod, JoinRhs, Obj,
};
use mood_catalog::{Catalog, ClassBuilder};
use mood_datamodel::{TypeDescriptor, Value};
use mood_storage::{Oid, StorageManager};

fn catalog_with_items(n: usize) -> (Arc<Catalog>, Vec<Oid>) {
    let sm = Arc::new(StorageManager::in_memory());
    let cat = Arc::new(Catalog::create(sm).unwrap());
    cat.define_class(
        ClassBuilder::class("Item")
            .attribute("k", TypeDescriptor::integer())
            .attribute("grp", TypeDescriptor::integer()),
    )
    .unwrap();
    let oids = (0..n)
        .map(|i| {
            cat.new_object(
                "Item",
                Value::tuple(vec![
                    ("k", Value::Integer(i as i32)),
                    ("grp", Value::Integer((i % 3) as i32)),
                ]),
            )
            .unwrap()
        })
        .collect();
    (cat, oids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn set_operators_match_hashset_semantics(
        xs in proptest::collection::vec(0usize..20, 0..15),
        ys in proptest::collection::vec(0usize..20, 0..15),
    ) {
        let (_cat, oids) = catalog_with_items(20);
        let a = Collection::set_from(xs.iter().map(|&i| oids[i]).collect());
        let b = Collection::set_from(ys.iter().map(|&i| oids[i]).collect());
        let sa: HashSet<Oid> = a.oids().into_iter().collect();
        let sb: HashSet<Oid> = b.oids().into_iter().collect();

        let u: HashSet<Oid> = union(&a, &b).unwrap().oids().into_iter().collect();
        prop_assert_eq!(&u, &sa.union(&sb).copied().collect::<HashSet<_>>());

        let i: HashSet<Oid> = intersection(&a, &b).unwrap().oids().into_iter().collect();
        prop_assert_eq!(&i, &sa.intersection(&sb).copied().collect::<HashSet<_>>());

        let d: HashSet<Oid> = difference(&a, &b).unwrap().oids().into_iter().collect();
        prop_assert_eq!(&d, &sa.difference(&sb).copied().collect::<HashSet<_>>());

        // De Morgan-ish sanity: |A∪B| = |A| + |B| − |A∩B|.
        prop_assert_eq!(u.len(), sa.len() + sb.len() - i.len());
    }

    #[test]
    fn sort_is_a_permutation_in_key_order(perm in proptest::collection::vec(0usize..30, 1..30)) {
        let (cat, oids) = catalog_with_items(30);
        let extent = Collection::Extent(
            perm.iter()
                .map(|&i| {
                    let (_, v) = cat.get_object(oids[i]).unwrap();
                    Obj::stored(oids[i], v)
                })
                .collect(),
        );
        let sorted = sort(&cat, &extent, &["k"]).unwrap();
        let Collection::Extent(objs) = &sorted else { panic!() };
        prop_assert_eq!(objs.len(), perm.len(), "no elements lost");
        let keys: Vec<i32> = objs
            .iter()
            .map(|o| match o.value.field("k") {
                Some(Value::Integer(i)) => *i,
                _ => unreachable!(),
            })
            .collect();
        let mut want: Vec<i32> = perm.iter().map(|&i| i as i32).collect();
        want.sort();
        prop_assert_eq!(keys, want);
    }

    #[test]
    fn dup_elim_is_idempotent_on_lists(items in proptest::collection::vec(0usize..10, 0..25)) {
        let (cat, oids) = catalog_with_items(10);
        let list = Collection::List(items.iter().map(|&i| oids[i]).collect());
        let once = dup_elim(&cat, &list).unwrap();
        let twice = dup_elim(&cat, &once).unwrap();
        prop_assert_eq!(&once, &twice);
        // Distinct count matches the model.
        let distinct: HashSet<usize> = items.into_iter().collect();
        prop_assert_eq!(once.len(), distinct.len());
    }

    #[test]
    fn unnest_then_nest_roundtrips(groups in proptest::collection::vec(
        (0i32..100, proptest::collection::hash_set(0u8..200, 1..6)),
        1..6,
    )) {
        // Build tuples <head, tail: Set> with unique heads and non-empty,
        // disjoint-ish tails.
        let (cat, _) = catalog_with_items(1);
        let mut heads = HashSet::new();
        let flat_input: Vec<Obj> = groups
            .iter()
            .filter(|(h, _)| heads.insert(*h))
            .map(|(h, tail)| {
                Obj::transient(Value::tuple(vec![
                    ("head", Value::Integer(*h)),
                    (
                        "tail",
                        Value::Set(tail.iter().map(|&t| Value::Integer(t as i32)).collect()),
                    ),
                ]))
            })
            .collect();
        let n_groups = flat_input.len();
        let total: usize = flat_input
            .iter()
            .map(|o| match o.value.field("tail") {
                Some(Value::Set(s)) => s.len(),
                _ => 0,
            })
            .sum();
        let nested_in = Collection::Extent(flat_input);
        let flat = unnest(&cat, &nested_in, "tail").unwrap();
        prop_assert_eq!(flat.len(), total, "one row per tail element");
        let back = nest(&cat, &flat, "tail").unwrap();
        prop_assert_eq!(back.len(), n_groups, "nest regroups by head");
        // Each regrouped tail matches the original as a set.
        let Collection::Extent(back_objs) = &back else { panic!() };
        let Collection::Extent(orig_objs) = &nested_in else { panic!() };
        for orig in orig_objs {
            let head = orig.value.field("head").unwrap();
            let orig_tail = orig.value.field("tail").unwrap();
            let found = back_objs
                .iter()
                .find(|o| o.value.field("head").unwrap().equals(head))
                .expect("head survives");
            prop_assert!(found.value.field("tail").unwrap().equals(orig_tail));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn join_methods_agree_on_random_databases(
        n_d in 1usize..12,
        refs in proptest::collection::vec(0usize..12, 1..40),
    ) {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("D").attribute("id", TypeDescriptor::integer()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("C")
                .attribute("id", TypeDescriptor::integer())
                .attribute("d", TypeDescriptor::reference("D")),
        )
        .unwrap();
        cat.create_index("C", "d", mood_catalog::IndexKind::BTree, false).unwrap();
        let d_oids: Vec<Oid> = (0..n_d)
            .map(|i| {
                cat.new_object("D", Value::tuple(vec![("id", Value::Integer(i as i32))]))
                    .unwrap()
            })
            .collect();
        for (i, &r) in refs.iter().enumerate() {
            cat.new_object(
                "C",
                Value::tuple(vec![
                    ("id", Value::Integer(i as i32)),
                    ("d", Value::Ref(d_oids[r % n_d])),
                ]),
            )
            .unwrap();
        }
        let left = mood_algebra::bind_class(&cat, "C", false, &[]).unwrap();
        let mut outcomes: Vec<Vec<(Oid, Oid)>> = Vec::new();
        for method in JoinMethod::ALL {
            let mut pairs: Vec<(Oid, Oid)> =
                join(&cat, &left, "d", JoinRhs::Class("D"), method)
                    .unwrap()
                    .into_iter()
                    .map(|(l, r)| (l.oid.unwrap(), r.oid.unwrap()))
                    .collect();
            pairs.sort();
            outcomes.push(pairs);
        }
        for w in outcomes.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "join methods disagree");
        }
        prop_assert_eq!(outcomes[0].len(), refs.len(), "every C joins exactly once");
    }
}

// ----------------------------------------------------------------------
// Sequential equivalence of the chunk-parallel operators: at every
// parallelism in {1, 2, 4, 8} the `_par` variant must return a result
// identical (including element order) to the sequential operator.
// ----------------------------------------------------------------------

const PAR_LEVELS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn select_par_equals_select(
        perm in proptest::collection::vec(0usize..30, 0..40),
        modulus in 2i32..5,
    ) {
        let (cat, oids) = catalog_with_items(30);
        let extent = Collection::Extent(
            perm.iter()
                .map(|&i| {
                    let (_, v) = cat.get_object(oids[i]).unwrap();
                    Obj::stored(oids[i], v)
                })
                .collect(),
        );
        let list = Collection::List(perm.iter().map(|&i| oids[i]).collect());
        let pred = |o: &Obj| -> mood_algebra::Result<bool> {
            Ok(matches!(o.value.field("k"), Some(Value::Integer(k)) if k % modulus == 0))
        };
        for arg in [&extent, &list] {
            let seq = select(&cat, arg, &|o| pred(o)).unwrap();
            for p in PAR_LEVELS {
                let par =
                    select_par(&cat, arg, &pred, ExecutionConfig::with_parallelism(p)).unwrap();
                prop_assert_eq!(&par, &seq, "select parallelism={}", p);
            }
        }
    }

    #[test]
    fn project_par_equals_project(perm in proptest::collection::vec(0usize..30, 0..40)) {
        let (cat, oids) = catalog_with_items(30);
        let extent = Collection::Extent(
            perm.iter()
                .map(|&i| {
                    let (_, v) = cat.get_object(oids[i]).unwrap();
                    Obj::stored(oids[i], v)
                })
                .collect(),
        );
        let seq = project(&cat, &extent, &["grp"]).unwrap();
        for p in PAR_LEVELS {
            let par =
                project_par(&cat, &extent, &["grp"], ExecutionConfig::with_parallelism(p))
                    .unwrap();
            prop_assert_eq!(&par, &seq, "project parallelism={}", p);
        }
    }

    #[test]
    fn sort_par_equals_sort(perm in proptest::collection::vec(0usize..30, 0..60)) {
        let (cat, oids) = catalog_with_items(30);
        // Duplicates in `perm` exercise the stability tiebreak: `grp` has
        // only three distinct values, so equal-key runs are long.
        let extent = Collection::Extent(
            perm.iter()
                .map(|&i| {
                    let (_, v) = cat.get_object(oids[i]).unwrap();
                    Obj::stored(oids[i], v)
                })
                .collect(),
        );
        for keys in [&["k"][..], &["grp"][..], &["grp", "k"][..]] {
            let seq = sort(&cat, &extent, keys).unwrap();
            for p in PAR_LEVELS {
                let par =
                    sort_par(&cat, &extent, keys, ExecutionConfig::with_parallelism(p)).unwrap();
                prop_assert_eq!(&par, &seq, "sort {:?} parallelism={}", keys, p);
            }
        }
    }

    #[test]
    fn dup_elim_par_equals_dup_elim(items in proptest::collection::vec(0usize..10, 0..40)) {
        let (cat, oids) = catalog_with_items(10);
        let list = Collection::List(items.iter().map(|&i| oids[i]).collect());
        let extent = Collection::Extent(
            items
                .iter()
                .map(|&i| {
                    let (_, v) = cat.get_object(oids[i]).unwrap();
                    Obj::stored(oids[i], v)
                })
                .collect(),
        );
        for arg in [&list, &extent] {
            let seq = dup_elim(&cat, arg).unwrap();
            for p in PAR_LEVELS {
                let par = dup_elim_par(&cat, arg, ExecutionConfig::with_parallelism(p)).unwrap();
                prop_assert_eq!(&par, &seq, "dup_elim parallelism={}", p);
            }
        }
    }

    #[test]
    fn set_ops_par_equal_sequential(
        xs in proptest::collection::vec(0usize..20, 0..25),
        ys in proptest::collection::vec(0usize..20, 0..25),
    ) {
        let (_cat, oids) = catalog_with_items(20);
        let a = Collection::set_from(xs.iter().map(|&i| oids[i]).collect());
        let b = Collection::set_from(ys.iter().map(|&i| oids[i]).collect());
        let la = Collection::List(xs.iter().map(|&i| oids[i]).collect());
        let lb = Collection::List(ys.iter().map(|&i| oids[i]).collect());
        for (x, y) in [(&a, &b), (&la, &lb)] {
            let seq_u = union(x, y).unwrap();
            let seq_i = intersection(x, y).unwrap();
            let seq_d = difference(x, y).unwrap();
            for p in PAR_LEVELS {
                let exec = ExecutionConfig::with_parallelism(p);
                prop_assert_eq!(&union_par(x, y, exec).unwrap(), &seq_u, "union p={}", p);
                prop_assert_eq!(
                    &intersection_par(x, y, exec).unwrap(),
                    &seq_i,
                    "intersection p={}",
                    p
                );
                prop_assert_eq!(
                    &difference_par(x, y, exec).unwrap(),
                    &seq_d,
                    "difference p={}",
                    p
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn join_par_equals_join_for_every_method(
        n_d in 1usize..10,
        refs in proptest::collection::vec(0usize..10, 1..30),
    ) {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("D").attribute("id", TypeDescriptor::integer()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("C")
                .attribute("id", TypeDescriptor::integer())
                .attribute("d", TypeDescriptor::reference("D")),
        )
        .unwrap();
        cat.create_index("C", "d", mood_catalog::IndexKind::BTree, false).unwrap();
        let d_oids: Vec<Oid> = (0..n_d)
            .map(|i| {
                cat.new_object("D", Value::tuple(vec![("id", Value::Integer(i as i32))]))
                    .unwrap()
            })
            .collect();
        for (i, &r) in refs.iter().enumerate() {
            cat.new_object(
                "C",
                Value::tuple(vec![
                    ("id", Value::Integer(i as i32)),
                    ("d", Value::Ref(d_oids[r % n_d])),
                ]),
            )
            .unwrap();
        }
        let left = mood_algebra::bind_class(&cat, "C", false, &[]).unwrap();
        let d_set = Collection::set_from(d_oids.clone());
        for method in JoinMethod::ALL {
            for rhs in [JoinRhs::Class("D"), JoinRhs::Collection(&d_set)] {
                let seq = join(&cat, &left, "d", rhs, method).unwrap();
                for p in PAR_LEVELS {
                    let par = join_par(
                        &cat,
                        &left,
                        "d",
                        rhs,
                        method,
                        ExecutionConfig::with_parallelism(p),
                    )
                    .unwrap();
                    prop_assert_eq!(
                        &par,
                        &seq,
                        "join {:?} rhs={:?} parallelism={}",
                        method,
                        match rhs { JoinRhs::Class(_) => "class", _ => "collection" },
                        p
                    );
                }
            }
        }
    }
}
