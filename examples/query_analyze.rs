//! Query-lifecycle observability: `EXPLAIN ANALYZE`, span tracing, and the
//! engine metrics registry, on the paper's Vehicle schema (Section 3.1).
//!
//! ```sh
//! cargo run -p mood-core --example query_analyze
//! ```

use mood_core::{Mood, OptimizerConfig, RingBuffer, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Mood::in_memory();
    db.set_optimizer_config(OptimizerConfig::paper());

    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Company TUPLE (name String(32), location String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), manufacturer REFERENCE (Company))",
    ] {
        db.execute(ddl)?;
    }

    // A deterministic population: engines cycle through 2/4/6/8 cylinders.
    let catalog = db.catalog();
    let bmw = catalog.new_object(
        "Company",
        Value::tuple(vec![
            ("name", Value::string("BMW")),
            ("location", Value::string("Munich")),
        ]),
    )?;
    let mut trains = Vec::new();
    for i in 0..16i32 {
        let engine = catalog.new_object(
            "VehicleEngine",
            Value::tuple(vec![
                ("size", Value::Integer(1000 + i * 100)),
                ("cylinders", Value::Integer(2 + (i % 4) * 2)),
            ]),
        )?;
        trains.push(catalog.new_object(
            "VehicleDriveTrain",
            Value::tuple(vec![
                ("engine", Value::Ref(engine)),
                (
                    "transmission",
                    Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                ),
            ]),
        )?);
    }
    for i in 0..64i32 {
        catalog.new_object(
            "Vehicle",
            Value::tuple(vec![
                ("id", Value::Integer(i)),
                ("weight", Value::Integer(700 + (i % 15) * 80)),
                ("drivetrain", Value::Ref(trains[i as usize % trains.len()])),
                ("manufacturer", Value::Ref(bmw)),
            ]),
        )?;
    }
    db.collect_stats()?;

    // Watch the query lifecycle: parse → bind → optimize → execute, with a
    // span per algebra operator.
    let spans = RingBuffer::new(64);
    db.tracer().subscribe(spans.clone());

    let query = "SELECT v.id FROM EVERY Vehicle v \
                 WHERE v.drivetrain.engine.cylinders = 2 ORDER BY v.id";

    println!("== EXPLAIN (estimates only) ==");
    print!("{}", db.explain(query)?);

    println!("\n== EXPLAIN ANALYZE (estimate vs. actual) ==");
    print!("{}", db.explain_analyze(query)?);

    println!("\n== Query-lifecycle spans ==");
    for r in spans.records() {
        println!("{}", mood_core::trace::render_span(&r));
    }

    println!("\n== SHOW METRICS (engine-wide registry) ==");
    for (k, v) in db.engine_metrics().rows() {
        println!("{k} = {v}");
    }
    Ok(())
}
