//! Buffer pool with clock (second-chance) replacement.
//!
//! Access is closure-based: `with_page` / `with_page_mut` pin the frame for
//! the duration of the callback only, which keeps the API free of guard
//! lifetimes. Callbacks must not re-enter the pool (the higher layers
//! materialize node/record data into owned values before touching another
//! page, so nesting never occurs in practice; a debug re-entrancy check
//! enforces it).
//!
//! Every *logical* access is classified by the caller as sequential, random
//! or index ([`AccessKind`]); the pool records a physical read only on a
//! miss, so the [`DiskMetrics`] counters reflect real I/O with caching — the
//! paper's worst-case cost formulas are recovered by sizing the pool small.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::disk::Disk;
use crate::error::{Result, StorageError};
use crate::metrics::{AccessKind, DiskMetrics};
use crate::oid::{FileId, PageId};
use crate::page::Page;

struct Frame {
    key: Option<(FileId, PageId)>,
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// True while a callback holds the page outside the pool lock; other
    /// threads touching the same page wait on the pool condvar.
    checked_out: bool,
}

struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageId), usize>,
    hand: usize,
}

/// A shared buffer pool over a [`Disk`].
pub struct BufferPool {
    disk: Arc<dyn Disk>,
    state: Mutex<PoolState>,
    returned: Condvar,
    metrics: DiskMetrics,
    capacity: usize,
}

thread_local! {
    /// Per-thread re-entrancy guard: a callback on this thread must not call
    /// back into any pool (higher layers materialize data before the next
    /// page access).
    static IN_CALLBACK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl BufferPool {
    /// Pool with `capacity` frames over `disk`, reporting into `metrics`.
    pub fn new(disk: Arc<dyn Disk>, capacity: usize, metrics: DiskMetrics) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                key: None,
                page: Page::new(),
                dirty: false,
                pins: 0,
                referenced: false,
                checked_out: false,
            })
            .collect();
        BufferPool {
            disk,
            state: Mutex::new(PoolState {
                frames,
                map: HashMap::new(),
                hand: 0,
            }),
            returned: Condvar::new(),
            metrics,
            capacity,
        }
    }

    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Read access to a page.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R> {
        self.access(file, page, kind, false, |p| f(p))
    }

    /// Write access to a page; the frame is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        self.access(file, page, kind, true, f)
    }

    fn access<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        write: bool,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        assert!(
            !IN_CALLBACK.with(|c| c.get()),
            "buffer pool callbacks must not re-enter the pool"
        );
        let mut st = self.state.lock();
        let idx = loop {
            match st.map.get(&(file, page)).copied() {
                Some(i) if st.frames[i].checked_out => {
                    // Another thread holds this page outside the lock; wait
                    // for it to come back, then retry the lookup (the frame
                    // cannot be evicted while pinned).
                    self.returned.wait(&mut st);
                }
                Some(i) => {
                    self.metrics.record_buffer_hit();
                    break i;
                }
                None => {
                    let i = match self.evict_one(&mut st) {
                        Ok(i) => i,
                        Err(StorageError::PoolExhausted) => {
                            // Every frame is pinned by an in-flight callback.
                            // Wait for one to be returned, then retry the
                            // lookup (another thread may even load this page
                            // for us in the meantime, turning this into a
                            // hit).
                            self.returned.wait(&mut st);
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    self.metrics.record_buffer_miss();
                    self.metrics.record_read(kind);
                    self.disk.read_page(file, page, &mut st.frames[i].page)?;
                    st.frames[i].key = Some((file, page));
                    st.frames[i].dirty = false;
                    st.map.insert((file, page), i);
                    break i;
                }
            }
        };
        st.frames[idx].referenced = true;
        st.frames[idx].pins += 1;
        if write {
            st.frames[idx].dirty = true;
        }
        st.frames[idx].checked_out = true;
        // Temporarily move the page out so the callback runs without the
        // pool lock; `checked_out` makes same-page accessors wait above.
        let mut owned = std::mem::take(&mut st.frames[idx].page);
        drop(st);
        IN_CALLBACK.with(|c| c.set(true));
        let result = f(&mut owned);
        IN_CALLBACK.with(|c| c.set(false));
        let mut st = self.state.lock();
        st.frames[idx].page = owned;
        st.frames[idx].pins -= 1;
        st.frames[idx].checked_out = false;
        drop(st);
        self.returned.notify_all();
        Ok(result)
    }

    /// Allocate a fresh page in `file`, run `init` on it, and return its id.
    pub fn new_page<R>(
        &self,
        file: FileId,
        init: impl FnOnce(&mut Page) -> R,
    ) -> Result<(PageId, R)> {
        let pid = self.disk.allocate_page(file)?;
        let r = self.with_page_mut(file, pid, AccessKind::Random, init)?;
        Ok((pid, r))
    }

    fn evict_one(&self, st: &mut PoolState) -> Result<usize> {
        // Clock sweep: at most two full passes (first clears reference bits).
        for _ in 0..(2 * st.frames.len() + 1) {
            let i = st.hand;
            st.hand = (st.hand + 1) % st.frames.len();
            let frame = &mut st.frames[i];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if let Some(key) = frame.key.take() {
                if frame.dirty {
                    self.metrics.record_write();
                    self.disk.write_page(key.0, key.1, &frame.page)?;
                    frame.dirty = false;
                }
                st.map.remove(&key);
            }
            return Ok(i);
        }
        Err(StorageError::PoolExhausted)
    }

    /// Write all dirty frames back to disk (without dropping them).
    pub fn flush_all(&self) -> Result<()> {
        let mut st = self.state.lock();
        for frame in st.frames.iter_mut() {
            if let (Some(key), true) = (frame.key, frame.dirty) {
                self.metrics.record_write();
                self.disk.write_page(key.0, key.1, &frame.page)?;
                frame.dirty = false;
            }
        }
        drop(st);
        self.disk.sync()
    }

    /// Evict all frames belonging to `file`, writing dirty ones back first.
    /// Used when a file handle is retired; the data stays on disk.
    pub fn discard_file(&self, file: FileId) {
        let mut st = self.state.lock();
        let keys: Vec<_> = st.map.keys().filter(|(f, _)| *f == file).copied().collect();
        for key in keys {
            if let Some(i) = st.map.remove(&key) {
                if st.frames[i].dirty {
                    self.metrics.record_write();
                    // Best-effort write-back; a failing disk loses the frame.
                    let _ = self.disk.write_page(key.0, key.1, &st.frames[i].page);
                }
                st.frames[i].key = None;
                st.frames[i].dirty = false;
                st.frames[i].referenced = false;
            }
        }
    }

    /// Number of frames currently caching pages (for tests).
    pub fn resident(&self) -> usize {
        self.state.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::page::PAGE_SIZE;

    fn pool(cap: usize) -> (BufferPool, FileId) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), cap, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        (pool, f)
    }

    #[test]
    fn read_your_writes_through_pool() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 42).unwrap();
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, f) = pool(2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let (pid, _) = pool.new_page(f, |p| p.data[0] = i).unwrap();
            pids.push(pid);
        }
        // All five pages exceed the 2-frame pool; earlier ones were evicted
        // and must come back from disk with their data intact.
        for (i, pid) in pids.iter().enumerate() {
            let v = pool
                .with_page(f, *pid, AccessKind::Random, |p| p.data[0])
                .unwrap();
            assert_eq!(v as usize, i);
        }
        assert!(pool.resident() <= 2);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        let before = pool.metrics().snapshot();
        for _ in 0..10 {
            pool.with_page(f, pid, AccessKind::Sequential, |_| {})
                .unwrap();
        }
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!(d.buffer_hits, 10);
        assert_eq!(d.buffer_misses, 0);
        assert_eq!(d.seq_pages, 0, "cached accesses cost no I/O");
    }

    #[test]
    fn misses_record_reads_by_kind() {
        let (pool, f) = pool(1);
        let (p0, _) = pool.new_page(f, |_| {}).unwrap();
        let (p1, _) = pool.new_page(f, |_| {}).unwrap();
        let before = pool.metrics().snapshot();
        // Ping-pong between two pages with a 1-frame pool: every access misses.
        pool.with_page(f, p0, AccessKind::Random, |_| {}).unwrap();
        pool.with_page(f, p1, AccessKind::Index, |_| {}).unwrap();
        pool.with_page(f, p0, AccessKind::Sequential, |_| {})
            .unwrap();
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!((d.rnd_pages, d.idx_pages, d.seq_pages), (1, 1, 1));
    }

    #[test]
    fn flush_all_persists_to_disk() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (pid, _) = pool.new_page(f, |p| p.data[PAGE_SIZE - 1] = 9).unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[PAGE_SIZE - 1], 9);
    }

    #[test]
    fn discard_file_drops_frames() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        assert_eq!(pool.resident(), 1);
        pool.discard_file(f);
        assert_eq!(pool.resident(), 0);
        // The page is still on disk (discard is not delete).
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    #[should_panic(expected = "re-enter")]
    fn reentrancy_is_detected() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        let pool_ref = &pool;
        let _ = pool.with_page(f, pid, AccessKind::Random, |_| {
            let _ = pool_ref.with_page(f, pid, AccessKind::Random, |_| {});
        });
    }
}
