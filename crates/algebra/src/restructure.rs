//! Restructuring and conversion operators: `Project`, `Partition`, `Sort`,
//! `asSet`, `asList`, `asExtent`, `Unnest`, `Nest`, `Flatten`.

use std::collections::BinaryHeap;

use mood_catalog::Catalog;
use mood_datamodel::{encode_key, Value};
use mood_storage::exec::{run_chunked, ExecutionConfig};
use mood_storage::Oid;

use crate::collection::{Collection, Obj};
use crate::error::{AlgebraError, Result};
use crate::join::{materialize, materialize_par};

/// `Project(aTupleCollection, attribute_list)` — relational-style projection
/// over an extent / set / list of tuple-type objects (set/list elements are
/// dereferenced, per the paper). The result is an *extent of tuple values*
/// (transient objects; MOOD could later make them a dynamic class).
pub fn project(catalog: &Catalog, arg: &Collection, attributes: &[&str]) -> Result<Collection> {
    let objs = materialize(catalog, arg)?;
    let mut out = Vec::with_capacity(objs.len());
    for o in &objs {
        out.push(project_one(o, attributes)?);
    }
    Ok(Collection::Extent(out))
}

/// Project a single tuple object (the per-element body of [`project`]).
fn project_one(o: &Obj, attributes: &[&str]) -> Result<Obj> {
    let Value::Tuple(fields) = &o.value else {
        return Err(AlgebraError::NotApplicable {
            operator: "Project",
            detail: format!("element {} is not a tuple", o.value),
        });
    };
    let mut projected = Vec::with_capacity(attributes.len());
    for a in attributes {
        let v = fields
            .iter()
            .find(|(n, _)| n == a)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        projected.push((a.to_string(), v));
    }
    Ok(Obj::transient(Value::Tuple(projected)))
}

/// Chunk-parallel [`project`]: elements are independent, so the input is
/// split into contiguous chunks projected on worker threads and concatenated
/// in chunk order — output identical to the sequential operator. The first
/// non-tuple element (in input order) still wins as the reported error.
pub fn project_par(
    catalog: &Catalog,
    arg: &Collection,
    attributes: &[&str],
    exec: ExecutionConfig,
) -> Result<Collection> {
    if !exec.is_parallel() {
        return project(catalog, arg, attributes);
    }
    let objs = materialize_par(catalog, arg, exec)?;
    let out = run_chunked(exec.parallelism, &objs, |_, chunk| {
        chunk.iter().map(|o| project_one(o, attributes)).collect()
    })?;
    Ok(Collection::Extent(out))
}

/// `Partition(aTupleCollection, attribute_list)` — groups of objects with
/// equal values on `attribute_list`; the return value is the set of groups.
/// Groups are returned in first-appearance order of their key.
pub fn partition(
    catalog: &Catalog,
    arg: &Collection,
    attributes: &[&str],
) -> Result<Vec<Collection>> {
    let objs = materialize(catalog, arg)?;
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut groups: Vec<Vec<Obj>> = Vec::new();
    for o in objs {
        let key = group_key(&o.value, attributes)?;
        match keys.iter().position(|k| *k == key) {
            Some(i) => groups[i].push(o),
            None => {
                keys.push(key);
                groups.push(vec![o]);
            }
        }
    }
    Ok(groups.into_iter().map(Collection::Extent).collect())
}

fn group_key(v: &Value, attributes: &[&str]) -> Result<Vec<u8>> {
    let mut key = Vec::new();
    for a in attributes {
        let field = v.field(a).unwrap_or(&Value::Null);
        let enc = encode_key(field).map_err(|_| AlgebraError::NotApplicable {
            operator: "Partition/Sort",
            detail: format!("attribute {a} is not atomic"),
        })?;
        key.extend_from_slice(&enc);
        key.push(0xFF); // field separator
    }
    Ok(key)
}

/// `Sort(aTupleCollection, sort_method, attribute_list)` — "the only
/// supported sort_method for the time being is heap sort with merging",
/// and that is exactly what this is: runs are built through a binary heap
/// and merged (visible for the cost accounting of ORDER BY in the bench
/// crate). No duplicate elimination. Sets/lists sort their identifiers by
/// the dereferenced objects' keys; extents sort the objects.
pub fn sort(catalog: &Catalog, arg: &Collection, attributes: &[&str]) -> Result<Collection> {
    let objs = materialize(catalog, arg)?;
    let keyed = key_objects(objs, attributes)?;
    let sorted = heapsort_with_merging(keyed);
    Ok(sorted_to_collection(arg, sorted))
}

/// Chunk-parallel [`sort`]: contiguous input chunks are key-extracted and
/// sorted on worker threads, then k-way merged. Because the sort key is
/// `(attribute key, input index)` — the same total order the sequential
/// heapsort uses — the merged result is identical to the sequential output,
/// including the relative order of equal attribute keys.
pub fn sort_par(
    catalog: &Catalog,
    arg: &Collection,
    attributes: &[&str],
    exec: ExecutionConfig,
) -> Result<Collection> {
    if !exec.is_parallel() {
        return sort(catalog, arg, attributes);
    }
    let objs = materialize_par(catalog, arg, exec)?;
    let indexed: Vec<(usize, Obj)> = objs.into_iter().enumerate().collect();
    // Each chunk becomes one pre-sorted run (note the `vec![run]` wrapper:
    // run_chunked concatenates the per-chunk outputs, so each worker
    // contributes exactly one element — its run).
    let runs = run_chunked(exec.parallelism, &indexed, |_, chunk| {
        let mut run: Vec<(SortKey, Obj)> = chunk
            .iter()
            .map(|(i, o)| Ok(((group_key(&o.value, attributes)?, *i), o.clone())))
            .collect::<Result<_>>()?;
        run.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        Ok::<_, AlgebraError>(vec![run])
    })?;
    let sorted = merge_runs(runs);
    Ok(sorted_to_collection(arg, sorted))
}

/// A sort key: the encoded attribute key plus the element's input position.
/// The index makes every key distinct, which is what lets the sequential
/// heapsort and the parallel chunk-sort-and-merge agree bit for bit.
type SortKey = (Vec<u8>, usize);

fn key_objects(objs: Vec<Obj>, attributes: &[&str]) -> Result<Vec<(SortKey, Obj)>> {
    objs.into_iter()
        .enumerate()
        .map(|(i, o)| Ok(((group_key(&o.value, attributes)?, i), o)))
        .collect()
}

fn sorted_to_collection(arg: &Collection, sorted: Vec<(SortKey, Obj)>) -> Collection {
    match arg {
        Collection::Set(_) | Collection::List(_) => {
            Collection::List(sorted.iter().filter_map(|(_, o)| o.oid).collect())
        }
        _ => Collection::Extent(sorted.into_iter().map(|(_, o)| o).collect()),
    }
}

/// Heap sort with run merging: build bounded heaps (runs), then k-way merge
/// — the external-sort structure MOOD used, executed in memory.
fn heapsort_with_merging(items: Vec<(SortKey, Obj)>) -> Vec<(SortKey, Obj)> {
    const RUN: usize = 1024;
    // Phase 1: replacement-selection-style run formation with a heap.
    let mut runs: Vec<Vec<(SortKey, Obj)>> = Vec::new();
    let mut iter = items.into_iter().peekable();
    while iter.peek().is_some() {
        let mut heap: BinaryHeap<std::cmp::Reverse<HeapItem>> = BinaryHeap::new();
        for _ in 0..RUN {
            match iter.next() {
                Some((k, o)) => heap.push(std::cmp::Reverse(HeapItem { key: k, obj: o })),
                None => break,
            }
        }
        let mut run = Vec::with_capacity(heap.len());
        while let Some(std::cmp::Reverse(item)) = heap.pop() {
            run.push((item.key, item.obj));
        }
        runs.push(run);
    }
    // Phase 2: k-way merge of the sorted runs.
    merge_runs(runs)
}

/// K-way merge of sorted runs through a heap of cursors. Sort keys are
/// distinct (they embed the input index), so the merge order is total.
fn merge_runs(runs: Vec<Vec<(SortKey, Obj)>>) -> Vec<(SortKey, Obj)> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut cursors: Vec<std::vec::IntoIter<(SortKey, Obj)>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heads: BinaryHeap<std::cmp::Reverse<(SortKey, usize)>> = BinaryHeap::new();
    let mut staged: Vec<Option<Obj>> = vec![None; cursors.len()];
    for (i, c) in cursors.iter_mut().enumerate() {
        if let Some((k, o)) = c.next() {
            staged[i] = Some(o);
            heads.push(std::cmp::Reverse((k, i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(std::cmp::Reverse((k, i))) = heads.pop() {
        let obj = staged[i].take().expect("staged once");
        out.push((k, obj));
        if let Some((k, o)) = cursors[i].next() {
            staged[i] = Some(o);
            heads.push(std::cmp::Reverse((k, i)));
        }
    }
    out
}

struct HeapItem {
    key: SortKey,
    obj: Obj,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// `asSet(arg)` — Table 5: the object identifiers of the argument.
pub fn as_set(arg: &Collection) -> Collection {
    Collection::set_from(arg.oids())
}

/// `asList(arg)` — Table 5.
pub fn as_list(arg: &Collection) -> Collection {
    Collection::List(arg.oids())
}

/// `asExtent(arg)` — Table 6: dereference a set or list into an extent.
pub fn as_extent(catalog: &Catalog, arg: &Collection) -> Result<Collection> {
    match arg {
        Collection::Set(_) | Collection::List(_) => {
            Ok(Collection::Extent(materialize(catalog, arg)?))
        }
        other => Err(AlgebraError::NotApplicable {
            operator: "asExtent",
            detail: format!(
                "argument must be a set or list (Table 6), got {:?}",
                other.kind()
            ),
        }),
    }
}

/// `Unnest(aTupleCollection)` — the 1NF unnest. For each object whose tuple
/// contains a (single) set/list-valued field, emit one tuple per element:
/// `{<o1,{o2,o3}>, <o4,{o5}>}` ⇒ `{<o1,o2>, <o1,o3>, <o4,o5>}`.
/// All argument kinds of Table 7 are accepted; the result is an extent.
pub fn unnest(catalog: &Catalog, arg: &Collection, attribute: &str) -> Result<Collection> {
    let objs = match arg {
        Collection::NamedObject(o) => vec![o.clone()],
        other => materialize(catalog, other)?,
    };
    let mut out = Vec::new();
    for o in objs {
        let Value::Tuple(fields) = &o.value else {
            return Err(AlgebraError::NotApplicable {
                operator: "Unnest",
                detail: "argument elements must be tuples".into(),
            });
        };
        let Some((_, nested)) = fields.iter().find(|(n, _)| n == attribute) else {
            return Err(AlgebraError::NotApplicable {
                operator: "Unnest",
                detail: format!("no attribute {attribute}"),
            });
        };
        let elems: Vec<Value> = match nested {
            Value::Set(items) | Value::List(items) => items.clone(),
            Value::Null => Vec::new(),
            other => vec![other.clone()],
        };
        for e in elems {
            let mut new_fields: Vec<(String, Value)> = fields
                .iter()
                .map(|(n, v)| {
                    if n == attribute {
                        (n.clone(), e.clone())
                    } else {
                        (n.clone(), v.clone())
                    }
                })
                .collect();
            // Keep field order stable.
            let _ = &mut new_fields;
            out.push(Obj::transient(Value::Tuple(new_fields)));
        }
    }
    Ok(Collection::Extent(out))
}

/// `Nest(aTupleCollection)` — the inverse of `Unnest`: group on all fields
/// but `attribute` and collect that field's values into a set.
pub fn nest(catalog: &Catalog, arg: &Collection, attribute: &str) -> Result<Collection> {
    let objs = materialize(catalog, arg)?;
    let mut keys: Vec<Value> = Vec::new();
    let mut groups: Vec<Vec<Value>> = Vec::new();
    let mut shapes: Vec<Vec<(String, Value)>> = Vec::new();
    for o in objs {
        let Value::Tuple(fields) = &o.value else {
            return Err(AlgebraError::NotApplicable {
                operator: "Nest",
                detail: "argument elements must be tuples".into(),
            });
        };
        let rest: Vec<(String, Value)> = fields
            .iter()
            .filter(|(n, _)| n != attribute)
            .cloned()
            .collect();
        let key = Value::Tuple(rest.clone());
        let nested = fields
            .iter()
            .find(|(n, _)| n == attribute)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        match keys.iter().position(|k| k.equals(&key)) {
            Some(i) => groups[i].push(nested),
            None => {
                keys.push(key);
                groups.push(vec![nested]);
                shapes.push(fields.clone());
            }
        }
    }
    let mut out = Vec::new();
    for (shape, group) in shapes.into_iter().zip(groups) {
        let fields: Vec<(String, Value)> = shape
            .into_iter()
            .map(|(n, v)| {
                if n == attribute {
                    (n, Value::Set(group.clone()))
                } else {
                    (n, v)
                }
            })
            .collect();
        out.push(Obj::transient(Value::Tuple(fields)));
    }
    Ok(Collection::Extent(out))
}

/// `Flatten(arg)` — flattens nested collections of identifiers into one
/// *set* of object identifiers: `Flatten({{o1,o2},{o3}}) = {o1,o2,o3}`.
pub fn flatten(values: &Value) -> Result<Collection> {
    let mut out: Vec<Oid> = Vec::new();
    fn walk(v: &Value, out: &mut Vec<Oid>) {
        match v {
            Value::Ref(oid) => out.push(*oid),
            Value::Set(items) | Value::List(items) => {
                for i in items {
                    walk(i, out);
                }
            }
            _ => {}
        }
    }
    match values {
        Value::Set(_) | Value::List(_) => {
            walk(values, &mut out);
            Ok(Collection::set_from(out))
        }
        other => Err(AlgebraError::NotApplicable {
            operator: "Flatten",
            detail: format!("argument must be a set or list, got {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_catalog::ClassBuilder;
    use mood_datamodel::TypeDescriptor;
    use mood_storage::{FileId, PageId, SlotId, StorageManager};
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("Employee")
                .attribute("name", TypeDescriptor::string())
                .attribute("age", TypeDescriptor::integer())
                .attribute("dept", TypeDescriptor::string()),
        )
        .unwrap();
        cat
    }

    fn emp(cat: &Catalog, name: &str, age: i32, dept: &str) -> Oid {
        cat.new_object(
            "Employee",
            Value::tuple(vec![
                ("name", Value::string(name)),
                ("age", Value::Integer(age)),
                ("dept", Value::string(dept)),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn project_keeps_listed_attributes() {
        let cat = catalog();
        emp(&cat, "ali", 30, "db");
        emp(&cat, "veli", 40, "os");
        let extent = crate::ops::bind_class(&cat, "Employee", false, &[]).unwrap();
        let out = project(&cat, &extent, &["name", "age"]).unwrap();
        let Collection::Extent(objs) = &out else {
            panic!()
        };
        assert_eq!(objs.len(), 2);
        for o in objs {
            let Value::Tuple(fields) = &o.value else {
                panic!()
            };
            assert_eq!(fields.len(), 2);
            assert!(o.oid.is_none(), "projected tuples are transient values");
        }
    }

    #[test]
    fn project_over_set_derefs() {
        let cat = catalog();
        let a = emp(&cat, "ali", 30, "db");
        let out = project(&cat, &Collection::set_from(vec![a]), &["dept"]).unwrap();
        let Collection::Extent(objs) = &out else {
            panic!()
        };
        assert_eq!(objs[0].value.field("dept"), Some(&Value::string("db")));
    }

    #[test]
    fn partition_groups_by_attribute() {
        let cat = catalog();
        emp(&cat, "a", 1, "db");
        emp(&cat, "b", 2, "db");
        emp(&cat, "c", 3, "os");
        let extent = crate::ops::bind_class(&cat, "Employee", false, &[]).unwrap();
        let groups = partition(&cat, &extent, &["dept"]).unwrap();
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![2, 1]);
    }

    #[test]
    fn sort_orders_by_key_without_dedup() {
        let cat = catalog();
        emp(&cat, "c", 3, "x");
        emp(&cat, "a", 1, "x");
        emp(&cat, "b", 2, "x");
        emp(&cat, "a", 1, "x"); // duplicate key — must survive
        let extent = crate::ops::bind_class(&cat, "Employee", false, &[]).unwrap();
        let out = sort(&cat, &extent, &["name"]).unwrap();
        let Collection::Extent(objs) = &out else {
            panic!()
        };
        let names: Vec<_> = objs
            .iter()
            .map(|o| o.value.field("name").unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["'a'", "'a'", "'b'", "'c'"]);
    }

    #[test]
    fn sort_set_returns_sorted_identifier_list() {
        let cat = catalog();
        let c = emp(&cat, "c", 3, "x");
        let a = emp(&cat, "a", 1, "x");
        let set = Collection::set_from(vec![c, a]);
        let out = sort(&cat, &set, &["name"]).unwrap();
        assert_eq!(out, Collection::List(vec![a, c]));
    }

    #[test]
    fn heapsort_merging_handles_many_runs() {
        let cat = catalog();
        // > RUN elements to force multiple runs in phase 1.
        for i in (0..3000).rev() {
            emp(&cat, &format!("e{i:05}"), i, "x");
        }
        let extent = crate::ops::bind_class(&cat, "Employee", false, &[]).unwrap();
        let out = sort(&cat, &extent, &["name"]).unwrap();
        let Collection::Extent(objs) = &out else {
            panic!()
        };
        assert_eq!(objs.len(), 3000);
        let mut prev = String::new();
        for o in objs {
            let Value::String(s) = o.value.field("name").unwrap() else {
                panic!()
            };
            assert!(*s >= prev, "sorted order violated at {s}");
            prev = s.clone();
        }
    }

    #[test]
    fn conversions_follow_tables_5_and_6() {
        let cat = catalog();
        let a = emp(&cat, "a", 1, "x");
        let b = emp(&cat, "b", 2, "x");
        let extent = crate::ops::bind_class(&cat, "Employee", false, &[]).unwrap();
        // asSet(extent) → identifiers.
        assert_eq!(as_set(&extent), Collection::set_from(vec![a, b]));
        // asList(set) → identifiers as list.
        let l = as_list(&Collection::set_from(vec![b, a]));
        assert_eq!(l.len(), 2);
        // asExtent(list) → dereferenced objects.
        let e = as_extent(&cat, &Collection::List(vec![a])).unwrap();
        let Collection::Extent(objs) = &e else {
            panic!()
        };
        assert_eq!(objs[0].value.field("name"), Some(&Value::string("a")));
        // asExtent on an extent is not applicable (Table 6 lists Set/List).
        assert!(as_extent(&cat, &extent).is_err());
    }

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(7), PageId(n), SlotId(0), 1)
    }

    #[test]
    fn unnest_matches_paper_example() {
        // e = {<o1,{o2,o3}>, <o4,{o5}>} ⇒ {<o1,o2>, <o1,o3>, <o4,o5>}
        let cat = catalog();
        let e = Collection::Extent(vec![
            Obj::transient(Value::tuple(vec![
                ("head", Value::Ref(oid(1))),
                (
                    "tail",
                    Value::Set(vec![Value::Ref(oid(2)), Value::Ref(oid(3))]),
                ),
            ])),
            Obj::transient(Value::tuple(vec![
                ("head", Value::Ref(oid(4))),
                ("tail", Value::Set(vec![Value::Ref(oid(5))])),
            ])),
        ]);
        let out = unnest(&cat, &e, "tail").unwrap();
        let Collection::Extent(objs) = &out else {
            panic!()
        };
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0].value.field("tail"), Some(&Value::Ref(oid(2))));
        assert_eq!(objs[1].value.field("tail"), Some(&Value::Ref(oid(3))));
        assert_eq!(objs[2].value.field("head"), Some(&Value::Ref(oid(4))));
    }

    #[test]
    fn nest_inverts_unnest() {
        let cat = catalog();
        let flat = Collection::Extent(vec![
            Obj::transient(Value::tuple(vec![
                ("head", Value::Ref(oid(1))),
                ("tail", Value::Ref(oid(2))),
            ])),
            Obj::transient(Value::tuple(vec![
                ("head", Value::Ref(oid(1))),
                ("tail", Value::Ref(oid(3))),
            ])),
            Obj::transient(Value::tuple(vec![
                ("head", Value::Ref(oid(4))),
                ("tail", Value::Ref(oid(5))),
            ])),
        ]);
        let nested = nest(&cat, &flat, "tail").unwrap();
        let Collection::Extent(objs) = &nested else {
            panic!()
        };
        assert_eq!(objs.len(), 2);
        assert_eq!(
            objs[0].value.field("tail"),
            Some(&Value::Set(vec![Value::Ref(oid(2)), Value::Ref(oid(3))]))
        );
        // Round-trip: unnest(nest(x)) == x.
        let back = unnest(&cat, &nested, "tail").unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn flatten_matches_paper_example() {
        // Flatten({{oid1, oid2}, {oid3}}) = {oid1, oid2, oid3}
        let v = Value::Set(vec![
            Value::Set(vec![Value::Ref(oid(1)), Value::Ref(oid(2))]),
            Value::Set(vec![Value::Ref(oid(3))]),
        ]);
        let out = flatten(&v).unwrap();
        assert_eq!(out, Collection::set_from(vec![oid(1), oid(2), oid(3)]));
        assert!(flatten(&Value::Integer(3)).is_err());
    }

    #[test]
    fn flatten_always_returns_a_set() {
        let v = Value::List(vec![
            Value::List(vec![Value::Ref(oid(2)), Value::Ref(oid(2))]),
            Value::Ref(oid(1)),
        ]);
        // Duplicates collapse; result is a Set regardless of input nesting.
        assert_eq!(
            flatten(&v).unwrap(),
            Collection::set_from(vec![oid(1), oid(2)])
        );
    }
}
