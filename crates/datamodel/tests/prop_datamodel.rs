//! Property tests: value codec round-trip for arbitrary value trees, and
//! order preservation of the index-key encoding.

use proptest::prelude::*;

use mood_datamodel::{decode_value, encode_key, encode_value, Value};
use mood_storage::{FileId, Oid, PageId, SlotId};

fn arb_oid() -> impl Strategy<Value = Oid> {
    (any::<u16>(), any::<u16>(), any::<u8>(), any::<u8>()).prop_map(|(f, p, s, u)| {
        Oid::new(
            FileId(f as u32),
            PageId(p as u32),
            SlotId(s as u16),
            u as u32,
        )
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Value::Integer),
        any::<i64>().prop_map(Value::LongInteger),
        // Finite floats only: NaN breaks PartialEq-based round-trip checks
        // (the codec itself preserves NaN — covered by a unit test).
        (-1e300f64..1e300).prop_map(Value::Float),
        "\\PC{0,12}".prop_map(Value::String),
        any::<char>().prop_map(Value::Char),
        any::<bool>().prop_map(Value::Boolean),
        arb_oid().prop_map(Value::Ref),
        Just(Value::Null),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::Set),
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4)
                .prop_map(|fields| { Value::Tuple(fields.into_iter().collect()) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn codec_roundtrips_arbitrary_values(v in arb_value()) {
        let bytes = encode_value(&v);
        let back = decode_value(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn codec_rejects_truncation(v in arb_value()) {
        let bytes = encode_value(&v);
        if bytes.len() > 1 {
            // Truncating anywhere strictly inside must not panic; it either
            // errors or (for container prefixes) cannot equal the original.
            let cut = bytes.len() / 2;
            let _ = decode_value(&bytes[..cut]);
        }
    }

    #[test]
    fn key_encoding_preserves_integer_order(a in any::<i32>(), b in any::<i32>()) {
        let ka = encode_key(&Value::Integer(a)).unwrap();
        let kb = encode_key(&Value::Integer(b)).unwrap();
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    #[test]
    fn key_encoding_preserves_float_order(a in -1e300f64..1e300, b in -1e300f64..1e300) {
        let ka = encode_key(&Value::Float(a)).unwrap();
        let kb = encode_key(&Value::Float(b)).unwrap();
        if a != b {
            prop_assert_eq!(ka.cmp(&kb), a.partial_cmp(&b).unwrap());
        }
    }

    #[test]
    fn key_encoding_preserves_mixed_numeric_order(a in any::<i32>(), b in -1e9f64..1e9) {
        let ka = encode_key(&Value::Integer(a)).unwrap();
        let kb = encode_key(&Value::Float(b)).unwrap();
        let cmp = (a as f64).partial_cmp(&b).unwrap();
        if (a as f64) != b {
            prop_assert_eq!(ka.cmp(&kb), cmp);
        }
    }

    #[test]
    fn key_encoding_preserves_string_order(a in "\\PC{0,16}", b in "\\PC{0,16}") {
        let ka = encode_key(&Value::String(a.clone())).unwrap();
        let kb = encode_key(&Value::String(b.clone())).unwrap();
        prop_assert_eq!(ka.cmp(&kb), a.as_bytes().cmp(b.as_bytes()));
    }

    #[test]
    fn equals_is_reflexive_and_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert!(a.equals(&a));
        prop_assert_eq!(a.equals(&b), b.equals(&a));
    }
}
