//! MOODSQL error type.

use std::fmt;

/// Errors across the SQL pipeline: lexing, parsing, binding, execution.
#[derive(Debug)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex { position: usize, message: String },
    /// Parse error.
    Parse { position: usize, message: String },
    /// Name-resolution / typing error.
    Bind(String),
    /// Run-time execution error.
    Exec(String),
    /// Catalog/schema failure.
    Catalog(mood_catalog::CatalogError),
    /// Algebra operator failure.
    Algebra(mood_algebra::AlgebraError),
    /// Method invocation failure.
    Exception(mood_funcman::Exception),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lexical error at {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "parse error at token {position}: {message}")
            }
            SqlError::Bind(m) => write!(f, "binding error: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Catalog(e) => write!(f, "{e}"),
            SqlError::Algebra(e) => write!(f, "{e}"),
            SqlError::Exception(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<mood_catalog::CatalogError> for SqlError {
    fn from(e: mood_catalog::CatalogError) -> Self {
        SqlError::Catalog(e)
    }
}

impl From<mood_algebra::AlgebraError> for SqlError {
    fn from(e: mood_algebra::AlgebraError) -> Self {
        SqlError::Algebra(e)
    }
}

impl From<mood_funcman::Exception> for SqlError {
    fn from(e: mood_funcman::Exception) -> Self {
        SqlError::Exception(e)
    }
}

pub type Result<T> = std::result::Result<T, SqlError>;
