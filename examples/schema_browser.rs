//! Headless MoodView (Section 9): hierarchy browser, class cards, generic
//! object presentation, and the query manager with history.
//!
//! ```sh
//! cargo run -p mood-core --example schema_browser
//! ```

use mood_core::{view, Mood, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Mood::in_memory();
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain)) METHODS: lbweight () Float,",
        "CREATE CLASS Automobile INHERITS FROM Vehicle",
        "CREATE CLASS Truck INHERITS FROM Vehicle",
        "CREATE CLASS JapaneseAuto INHERITS FROM Automobile",
    ] {
        db.execute(ddl)?;
    }

    // Figure 9.1(c): the class hierarchy browser.
    println!("== class hierarchy (ASCII) ==");
    print!("{}", db.render_hierarchy());

    println!("\n== class hierarchy (Graphviz DOT — pipe to `dot -Tsvg`) ==");
    print!("{}", db.render_hierarchy_dot());

    // Figure 9.2(b): the class presentation card, inherited members marked.
    println!("\n== class card: JapaneseAuto ==");
    print!("{}", db.render_class("JapaneseAuto")?);

    // Figure 9.3: generic object presentation walking references.
    let engine = db.new_object(
        "VehicleEngine",
        Value::tuple(vec![
            ("size", Value::Integer(1998)),
            ("cylinders", Value::Integer(4)),
        ]),
    )?;
    let train = db.new_object(
        "VehicleDriveTrain",
        Value::tuple(vec![
            ("engine", Value::Ref(engine)),
            ("transmission", Value::string("AUTOMATIC")),
        ]),
    )?;
    let car = db.new_object(
        "JapaneseAuto",
        Value::tuple(vec![
            ("id", Value::Integer(1)),
            ("weight", Value::Integer(1100)),
            ("drivetrain", Value::Ref(train)),
        ]),
    )?;
    println!("\n== generic object presentation (depth 2) ==");
    print!("{}", db.render_object(car, 2));

    // Section 9.4: the name/type/value cursor-buffer protocol MoodView
    // synthesizes widgets from.
    println!("\n== attribute triplets (the kernel↔MoodView buffer) ==");
    for t in view::object_triplets(db.catalog(), car)? {
        println!("  {:<12} {:<40} {}", t.name, t.type_name, t.value);
    }

    // Section 9.3: the query manager with history.
    println!("\n== query manager session ==");
    let mut qm = view::QueryManager::new(db.catalog().clone(), db.funcman().clone());
    qm.run("SELECT v FROM EVERY Vehicle v")?;
    qm.run("SELECT v.weight FROM EVERY Vehicle v WHERE v.weight > 1000")?;
    let _ = qm.run("SELECT broken FROM Nowhere x"); // recorded as failed
    for (i, h) in qm.history().iter().enumerate() {
        println!(
            "  [{i}] {} — {} ({} rows)",
            if h.ok { "ok " } else { "ERR" },
            h.sql,
            h.rows
        );
    }
    println!("  re-running [1]:");
    let answer = qm.rerun(1)?;
    if let mood_core::Answer::Rows(r) = answer {
        println!("  → {} rows", r.len());
    }
    Ok(())
}
