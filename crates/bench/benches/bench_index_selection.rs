//! X2 — the §8.1 index-selection inequality: where the optimizer switches
//! between indexed access and the sequential scan, model vs measured.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mood_core::{Mood, Value};

/// Build a single-class database with a controlled value distribution:
/// `k` takes `dist` distinct values uniformly.
fn build(n: usize, dist: i32) -> Mood {
    let db = Mood::in_memory_with_pool(8);
    db.execute("CREATE CLASS Row TUPLE (k Integer, pad String)")
        .unwrap();
    let catalog = db.catalog();
    for i in 0..n {
        catalog
            .new_object(
                "Row",
                Value::tuple(vec![
                    ("k", Value::Integer(i as i32 % dist)),
                    ("pad", Value::string("p".repeat(180))),
                ]),
            )
            .unwrap();
    }
    db.execute("CREATE INDEX ON Row(k)").unwrap();
    db.collect_stats().unwrap();
    db
}

fn pages(db: &Mood, q: &str) -> (u64, u64, u64) {
    db.metrics().reset();
    db.query(q).expect("query runs");
    let s = db.metrics().snapshot();
    (s.seq_pages, s.rnd_pages, s.idx_pages)
}

fn bench(c: &mut Criterion) {
    println!("\n# X2: index vs scan across selectivity (n=8000 rows)");
    println!(
        "{:>8} {:>12} {:>22} {:>22}",
        "dist", "selectivity", "plan chose", "pages (seq/rnd/idx)"
    );
    // Higher dist → lower equality selectivity → index more attractive.
    for dist in [2i32, 20, 200, 4000] {
        let db = build(8000, dist);
        let plan = db.explain("SELECT r FROM Row r WHERE r.k = 1").unwrap();
        let chose_index = plan.contains("INDSEL");
        let (seq, rnd, idx) = pages(&db, "SELECT r FROM Row r WHERE r.k = 1");
        println!(
            "{:>8} {:>12.5} {:>22} {:>14}/{}/{}",
            dist,
            1.0 / dist as f64,
            if chose_index {
                "INDSEL (index)"
            } else {
                "SELECT (scan)"
            },
            seq,
            rnd,
            idx
        );
        // Shape check: at dist=2 (selectivity 0.5) the scan must win; at
        // dist=4000 (0.00025) the index must win.
        if dist == 2 {
            assert!(!chose_index, "unselective predicate must scan");
        }
        if dist == 4000 {
            assert!(chose_index, "highly selective predicate must use the index");
        }
    }

    let mut group = c.benchmark_group("index_selection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for dist in [2i32, 4000] {
        let db = build(8000, dist);
        group.bench_with_input(BenchmarkId::new("equality_query", dist), &db, |b, db| {
            b.iter(|| {
                db.query("SELECT r FROM Row r WHERE r.k = 1")
                    .expect("runs")
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
