//! Vendored stand-in for the `proptest` crate so the workspace builds
//! offline. It keeps proptest's *shape* — `proptest!` blocks, `Strategy`
//! combinators, `prop_oneof!`, regex-string strategies — but replaces the
//! engine with a deterministic SplitMix64 generator and no shrinking: a
//! failing case panics with the normal assert message instead of being
//! minimized. Each test's RNG is seeded from its full module path, so runs
//! are reproducible and independent of test ordering.

pub mod test_runner {
    /// Drop-in for `proptest::test_runner::Config` (aka `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        /// Accepted for drop-in compatibility; the shim runner does not
        /// shrink, so this is never consulted.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Deterministic SplitMix64 stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test's module path: stable across runs.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform usize in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::string::gen_from_pattern;
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// The value-generation half of proptest's `Strategy`. No shrinking:
    /// `generate` produces one value per call from the shared test RNG.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, O>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map {
                inner: self,
                f: Rc::new(f),
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build a recursive strategy: each extra level is a coin flip
        /// between the leaf strategy and one application of `branch`, so
        /// nesting depth is bounded by `depth`. The `_desired_size` and
        /// `_expected_branch_size` hints are accepted for signature
        /// compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), branch(cur).boxed()]).boxed();
            }
            cur
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S: Strategy, O> {
        inner: S,
        f: Rc<dyn Fn(S::Value) -> O>,
    }

    impl<S: Strategy, O> Clone for Map<S, O> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S: Strategy, O> Strategy for Map<S, O> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!` with no weights).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union(options)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),* $(,)?) => {
            $(impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $ty
                }
            })*
        };
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String literals act as (a supported subset of) regex strategies.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {
            $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            })*
        };
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),* $(,)?) => {
            $(impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly printable ASCII, sometimes an arbitrary scalar value,
            // so multi-byte encodings get exercised too.
            if rng.below(4) == 0 {
                loop {
                    if let Some(c) = char::from_u32((rng.next_u64() % 0x110000) as u32) {
                        return c;
                    }
                }
            }
            (b' ' + rng.below(95) as u8) as char
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S: Strategy> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    #[derive(Clone)]
    pub struct HashSetStrategy<S: Strategy> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let want = self.len.clone().generate(rng);
            let mut out = HashSet::new();
            // Bounded attempts: a small element domain may not admit `want`
            // distinct values, in which case we return what we collected.
            for _ in 0..want * 10 + 20 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    pub fn hash_set<S: Strategy>(elem: S, len: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { elem, len }
    }
}

pub mod string {
    //! Generator for the regex subset the workspace's patterns use:
    //! literal characters, `[...]` classes with ranges, `\PC` (any
    //! printable character), and the quantifiers `{m,n}`, `{n}`, `*`,
    //! `+`, `?`.

    use super::test_runner::TestRng;

    enum Atom {
        /// Inclusive character ranges, e.g. `[a-zA-Z0-9 ]`.
        Class(Vec<(char, char)>),
        /// `\PC`: printable — mostly ASCII, sometimes wider Unicode.
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    while let Some(&k) = chars.peek() {
                        if k == ']' {
                            chars.next();
                            break;
                        }
                        let lo = chars.next().expect("unterminated class");
                        if chars.peek() == Some(&'-')
                            && chars.clone().nth(1).map(|c| c != ']').unwrap_or(false)
                        {
                            chars.next();
                            let hi = chars.next().expect("unterminated range");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        let prop = chars.next();
                        assert_eq!(prop, Some('C'), "only \\PC is supported");
                        Atom::Printable
                    }
                    Some(lit) => Atom::Class(vec![(lit, lit)]),
                    None => panic!("trailing backslash in pattern"),
                },
                lit => Atom::Class(vec![(lit, lit)]),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for k in chars.by_ref() {
                        if k == '}' {
                            break;
                        }
                        body.push(k);
                    }
                    match body.split_once(',') {
                        Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                        None => {
                            let n = body.parse().unwrap();
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Printable => {
                const WIDE: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '✓', '𝔘'];
                if rng.below(8) == 0 {
                    WIDE[rng.below(WIDE.len())]
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            }
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut pick = rng.below(total as usize) as u32;
                for &(lo, hi) in ranges {
                    let n = hi as u32 - lo as u32 + 1;
                    if pick < n {
                        return char::from_u32(lo as u32 + pick).expect("class range");
                    }
                    pick -= n;
                }
                unreachable!()
            }
        }
    }

    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// No shrinking in this shim, so prop-asserts are plain asserts.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform (unweighted) choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn pattern_subset_generates_matching_strings() {
        let mut rng = TestRng::for_test("patterns");
        for _ in 0..200 {
            let s = "q[a-z0-9]{0,6}".generate(&mut rng);
            assert!(s.starts_with('q'));
            assert!(s.len() <= 7);
            assert!(s[1..].chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[ -~]{0,60}".generate(&mut rng);
            assert!(t.len() <= 60);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));

            let p = "\\PC{2}".generate(&mut rng);
            assert_eq!(p.chars().count(), 2);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i32),
            Node(Vec<Tree>),
        }
        let strat = (0i32..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_test("recursive");
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion should produce branches sometimes");
    }

    #[test]
    fn oneof_hits_every_branch() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_args(
            xs in crate::collection::vec(0usize..20, 0..15),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 15);
            prop_assert_eq!(usize::from(flag) > 1, false);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(n in 1u32..100) {
            prop_assert!((1..100).contains(&n));
        }
    }
}
