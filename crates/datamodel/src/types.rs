//! Type descriptors: the MOOD data model's types.
//!
//! "The basic types supported by the MOOD are Integer, Float, LongInteger,
//! String, Char, and Boolean. The type constructors are Tuple, Set, List,
//! and Reference. A complex type may be created by using basic types and
//! recursive application of the type constructors." (Section 2)

use std::fmt;

/// The six basic types of Section 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicType {
    /// 32-bit signed integer.
    Integer,
    /// 64-bit IEEE float (the paper's C++ heritage reads Float as `double`
    /// in its `OperandDataType` example, which mixes INT16/INT32/DOUBLE).
    Float,
    /// 64-bit signed integer.
    LongInteger,
    /// Variable-length string (DDL may carry a length bound).
    String,
    /// A single character.
    Char,
    /// True/false.
    Boolean,
}

impl BasicType {
    pub const ALL: [BasicType; 6] = [
        BasicType::Integer,
        BasicType::Float,
        BasicType::LongInteger,
        BasicType::String,
        BasicType::Char,
        BasicType::Boolean,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            BasicType::Integer => "Integer",
            BasicType::Float => "Float",
            BasicType::LongInteger => "LongInteger",
            BasicType::String => "String",
            BasicType::Char => "Char",
            BasicType::Boolean => "Boolean",
        }
    }

    pub fn parse(name: &str) -> Option<BasicType> {
        Self::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Is this a numeric type (participates in arithmetic coercion)?
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            BasicType::Integer | BasicType::Float | BasicType::LongInteger
        )
    }
}

impl fmt::Display for BasicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A (possibly complex) type: basic types closed under the four
/// constructors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeDescriptor {
    Basic(BasicType),
    /// Named fields; order is significant (it is the storage order).
    Tuple(Vec<(String, TypeDescriptor)>),
    Set(Box<TypeDescriptor>),
    List(Box<TypeDescriptor>),
    /// Reference to instances of the named class.
    Reference(String),
}

impl TypeDescriptor {
    pub fn integer() -> Self {
        TypeDescriptor::Basic(BasicType::Integer)
    }
    pub fn float() -> Self {
        TypeDescriptor::Basic(BasicType::Float)
    }
    pub fn long_integer() -> Self {
        TypeDescriptor::Basic(BasicType::LongInteger)
    }
    pub fn string() -> Self {
        TypeDescriptor::Basic(BasicType::String)
    }
    pub fn char() -> Self {
        TypeDescriptor::Basic(BasicType::Char)
    }
    pub fn boolean() -> Self {
        TypeDescriptor::Basic(BasicType::Boolean)
    }
    pub fn reference(class: impl Into<String>) -> Self {
        TypeDescriptor::Reference(class.into())
    }
    pub fn set_of(inner: TypeDescriptor) -> Self {
        TypeDescriptor::Set(Box::new(inner))
    }
    pub fn list_of(inner: TypeDescriptor) -> Self {
        TypeDescriptor::List(Box::new(inner))
    }
    pub fn tuple(fields: Vec<(&str, TypeDescriptor)>) -> Self {
        TypeDescriptor::Tuple(
            fields
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        )
    }

    /// Is this an atomic (basic) type? Path expressions must *end* in one.
    pub fn is_atomic(&self) -> bool {
        matches!(self, TypeDescriptor::Basic(_))
    }

    /// The field type of a tuple attribute, if this is a tuple with it.
    pub fn field(&self, name: &str) -> Option<&TypeDescriptor> {
        match self {
            TypeDescriptor::Tuple(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, t)| t),
            _ => None,
        }
    }

    /// Referenced class name if this is (a set/list of) references — the
    /// types a path expression may traverse through.
    pub fn referenced_class(&self) -> Option<&str> {
        match self {
            TypeDescriptor::Reference(c) => Some(c),
            TypeDescriptor::Set(inner) | TypeDescriptor::List(inner) => inner.referenced_class(),
            _ => None,
        }
    }

    /// Nesting depth of constructors (diagnostics, display budgets).
    pub fn depth(&self) -> usize {
        match self {
            TypeDescriptor::Basic(_) | TypeDescriptor::Reference(_) => 1,
            TypeDescriptor::Set(t) | TypeDescriptor::List(t) => 1 + t.depth(),
            TypeDescriptor::Tuple(fields) => {
                1 + fields.iter().map(|(_, t)| t.depth()).max().unwrap_or(0)
            }
        }
    }
}

impl fmt::Display for TypeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeDescriptor::Basic(b) => write!(f, "{b}"),
            TypeDescriptor::Tuple(fields) => {
                write!(f, "TUPLE (")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} {t}")?;
                }
                write!(f, ")")
            }
            TypeDescriptor::Set(t) => write!(f, "SET ({t})"),
            TypeDescriptor::List(t) => write!(f, "LIST ({t})"),
            TypeDescriptor::Reference(c) => write!(f, "REFERENCE ({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_type_parse_roundtrip() {
        for b in BasicType::ALL {
            assert_eq!(BasicType::parse(b.name()), Some(b));
        }
        assert_eq!(BasicType::parse("integer"), Some(BasicType::Integer));
        assert_eq!(BasicType::parse("Decimal"), None);
    }

    #[test]
    fn numeric_classification() {
        assert!(BasicType::Integer.is_numeric());
        assert!(BasicType::Float.is_numeric());
        assert!(BasicType::LongInteger.is_numeric());
        assert!(!BasicType::String.is_numeric());
        assert!(!BasicType::Char.is_numeric());
        assert!(!BasicType::Boolean.is_numeric());
    }

    #[test]
    fn vehicle_tuple_from_the_paper() {
        // CREATE CLASS Vehicle TUPLE (id Integer, weight Integer,
        //   drivetrain REFERENCE (VehicleDriveTrain),
        //   manufacturer REFERENCE (Company))
        let t = TypeDescriptor::tuple(vec![
            ("id", TypeDescriptor::integer()),
            ("weight", TypeDescriptor::integer()),
            ("drivetrain", TypeDescriptor::reference("VehicleDriveTrain")),
            ("manufacturer", TypeDescriptor::reference("Company")),
        ]);
        assert_eq!(t.field("weight"), Some(&TypeDescriptor::integer()));
        assert_eq!(
            t.field("drivetrain").unwrap().referenced_class(),
            Some("VehicleDriveTrain")
        );
        assert_eq!(t.field("missing"), None);
        assert!(!t.is_atomic());
    }

    #[test]
    fn set_of_references_traversable() {
        let t = TypeDescriptor::set_of(TypeDescriptor::reference("Employee"));
        assert_eq!(t.referenced_class(), Some("Employee"));
        let t2 = TypeDescriptor::list_of(TypeDescriptor::reference("Employee"));
        assert_eq!(t2.referenced_class(), Some("Employee"));
        assert_eq!(TypeDescriptor::string().referenced_class(), None);
    }

    #[test]
    fn display_matches_ddl_style() {
        let t = TypeDescriptor::tuple(vec![
            ("name", TypeDescriptor::string()),
            (
                "engines",
                TypeDescriptor::set_of(TypeDescriptor::reference("VehicleEngine")),
            ),
        ]);
        assert_eq!(
            t.to_string(),
            "TUPLE (name String, engines SET (REFERENCE (VehicleEngine)))"
        );
    }

    #[test]
    fn depth_counts_nesting() {
        let t = TypeDescriptor::set_of(TypeDescriptor::list_of(TypeDescriptor::integer()));
        assert_eq!(t.depth(), 3);
        assert_eq!(TypeDescriptor::boolean().depth(), 1);
    }
}
