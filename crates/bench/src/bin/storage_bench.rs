//! `storage_bench` — storage hot-path throughput at parallelism 1/2/4/8,
//! written to `BENCH_storage.json`.
//!
//! ```sh
//! cargo run --release -p mood-bench --bin storage_bench            # full
//! cargo run --release -p mood-bench --bin storage_bench -- --smoke # CI
//! cargo run -p mood-bench --bin storage_bench -- --out path.json
//! ```
//!
//! Three workloads over one shared sharded buffer pool:
//!
//! * **scan** — chunk-parallel full heap scan (`scan_range_with`, so each
//!   worker gets readahead batches on its own page range);
//! * **point-get** — random record fetches by OID;
//! * **join** — OID-chase: fetch a left record, decode the reference it
//!   stores, fetch the referenced right record (the forward-traversal join's
//!   access pattern).
//!
//! Page reads go through a latency-injecting in-memory disk (a seek delay
//! per positioning plus a transfer delay per page — the SEQCOST/RNDCOST
//! shape). That models the regime the paper's cost model assumes, where
//! page I/O dominates: threads scale by *overlapping I/O waits*, which the
//! old single-mutex pool made impossible because the lock was held across
//! every disk read. Results therefore measure pool concurrency, not CPU
//! count — meaningful even on a single-core runner.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mood_storage::exec::run_chunked;
use mood_storage::{
    BufferPool, Disk, DiskMetrics, FileId, HeapFile, MemDisk, Oid, Page, PageId,
    Result as StorageResult,
};

/// MemDisk wrapper charging a positioning delay per read call and a
/// transfer delay per page. Writes are free (setup noise). Batched
/// `read_pages` pays one positioning delay for the whole run — the physical
/// win readahead exists to harvest.
struct LatencyDisk {
    inner: MemDisk,
    seek: Duration,
    transfer: Duration,
}

impl Disk for LatencyDisk {
    fn create_file(&self) -> StorageResult<FileId> {
        self.inner.create_file()
    }
    fn drop_file(&self, file: FileId) -> StorageResult<()> {
        self.inner.drop_file(file)
    }
    fn page_count(&self, file: FileId) -> StorageResult<u32> {
        self.inner.page_count(file)
    }
    fn allocate_page(&self, file: FileId) -> StorageResult<PageId> {
        self.inner.allocate_page(file)
    }
    fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> StorageResult<()> {
        std::thread::sleep(self.seek + self.transfer);
        self.inner.read_page(file, page, buf)
    }
    fn read_pages(&self, file: FileId, start: PageId, bufs: &mut [Page]) -> StorageResult<()> {
        std::thread::sleep(self.seek + self.transfer * bufs.len() as u32);
        self.inner.read_pages(file, start, bufs)
    }
    fn write_page(&self, file: FileId, page: PageId, data: &Page) -> StorageResult<()> {
        self.inner.write_page(file, page, data)
    }
    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }
    fn files(&self) -> Vec<FileId> {
        self.inner.files()
    }
}

struct Sizes {
    pool_frames: usize,
    scan_records: u32,
    right_records: u32,
    point_gets: usize,
    smoke: bool,
}

const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];

/// One measurement: (parallelism, seconds, records per second).
type Row = (usize, f64, f64);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_storage.json".to_string());
    let sizes = if smoke {
        Sizes {
            pool_frames: 64,
            scan_records: 96,
            right_records: 64,
            point_gets: 64,
            smoke: true,
        }
    } else {
        Sizes {
            pool_frames: 1024,
            scan_records: 2048,
            right_records: 1536,
            point_gets: 1024,
            smoke: false,
        }
    };

    let disk = Arc::new(LatencyDisk {
        inner: MemDisk::new(),
        seek: Duration::from_micros(if smoke { 120 } else { 300 }),
        transfer: Duration::from_micros(20),
    });
    let metrics = DiskMetrics::new();
    let pool = Arc::new(BufferPool::new(
        disk.clone(),
        sizes.pool_frames,
        metrics.clone(),
    ));
    println!(
        "pool: {} frames, {} shards, readahead window {}",
        pool.capacity(),
        pool.shard_count(),
        pool.readahead_window()
    );

    // ------------------------------------------------------------------
    // Data: a fat scan heap (~1 record/page), a fat right heap, and a thin
    // left heap whose records each store one right-record OID.
    // ------------------------------------------------------------------
    let scan_heap = HeapFile::create(pool.clone()).unwrap();
    for i in 0..sizes.scan_records {
        scan_heap.insert(&fat_record(i)).unwrap();
    }
    let right_heap = HeapFile::create(pool.clone()).unwrap();
    let right_oids: Vec<Oid> = (0..sizes.right_records)
        .map(|i| right_heap.insert(&fat_record(i)).unwrap())
        .collect();
    let left_heap = HeapFile::create(pool.clone()).unwrap();
    let left_oids: Vec<Oid> = (0..sizes.right_records)
        .map(|i| {
            // Scramble so the chase is random access on the right side.
            let target = right_oids[(i as usize * 7919) % right_oids.len()];
            left_heap.insert(&target.to_bytes()).unwrap()
        })
        .collect();
    let point_oids: Vec<Oid> = (0..sizes.point_gets)
        .map(|i| right_oids[(i * 104_729) % right_oids.len()])
        .collect();

    let cold = |files: &[FileId]| {
        for f in files {
            pool.discard_file(*f);
        }
    };

    // ------------------------------------------------------------------
    // Workloads. Each runs cold at every parallelism so the figures are
    // comparable; throughput is records (or probes) per second.
    // ------------------------------------------------------------------
    let mut results: Vec<(&str, Vec<Row>)> = Vec::new();

    // scan: chunk-parallel over the page range.
    let scan_pages: Vec<u32> = (0..scan_heap.pages().unwrap()).collect();
    let mut scan_rows = Vec::new();
    for par in PARALLELISMS {
        cold(&[scan_heap.file_id()]);
        let t0 = Instant::now();
        let counts = run_chunked(par, &scan_pages, |_, chunk| {
            let mut n = 0u64;
            scan_heap
                .scan_range_with(chunk[0], chunk[chunk.len() - 1] + 1, |_, _| {
                    n += 1;
                    true
                })
                .map_err(|e| e.to_string())?;
            Ok::<_, String>(vec![n])
        })
        .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let rows: u64 = counts.iter().sum();
        assert_eq!(rows, sizes.scan_records as u64);
        scan_rows.push((par, secs, rows as f64 / secs));
    }
    results.push(("scan", scan_rows));

    // point-get: random fetches by OID.
    let mut get_rows = Vec::new();
    for par in PARALLELISMS {
        cold(&[right_heap.file_id()]);
        let t0 = Instant::now();
        run_chunked(par, &point_oids, |_, chunk| {
            for oid in chunk {
                right_heap.get(*oid).map_err(|e| e.to_string())?;
            }
            Ok::<_, String>(Vec::<()>::new())
        })
        .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        get_rows.push((par, secs, point_oids.len() as f64 / secs));
    }
    results.push(("point_get", get_rows));

    // join: left fetch -> decode stored reference -> right fetch.
    let mut join_rows = Vec::new();
    for par in PARALLELISMS {
        cold(&[left_heap.file_id(), right_heap.file_id()]);
        let t0 = Instant::now();
        let pairs = run_chunked(par, &left_oids, |_, chunk| {
            let mut n = 0u64;
            for oid in chunk {
                let bytes = left_heap.get(*oid).map_err(|e| e.to_string())?;
                let target = Oid::from_bytes(&bytes).ok_or("bad ref")?;
                right_heap.get(target).map_err(|e| e.to_string())?;
                n += 1;
            }
            Ok::<_, String>(vec![n])
        })
        .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let n: u64 = pairs.iter().sum();
        assert_eq!(n, left_oids.len() as u64);
        join_rows.push((par, secs, n as f64 / secs));
    }
    results.push(("join", join_rows));

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let snap = metrics.snapshot();
    let accesses = snap.buffer_hits + snap.buffer_misses;
    let hit_ratio = if accesses == 0 {
        0.0
    } else {
        snap.buffer_hits as f64 / accesses as f64
    };
    let wait_ms = pool.wait_ns() as f64 / 1e6;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"storage\",\n");
    json.push_str(&format!("  \"smoke\": {},\n", sizes.smoke));
    json.push_str(&format!("  \"pool_frames\": {},\n", pool.capacity()));
    json.push_str(&format!("  \"shards\": {},\n", pool.shard_count()));
    json.push_str(&format!(
        "  \"readahead_window\": {},\n",
        pool.readahead_window()
    ));
    json.push_str("  \"workloads\": {\n");
    let mut ok = true;
    for (wi, (name, rows)) in results.iter().enumerate() {
        json.push_str(&format!("    \"{name}\": {{\n"));
        for (par, secs, tput) in rows {
            json.push_str(&format!(
                "      \"p{par}\": {{\"seconds\": {secs:.6}, \"per_second\": {tput:.1}}},\n"
            ));
        }
        let speedup = rows[3].2 / rows[0].2;
        json.push_str(&format!("      \"speedup_p8_over_p1\": {speedup:.2}\n"));
        json.push_str(if wi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
        println!(
            "{name:>9}: p1 {:8.0}/s  p2 {:8.0}/s  p4 {:8.0}/s  p8 {:8.0}/s  speedup {speedup:.2}x",
            rows[0].2, rows[1].2, rows[2].2, rows[3].2
        );
        if matches!(*name, "scan" | "join") && !sizes.smoke && speedup < 2.0 {
            ok = false;
        }
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"buffer_hit_ratio\": {hit_ratio:.4},\n"));
    json.push_str(&format!("  \"pool_wait_ms\": {wait_ms:.3}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap();
    println!("hit ratio {hit_ratio:.4}, pool wait {wait_ms:.3} ms");
    println!("wrote {out_path}");
    if !ok {
        println!("WARNING: scan/join parallelism-8 speedup below the 2x target");
        std::process::exit(1);
    }
}

/// ~3 KB payload so each record fills most of a page (1 record/page-ish):
/// page counts, not record counts, drive the I/O numbers.
fn fat_record(i: u32) -> Vec<u8> {
    let mut v = vec![0u8; 3000];
    v[..4].copy_from_slice(&i.to_le_bytes());
    v
}
