//! `query_bench` — query hot-path throughput with the plan cache and
//! compiled predicate evaluation on vs off, written to `BENCH_query.json`.
//!
//! ```sh
//! cargo run --release -p mood-bench --bin query_bench            # full
//! cargo run --release -p mood-bench --bin query_bench -- --smoke # CI
//! cargo run -p mood-bench --bin query_bench -- --out path.json
//! ```
//!
//! Four workloads over an indexed Section 3.1 Vehicle schema:
//!
//! * **point** — the same index-served point lookup repeated: execution is
//!   one B+-tree probe, so parse/bind/optimize dominate the cold path and
//!   the plan cache removes them entirely (gated at ≥2×);
//! * **path_point** — a point lookup conjoined with a path predicate
//!   (`drivetrain.engine.cylinders`): planning additionally enumerates
//!   path-expression strategies — the paper's expensive optimization —
//!   so caching pays off even more (gated at ≥2×);
//! * **scan** — a quarter-selectivity path predicate over the whole
//!   extent: execution (object fetches) dominates, so this reports the
//!   honest lower end of what plan caching buys (not gated);
//! * **adhoc** — every statement textually distinct, so the cache misses
//!   by design: reports the lookup-miss + prepare-and-insert overhead
//!   (not gated).
//!
//! Cold = plan cache and compiled predicates disabled (the statement is
//! parsed, bound and optimized every time, predicates interpreted).
//! Warm = both enabled after one priming execution. Every workload
//! asserts warm and cold answers are identical before timings count, and
//! each measurement is the best of `REPS` repetitions to damp scheduler
//! noise.

use std::time::Instant;

use mood_core::{Answer, Mood, OptimizerConfig, QueryResult, Value};

const REPS: usize = 3;

struct Sizes {
    vehicles: i32,
    iters: usize,
    smoke: bool,
}

struct Measure {
    cold_qps: f64,
    warm_qps: f64,
    speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_query.json".to_string());
    let sizes = if smoke {
        Sizes {
            vehicles: 512,
            iters: 20,
            smoke: true,
        }
    } else {
        Sizes {
            vehicles: 4096,
            iters: 500,
            smoke: false,
        }
    };

    let db = build(sizes.vehicles);
    db.set_parallelism(1);
    let repeated: [(&str, String, bool); 3] = [
        (
            "point",
            "SELECT v.id, v.weight FROM EVERY Vehicle v WHERE v.id = 17 ORDER BY v.id".into(),
            true,
        ),
        (
            "path_point",
            "SELECT v.id, v.weight FROM EVERY Vehicle v \
             WHERE v.drivetrain.engine.cylinders = 6 AND v.id = 17 ORDER BY v.id"
                .into(),
            true,
        ),
        (
            "scan",
            "SELECT v.id FROM EVERY Vehicle v \
             WHERE v.drivetrain.engine.cylinders = 2 AND v.weight > 800 ORDER BY v.id"
                .into(),
            false,
        ),
    ];

    let mut results: Vec<(&str, bool, Measure)> = Vec::new();
    let mut ok = true;

    for (name, sql, gated) in &repeated {
        // Scan-shaped workloads fetch many objects per run; keep their
        // iteration count bounded so the full bench stays quick.
        let iters = if *name == "scan" {
            sizes.iters.min(60)
        } else {
            sizes.iters
        };
        let mut best: Option<Measure> = None;
        for _ in 0..REPS {
            let m = measure(&db, sql, iters);
            if best.as_ref().is_none_or(|b| m.speedup > b.speedup) {
                best = Some(m);
            }
        }
        let best = best.expect("REPS > 0");
        if *gated && !sizes.smoke && best.speedup < 2.0 {
            ok = false;
        }
        results.push((name, *gated, best));
    }

    // adhoc: textually distinct statements; the cache cannot help, so this
    // measures that lookup-miss + prepare-insert overhead stays small.
    {
        let adhoc = |i: usize| {
            format!(
                "SELECT v.id FROM EVERY Vehicle v WHERE v.id = {} ORDER BY v.id",
                i % 251
            )
        };
        let mut best: Option<Measure> = None;
        for _ in 0..REPS {
            db.set_plan_cache_enabled(false);
            db.set_compiled_predicates(false);
            let t0 = Instant::now();
            for i in 0..sizes.iters {
                run(&db, &adhoc(i));
            }
            let cold_secs = t0.elapsed().as_secs_f64();
            db.set_compiled_predicates(true);
            db.set_plan_cache_enabled(true);
            db.clear_plan_cache();
            let t0 = Instant::now();
            for i in 0..sizes.iters {
                run(&db, &adhoc(i));
            }
            let warm_secs = t0.elapsed().as_secs_f64();
            let m = Measure {
                cold_qps: sizes.iters as f64 / cold_secs,
                warm_qps: sizes.iters as f64 / warm_secs,
                speedup: cold_secs / warm_secs,
            };
            if best.as_ref().is_none_or(|b| m.speedup > b.speedup) {
                best = Some(m);
            }
        }
        results.push(("adhoc", false, best.expect("REPS > 0")));
    }

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let metrics = db.engine_metrics();
    let pc = &metrics.plan_cache;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"query\",\n");
    json.push_str(&format!("  \"smoke\": {},\n", sizes.smoke));
    json.push_str(&format!("  \"vehicles\": {},\n", sizes.vehicles));
    json.push_str(&format!("  \"iterations\": {},\n", sizes.iters));
    json.push_str(&format!("  \"repetitions\": {REPS},\n"));
    json.push_str("  \"workloads\": {\n");
    for (wi, (name, gated, m)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"cold_qps\": {:.1}, \"warm_qps\": {:.1}, \
             \"speedup\": {:.2}, \"gated\": {gated}}}{}\n",
            m.cold_qps,
            m.warm_qps,
            m.speedup,
            if wi + 1 < results.len() { "," } else { "" }
        ));
        println!(
            "{name:>10}: cold {:8.0} q/s  warm {:8.0} q/s  speedup {:.2}x{}",
            m.cold_qps,
            m.warm_qps,
            m.speedup,
            if *gated { "  [gated >= 2x]" } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"invalidations\": {}}},\n",
        pc.hits, pc.misses, pc.evictions, pc.invalidations
    ));
    json.push_str(&format!(
        "  \"compile_ms\": {:.3}\n",
        metrics.compile_ns as f64 / 1e6
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap();
    println!(
        "plan cache: {} hits, {} misses, {} evictions, {} invalidations; compile {:.3} ms",
        pc.hits,
        pc.misses,
        pc.evictions,
        pc.invalidations,
        metrics.compile_ns as f64 / 1e6
    );
    println!("wrote {out_path}");
    if !ok {
        println!("WARNING: a gated workload's warm/cold speedup is below the 2x target");
        std::process::exit(1);
    }
}

/// Time one repeated-identical workload cold then warm, asserting the
/// answers agree.
fn measure(db: &Mood, sql: &str, iters: usize) -> Measure {
    db.set_plan_cache_enabled(false);
    db.set_compiled_predicates(false);
    let cold_answer = run(db, sql);
    let t0 = Instant::now();
    for _ in 0..iters {
        assert_eq!(run(db, sql), cold_answer);
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    db.set_compiled_predicates(true);
    db.set_plan_cache_enabled(true);
    let warm_answer = run(db, sql);
    assert_eq!(warm_answer, cold_answer, "warm != cold on {sql}");
    let t0 = Instant::now();
    for _ in 0..iters {
        assert_eq!(run(db, sql), warm_answer);
    }
    let warm_secs = t0.elapsed().as_secs_f64();

    Measure {
        cold_qps: iters as f64 / cold_secs,
        warm_qps: iters as f64 / warm_secs,
        speedup: cold_secs / warm_secs,
    }
}

fn run(db: &Mood, sql: &str) -> QueryResult {
    match db.execute(sql).unwrap() {
        Answer::Rows(r) => r,
        other => panic!("not rows: {other:?}"),
    }
}

/// The Section 3.1 Vehicle schema, indexed on `id` and the
/// `drivetrain.engine.cylinders` path so repeated lookups are index-served
/// and plan construction — what the cache removes — dominates the cold path.
fn build(n_vehicles: i32) -> Mood {
    let db = Mood::in_memory_with_pool(1024);
    db.set_optimizer_config(OptimizerConfig::paper());
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain))",
    ] {
        db.execute(ddl).unwrap();
    }
    let catalog = db.catalog();
    let mut trains = Vec::new();
    for i in 0..16i32 {
        let engine = catalog
            .new_object(
                "VehicleEngine",
                Value::tuple(vec![
                    ("size", Value::Integer(1000 + i * 100)),
                    ("cylinders", Value::Integer(2 + (i % 4) * 2)),
                ]),
            )
            .unwrap();
        trains.push(
            catalog
                .new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![
                        ("engine", Value::Ref(engine)),
                        (
                            "transmission",
                            Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                        ),
                    ]),
                )
                .unwrap(),
        );
    }
    for i in 0..n_vehicles {
        catalog
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(i)),
                    ("weight", Value::Integer(700 + (i % 15) * 80)),
                    ("drivetrain", Value::Ref(trains[i as usize % trains.len()])),
                ]),
            )
            .unwrap();
    }
    db.execute("CREATE INDEX ON Vehicle(id)").unwrap();
    db.execute("CREATE INDEX ON Vehicle(drivetrain.engine.cylinders)")
        .unwrap();
    db.collect_stats().unwrap();
    db
}
