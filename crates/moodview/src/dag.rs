//! DAG placement for class hierarchies.
//!
//! "Their inheritance relationships is represented as a DAG … and MoodView
//! uses a DAG placement algorithm that minimizes crossovers" (Section 9.2).
//! This is the classic Sugiyama pipeline: longest-path layering, then
//! iterative barycenter ordering within layers to reduce edge crossings,
//! then coordinate assignment. The output is a layout consumable by the
//! ASCII and DOT renderers.

use std::collections::HashMap;

/// A node placed on the canvas.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedNode {
    pub name: String,
    /// Layer index (0 = roots).
    pub layer: usize,
    /// Horizontal slot within the layer after crossing minimization.
    pub slot: usize,
}

/// A computed layout.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    pub nodes: Vec<PlacedNode>,
    /// Edges as (parent, child) names.
    pub edges: Vec<(String, String)>,
}

impl Layout {
    pub fn node(&self, name: &str) -> Option<&PlacedNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Count of edge crossings between adjacent layers (the quantity the
    /// barycenter pass minimizes; exposed for tests).
    pub fn crossings(&self) -> usize {
        let pos: HashMap<&str, (usize, usize)> = self
            .nodes
            .iter()
            .map(|n| (n.name.as_str(), (n.layer, n.slot)))
            .collect();
        let mut total = 0;
        // Group edges by the layer of their upper endpoint.
        let mut by_layer: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        for (a, b) in &self.edges {
            let (Some(&(la, sa)), Some(&(lb, sb))) = (pos.get(a.as_str()), pos.get(b.as_str()))
            else {
                continue;
            };
            if lb == la + 1 {
                by_layer.entry(la).or_default().push((sa, sb));
            }
        }
        for edges in by_layer.values() {
            for (i, &(a1, b1)) in edges.iter().enumerate() {
                for &(a2, b2) in &edges[i + 1..] {
                    if (a1 < a2 && b1 > b2) || (a1 > a2 && b1 < b2) {
                        total += 1;
                    }
                }
            }
        }
        total
    }
}

/// Compute a layout from (parent, child) inheritance edges plus any
/// isolated node names.
pub fn place(nodes: &[String], edges: &[(String, String)]) -> Layout {
    // Longest-path layering: layer(n) = 1 + max(layer(parent)).
    let mut parents: HashMap<&str, Vec<&str>> = HashMap::new();
    let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
    for (p, c) in edges {
        parents.entry(c.as_str()).or_default().push(p.as_str());
        children.entry(p.as_str()).or_default().push(c.as_str());
    }
    let mut layer: HashMap<&str, usize> = HashMap::new();
    fn depth<'a>(
        n: &'a str,
        parents: &HashMap<&'a str, Vec<&'a str>>,
        memo: &mut HashMap<&'a str, usize>,
    ) -> usize {
        if let Some(&d) = memo.get(n) {
            return d;
        }
        memo.insert(n, 0); // cycle guard (catalog guarantees acyclicity)
        let d = parents
            .get(n)
            .map(|ps| {
                1 + ps
                    .iter()
                    .map(|p| depth(p, parents, memo))
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        memo.insert(n, d);
        d
    }
    for n in nodes {
        let d = depth(n.as_str(), &parents, &mut layer);
        layer.insert(n.as_str(), d);
    }
    let max_layer = layer.values().copied().max().unwrap_or(0);
    // Initial slot order: insertion order within each layer.
    let mut layers: Vec<Vec<&str>> = vec![Vec::new(); max_layer + 1];
    for n in nodes {
        layers[layer[n.as_str()]].push(n.as_str());
    }
    // Barycenter sweeps: order layer k by the mean slot of neighbors in
    // layer k−1 (downward pass) and k+1 (upward pass), a few rounds.
    let slot_of = |layers: &Vec<Vec<&str>>, name: &str| -> Option<(usize, usize)> {
        for (li, l) in layers.iter().enumerate() {
            if let Some(si) = l.iter().position(|n| *n == name) {
                return Some((li, si));
            }
        }
        None
    };
    for _round in 0..4 {
        // Downward.
        for li in 1..layers.len() {
            let mut keyed: Vec<(f64, &str)> = layers[li]
                .iter()
                .map(|n| {
                    let bary = parents
                        .get(n)
                        .map(|ps| {
                            let slots: Vec<f64> = ps
                                .iter()
                                .filter_map(|p| slot_of(&layers, p).map(|(_, s)| s as f64))
                                .collect();
                            if slots.is_empty() {
                                f64::MAX
                            } else {
                                slots.iter().sum::<f64>() / slots.len() as f64
                            }
                        })
                        .unwrap_or(f64::MAX);
                    (bary, *n)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            layers[li] = keyed.into_iter().map(|(_, n)| n).collect();
        }
        // Upward.
        for li in (0..layers.len().saturating_sub(1)).rev() {
            let mut keyed: Vec<(f64, &str)> = layers[li]
                .iter()
                .map(|n| {
                    let bary = children
                        .get(n)
                        .map(|cs| {
                            let slots: Vec<f64> = cs
                                .iter()
                                .filter_map(|c| slot_of(&layers, c).map(|(_, s)| s as f64))
                                .collect();
                            if slots.is_empty() {
                                f64::MAX
                            } else {
                                slots.iter().sum::<f64>() / slots.len() as f64
                            }
                        })
                        .unwrap_or(f64::MAX);
                    (bary, *n)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            layers[li] = keyed.into_iter().map(|(_, n)| n).collect();
        }
    }
    let mut placed = Vec::new();
    for (li, l) in layers.iter().enumerate() {
        for (si, n) in l.iter().enumerate() {
            placed.push(PlacedNode {
                name: n.to_string(),
                layer: li,
                slot: si,
            });
        }
    }
    Layout {
        nodes: placed,
        edges: edges.to_vec(),
    }
}

/// Render a layout as ASCII: one row of boxes per layer, edges listed
/// underneath (the terminal stand-in for Figure 9.1(c)).
pub fn render_ascii(layout: &Layout) -> String {
    let max_layer = layout.nodes.iter().map(|n| n.layer).max().unwrap_or(0);
    let mut out = String::new();
    for li in 0..=max_layer {
        let mut row: Vec<&PlacedNode> = layout.nodes.iter().filter(|n| n.layer == li).collect();
        row.sort_by_key(|n| n.slot);
        let boxes: Vec<String> = row.iter().map(|n| format!("[{}]", n.name)).collect();
        out.push_str(&boxes.join("   "));
        out.push('\n');
        if li < max_layer {
            out.push('\n');
        }
    }
    out.push_str("edges:\n");
    for (p, c) in &layout.edges {
        out.push_str(&format!("  {p} --> {c}\n"));
    }
    out
}

/// Render a layout as Graphviz DOT (rank-constrained to the layers).
pub fn render_dot(layout: &Layout, title: &str) -> String {
    let mut out = format!("digraph \"{title}\" {{\n  rankdir=TB;\n  node [shape=box];\n");
    let max_layer = layout.nodes.iter().map(|n| n.layer).max().unwrap_or(0);
    for li in 0..=max_layer {
        let names: Vec<String> = layout
            .nodes
            .iter()
            .filter(|n| n.layer == li)
            .map(|n| format!("\"{}\"", n.name))
            .collect();
        if names.len() > 1 {
            out.push_str(&format!("  {{ rank=same; {} }}\n", names.join("; ")));
        }
    }
    for (p, c) in &layout.edges {
        out.push_str(&format!("  \"{p}\" -> \"{c}\";\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn edges(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn paper_hierarchy_layers() {
        let l = place(
            &names(&["Vehicle", "Automobile", "JapaneseAuto"]),
            &edges(&[("Vehicle", "Automobile"), ("Automobile", "JapaneseAuto")]),
        );
        assert_eq!(l.node("Vehicle").unwrap().layer, 0);
        assert_eq!(l.node("Automobile").unwrap().layer, 1);
        assert_eq!(l.node("JapaneseAuto").unwrap().layer, 2);
        assert_eq!(l.crossings(), 0);
    }

    #[test]
    fn multiple_inheritance_takes_longest_path() {
        // D inherits from both B (depth 1) and C (depth 2) → D at layer 3.
        let l = place(
            &names(&["A", "B", "C", "D"]),
            &edges(&[("A", "B"), ("A", "C"), ("C", "C2"), ("B", "D"), ("C2", "D")]),
        );
        let _ = l;
        let l = place(
            &names(&["A", "B", "C", "C2", "D"]),
            &edges(&[("A", "B"), ("A", "C"), ("C", "C2"), ("B", "D"), ("C2", "D")]),
        );
        assert_eq!(l.node("D").unwrap().layer, 3);
    }

    #[test]
    fn barycenter_reduces_crossings() {
        // Two parents with crossed children in insertion order: the
        // barycenter pass must untangle them to zero crossings.
        let nodes = names(&["P1", "P2", "C1", "C2"]);
        let e = edges(&[("P1", "C2"), ("P2", "C1")]);
        let l = place(&nodes, &e);
        assert_eq!(l.crossings(), 0, "{l:?}");
    }

    #[test]
    fn isolated_nodes_are_placed() {
        let l = place(&names(&["Lonely", "Root"]), &edges(&[]));
        assert_eq!(l.nodes.len(), 2);
        assert!(l.nodes.iter().all(|n| n.layer == 0));
    }

    #[test]
    fn ascii_render_contains_all_nodes_and_edges() {
        let l = place(
            &names(&["Vehicle", "Automobile"]),
            &edges(&[("Vehicle", "Automobile")]),
        );
        let s = render_ascii(&l);
        assert!(s.contains("[Vehicle]"));
        assert!(s.contains("[Automobile]"));
        assert!(s.contains("Vehicle --> Automobile"));
    }

    #[test]
    fn dot_render_is_valid_graphviz_shape() {
        let l = place(&names(&["A", "B", "C"]), &edges(&[("A", "B"), ("A", "C")]));
        let s = render_dot(&l, "schema");
        assert!(s.starts_with("digraph"));
        assert!(s.contains("\"A\" -> \"B\";"));
        assert!(s.contains("rank=same"));
        assert!(s.trim_end().ends_with('}'));
    }
}
