//! Catalog persistence — the Figure 2.2 layout.
//!
//! Three ESM files hold the catalog: one of `MoodsType` records (one per
//! class/type), one of `MoodsAttribute` records (one per attribute), one of
//! `MoodsFunction` records (one per method signature). Attribute and
//! function records carry their class's name, mirroring the OID cross-links
//! in the paper's figure. On open, the three files are scanned and the
//! in-memory symbol table rebuilt.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mood_datamodel::{decode_type, encode_type, TypeDescriptor};
use mood_storage::{AccessHint, FileId, HeapFile, Oid, StorageManager};

use crate::error::{CatalogError, Result};
use crate::schema::{AttributeDef, ClassDef, ClassKind, MethodSig};

const NO_FILE: u32 = u32::MAX;

/// Stream a metadata heap record-by-record, stopping at (and surfacing)
/// the first decode error instead of materializing the whole file.
fn stream_heap(
    heap: &HeapFile,
    mut visit: impl FnMut(Oid, &[u8]) -> Result<()>,
) -> Result<()> {
    let mut first_err: Option<CatalogError> = None;
    heap.scan_hint_with(AccessHint::Random, |oid, bytes| match visit(oid, bytes) {
        Ok(()) => true,
        Err(e) => {
            first_err = Some(e);
            false
        }
    })
    .map_err(CatalogError::Storage)?;
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(CatalogError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CatalogError::Corrupt("truncated string body".into()));
    }
    String::from_utf8(buf.split_to(len).to_vec())
        .map_err(|_| CatalogError::Corrupt("non-UTF8 catalog string".into()))
}

fn put_type(buf: &mut BytesMut, t: &TypeDescriptor) {
    let enc = encode_type(t);
    buf.put_u32_le(enc.len() as u32);
    buf.put_slice(&enc);
}

fn get_type(buf: &mut Bytes) -> Result<TypeDescriptor> {
    if buf.remaining() < 4 {
        return Err(CatalogError::Corrupt("truncated type length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CatalogError::Corrupt("truncated type body".into()));
    }
    Ok(decode_type(&buf.split_to(len))?)
}

/// Encode a `MoodsType` record (everything but attributes/methods).
fn encode_moods_type(def: &ClassDef) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_str(&mut buf, &def.name);
    buf.put_u32_le(def.type_id);
    buf.put_u8(match def.kind {
        ClassKind::Class => 0,
        ClassKind::Type => 1,
    });
    buf.put_u32_le(def.superclasses.len() as u32);
    for s in &def.superclasses {
        put_str(&mut buf, s);
    }
    buf.put_u32_le(def.extent.map(|f| f.0).unwrap_or(NO_FILE));
    buf.to_vec()
}

fn decode_moods_type(bytes: &[u8]) -> Result<ClassDef> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let name = get_str(&mut buf)?;
    if buf.remaining() < 9 {
        return Err(CatalogError::Corrupt("truncated MoodsType".into()));
    }
    let type_id = buf.get_u32_le();
    let kind = match buf.get_u8() {
        0 => ClassKind::Class,
        1 => ClassKind::Type,
        k => return Err(CatalogError::Corrupt(format!("bad class kind {k}"))),
    };
    let nsup = buf.get_u32_le() as usize;
    let mut superclasses = Vec::with_capacity(nsup.min(64));
    for _ in 0..nsup {
        superclasses.push(get_str(&mut buf)?);
    }
    if buf.remaining() < 4 {
        return Err(CatalogError::Corrupt("truncated extent id".into()));
    }
    let raw = buf.get_u32_le();
    let extent = if raw == NO_FILE {
        None
    } else {
        Some(FileId(raw))
    };
    Ok(ClassDef {
        name,
        type_id,
        kind,
        attributes: Vec::new(),
        superclasses,
        methods: Vec::new(),
        extent,
    })
}

/// Encode a `MoodsAttribute` record. `position` preserves declaration order.
fn encode_moods_attribute(class: &str, position: u32, attr: &AttributeDef) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_str(&mut buf, class);
    buf.put_u32_le(position);
    put_str(&mut buf, &attr.name);
    put_type(&mut buf, &attr.ty);
    buf.to_vec()
}

fn decode_moods_attribute(bytes: &[u8]) -> Result<(String, u32, AttributeDef)> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let class = get_str(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(CatalogError::Corrupt("truncated attribute position".into()));
    }
    let pos = buf.get_u32_le();
    let name = get_str(&mut buf)?;
    let ty = get_type(&mut buf)?;
    Ok((class, pos, AttributeDef { name, ty }))
}

/// Encode a `MoodsFunction` record.
fn encode_moods_function(class: &str, position: u32, sig: &MethodSig) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_str(&mut buf, class);
    buf.put_u32_le(position);
    put_str(&mut buf, &sig.name);
    put_type(&mut buf, &sig.return_type);
    buf.put_u32_le(sig.params.len() as u32);
    for (n, t) in &sig.params {
        put_str(&mut buf, n);
        put_type(&mut buf, t);
    }
    buf.to_vec()
}

fn decode_moods_function(bytes: &[u8]) -> Result<(String, u32, MethodSig)> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let class = get_str(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(CatalogError::Corrupt("truncated function position".into()));
    }
    let pos = buf.get_u32_le();
    let name = get_str(&mut buf)?;
    let return_type = get_type(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(CatalogError::Corrupt("truncated parameter count".into()));
    }
    let nparams = buf.get_u32_le() as usize;
    let mut params = Vec::with_capacity(nparams.min(64));
    for _ in 0..nparams {
        let pname = get_str(&mut buf)?;
        let pty = get_type(&mut buf)?;
        params.push((pname, pty));
    }
    Ok((
        class,
        pos,
        MethodSig {
            name,
            return_type,
            params,
        },
    ))
}

/// OIDs of a class's persisted records, kept so updates can delete them.
#[derive(Debug, Default, Clone)]
struct SavedClass {
    type_rec: Option<Oid>,
    attr_recs: Vec<Oid>,
    func_recs: Vec<Oid>,
}

/// The three catalog files plus bookkeeping.
pub struct CatalogStore {
    types: HeapFile,
    attrs: HeapFile,
    funcs: HeapFile,
    saved: HashMap<String, SavedClass>,
}

/// File ids of the catalog files — the kernel's bootstrap root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogRoot {
    pub types: FileId,
    pub attrs: FileId,
    pub funcs: FileId,
}

impl CatalogStore {
    /// Create the three catalog files.
    pub fn create(sm: &StorageManager) -> Result<CatalogStore> {
        Ok(CatalogStore {
            types: sm.create_heap()?,
            attrs: sm.create_heap()?,
            funcs: sm.create_heap()?,
            saved: HashMap::new(),
        })
    }

    /// Reopen existing catalog files.
    pub fn open(sm: &StorageManager, root: CatalogRoot) -> CatalogStore {
        CatalogStore {
            types: sm.open_heap(root.types),
            attrs: sm.open_heap(root.attrs),
            funcs: sm.open_heap(root.funcs),
            saved: HashMap::new(),
        }
    }

    pub fn root(&self) -> CatalogRoot {
        CatalogRoot {
            types: self.types.file_id(),
            attrs: self.attrs.file_id(),
            funcs: self.funcs.file_id(),
        }
    }

    /// Persist (or re-persist) one class definition.
    pub fn save_class(&mut self, def: &ClassDef) -> Result<()> {
        self.delete_class(&def.name)?;
        let mut saved = SavedClass {
            type_rec: Some(self.types.insert(&encode_moods_type(def))?),
            ..SavedClass::default()
        };
        for (i, attr) in def.attributes.iter().enumerate() {
            saved.attr_recs.push(
                self.attrs
                    .insert(&encode_moods_attribute(&def.name, i as u32, attr))?,
            );
        }
        for (i, sig) in def.methods.iter().enumerate() {
            saved.func_recs.push(
                self.funcs
                    .insert(&encode_moods_function(&def.name, i as u32, sig))?,
            );
        }
        self.saved.insert(def.name.clone(), saved);
        Ok(())
    }

    /// Remove a class's persisted records (no-op if absent).
    pub fn delete_class(&mut self, name: &str) -> Result<()> {
        if let Some(saved) = self.saved.remove(name) {
            if let Some(oid) = saved.type_rec {
                self.types.delete(oid)?;
            }
            for oid in saved.attr_recs {
                self.attrs.delete(oid)?;
            }
            for oid in saved.func_recs {
                self.funcs.delete(oid)?;
            }
        }
        Ok(())
    }

    /// Scan the catalog files and rebuild all class definitions.
    ///
    /// The scans stream (no intermediate record vectors) with a `Random`
    /// hint: catalog pages load into the buffer pool's hot set, since the
    /// symbol table keeps consulting them point-wise after bootstrap.
    pub fn load_all(&mut self) -> Result<Vec<ClassDef>> {
        self.saved.clear();
        let mut defs: HashMap<String, ClassDef> = HashMap::new();
        let saved = &mut self.saved;
        stream_heap(&self.types, |oid, bytes| {
            let def = decode_moods_type(bytes)?;
            saved.entry(def.name.clone()).or_default().type_rec = Some(oid);
            defs.insert(def.name.clone(), def);
            Ok(())
        })?;
        let mut attrs: HashMap<String, Vec<(u32, AttributeDef, Oid)>> = HashMap::new();
        stream_heap(&self.attrs, |oid, bytes| {
            let (class, pos, attr) = decode_moods_attribute(bytes)?;
            attrs.entry(class).or_default().push((pos, attr, oid));
            Ok(())
        })?;
        let mut funcs: HashMap<String, Vec<(u32, MethodSig, Oid)>> = HashMap::new();
        stream_heap(&self.funcs, |oid, bytes| {
            let (class, pos, sig) = decode_moods_function(bytes)?;
            funcs.entry(class).or_default().push((pos, sig, oid));
            Ok(())
        })?;
        for (class, mut list) in attrs {
            list.sort_by_key(|(pos, _, _)| *pos);
            if let Some(def) = defs.get_mut(&class) {
                for (_, attr, oid) in list {
                    def.attributes.push(attr);
                    self.saved
                        .entry(class.clone())
                        .or_default()
                        .attr_recs
                        .push(oid);
                }
            }
        }
        for (class, mut list) in funcs {
            list.sort_by_key(|(pos, _, _)| *pos);
            if let Some(def) = defs.get_mut(&class) {
                for (_, sig, oid) in list {
                    def.methods.push(sig);
                    self.saved
                        .entry(class.clone())
                        .or_default()
                        .func_recs
                        .push(oid);
                }
            }
        }
        Ok(defs.into_values().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassBuilder;

    fn vehicle_def() -> ClassDef {
        ClassBuilder::class("Vehicle")
            .attribute("id", TypeDescriptor::integer())
            .attribute("drivetrain", TypeDescriptor::reference("VehicleDriveTrain"))
            .inherits("Thing")
            .method(MethodSig::new(
                "lbweight",
                TypeDescriptor::integer(),
                vec![],
            ))
            .method(MethodSig::new(
                "repaint",
                TypeDescriptor::boolean(),
                vec![("color", TypeDescriptor::string())],
            ))
            .build(7, Some(FileId(42)))
    }

    #[test]
    fn record_codecs_roundtrip() {
        let def = vehicle_def();
        let t = decode_moods_type(&encode_moods_type(&def)).unwrap();
        assert_eq!(t.name, "Vehicle");
        assert_eq!(t.type_id, 7);
        assert_eq!(t.superclasses, vec!["Thing"]);
        assert_eq!(t.extent, Some(FileId(42)));

        let (class, pos, attr) =
            decode_moods_attribute(&encode_moods_attribute("Vehicle", 1, &def.attributes[1]))
                .unwrap();
        assert_eq!((class.as_str(), pos), ("Vehicle", 1));
        assert_eq!(attr, def.attributes[1]);

        let (class, pos, sig) =
            decode_moods_function(&encode_moods_function("Vehicle", 0, &def.methods[1])).unwrap();
        assert_eq!((class.as_str(), pos), ("Vehicle", 0));
        assert_eq!(sig, def.methods[1]);
    }

    #[test]
    fn save_load_roundtrip() {
        let sm = StorageManager::in_memory();
        let mut store = CatalogStore::create(&sm).unwrap();
        let def = vehicle_def();
        store.save_class(&def).unwrap();
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], def);
    }

    #[test]
    fn resave_replaces_records() {
        let sm = StorageManager::in_memory();
        let mut store = CatalogStore::create(&sm).unwrap();
        let mut def = vehicle_def();
        store.save_class(&def).unwrap();
        def.attributes
            .push(AttributeDef::new("color", TypeDescriptor::string()));
        store.save_class(&def).unwrap();
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].attributes.len(), 3);
    }

    #[test]
    fn reopen_from_root_rebuilds() {
        let sm = StorageManager::in_memory();
        let root;
        {
            let mut store = CatalogStore::create(&sm).unwrap();
            store.save_class(&vehicle_def()).unwrap();
            root = store.root();
        }
        let mut again = CatalogStore::open(&sm, root);
        let loaded = again.load_all().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, "Vehicle");
        assert_eq!(loaded[0].methods.len(), 2);
        // Loaded bookkeeping supports deletion.
        again.delete_class("Vehicle").unwrap();
        assert!(again.load_all().unwrap().is_empty());
    }

    #[test]
    fn declaration_order_survives_persistence() {
        let sm = StorageManager::in_memory();
        let mut store = CatalogStore::create(&sm).unwrap();
        let mut builder = ClassBuilder::class("Wide");
        for i in 0..40 {
            builder = builder.attribute(format!("a{i:02}"), TypeDescriptor::integer());
        }
        store.save_class(&builder.build(1, None)).unwrap();
        let loaded = store.load_all().unwrap();
        let names: Vec<_> = loaded[0]
            .attributes
            .iter()
            .map(|a| a.name.clone())
            .collect();
        let expect: Vec<_> = (0..40).map(|i| format!("a{i:02}")).collect();
        assert_eq!(names, expect);
    }
}
