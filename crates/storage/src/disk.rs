//! The raw block store under the buffer pool.
//!
//! Two implementations: an in-memory store for tests/benches (so page-access
//! *counts* rather than OS I/O dominate, matching the paper's analytic
//! model), and a real file-backed store (one OS file per storage file) for
//! durability and recovery tests. A fault-injection wrapper simulates I/O
//! failures for error-path tests.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::oid::{FileId, PageId};
use crate::page::{Page, PAGE_SIZE};

/// Abstract block device: files of fixed-size pages.
pub trait Disk: Send + Sync {
    /// Create a new empty file, returning its id.
    fn create_file(&self) -> Result<FileId>;
    /// Remove a file and all its pages.
    fn drop_file(&self, file: FileId) -> Result<()>;
    /// Number of pages currently allocated to `file`.
    fn page_count(&self, file: FileId) -> Result<u32>;
    /// Append a zeroed page, returning its id.
    fn allocate_page(&self, file: FileId) -> Result<PageId>;
    /// Read a page into `buf`.
    fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> Result<()>;
    /// Read `bufs.len()` contiguous pages starting at `start` — the
    /// readahead entry point. The default loops [`Disk::read_page`] (so
    /// wrappers like the fault injector keep ticking per page); real
    /// devices override it with one positioned bulk read.
    fn read_pages(&self, file: FileId, start: PageId, bufs: &mut [Page]) -> Result<()> {
        for (i, buf) in bufs.iter_mut().enumerate() {
            self.read_page(file, PageId(start.0 + i as u32), buf)?;
        }
        Ok(())
    }
    /// Write a page.
    fn write_page(&self, file: FileId, page: PageId, data: &Page) -> Result<()>;
    /// Flush everything to stable storage.
    fn sync(&self) -> Result<()>;
    /// All existing file ids (for recovery / catalog bootstrap).
    fn files(&self) -> Vec<FileId>;
    /// Retry counters, when some layer of this disk stack is a
    /// [`RetryDisk`]. Wrappers forward to their inner disk; plain devices
    /// keep the default `None`. The storage manager uses this to surface
    /// `io_retries`/`io_gave_up` in `SHOW METRICS` without knowing how
    /// the harness composed its wrappers.
    fn retry_stats(&self) -> Option<std::sync::Arc<RetryStats>> {
        None
    }
}

/// In-memory disk. The default substrate for tests and benches.
pub struct MemDisk {
    state: Mutex<HashMap<FileId, Vec<Page>>>,
    next_file: AtomicU64,
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl MemDisk {
    pub fn new() -> Self {
        MemDisk {
            state: Mutex::new(HashMap::new()),
            next_file: AtomicU64::new(1),
        }
    }
}

impl Disk for MemDisk {
    fn create_file(&self) -> Result<FileId> {
        let id = FileId(self.next_file.fetch_add(1, Ordering::Relaxed) as u32);
        self.state.lock().insert(id, Vec::new());
        Ok(id)
    }

    fn drop_file(&self, file: FileId) -> Result<()> {
        self.state
            .lock()
            .remove(&file)
            .map(|_| ())
            .ok_or(StorageError::UnknownFile(file))
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.state
            .lock()
            .get(&file)
            .map(|v| v.len() as u32)
            .ok_or(StorageError::UnknownFile(file))
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let mut st = self.state.lock();
        let pages = st.get_mut(&file).ok_or(StorageError::UnknownFile(file))?;
        pages.push(Page::new());
        Ok(PageId(pages.len() as u32 - 1))
    }

    fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> Result<()> {
        let st = self.state.lock();
        let pages = st.get(&file).ok_or(StorageError::UnknownFile(file))?;
        let p = pages
            .get(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                file,
                page,
                pages: pages.len() as u32,
            })?;
        buf.data.copy_from_slice(&p.data[..]);
        Ok(())
    }

    fn read_pages(&self, file: FileId, start: PageId, bufs: &mut [Page]) -> Result<()> {
        // One lock acquisition for the whole batch.
        let st = self.state.lock();
        let pages = st.get(&file).ok_or(StorageError::UnknownFile(file))?;
        for (i, buf) in bufs.iter_mut().enumerate() {
            let pid = PageId(start.0 + i as u32);
            let p = pages
                .get(pid.0 as usize)
                .ok_or(StorageError::PageOutOfRange {
                    file,
                    page: pid,
                    pages: pages.len() as u32,
                })?;
            buf.data.copy_from_slice(&p.data[..]);
        }
        Ok(())
    }

    fn write_page(&self, file: FileId, page: PageId, data: &Page) -> Result<()> {
        let mut st = self.state.lock();
        let pages = st.get_mut(&file).ok_or(StorageError::UnknownFile(file))?;
        let n = pages.len() as u32;
        let p = pages
            .get_mut(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                file,
                page,
                pages: n,
            })?;
        p.data.copy_from_slice(&data.data[..]);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn files(&self) -> Vec<FileId> {
        let mut v: Vec<_> = self.state.lock().keys().copied().collect();
        v.sort();
        v
    }
}

/// File-backed disk: `<dir>/f<NNN>.mood`, one OS file per storage file.
pub struct FileDisk {
    dir: PathBuf,
    handles: Mutex<HashMap<FileId, File>>,
    next_file: AtomicU64,
}

impl FileDisk {
    /// Open (or create) a disk rooted at `dir`, discovering existing files.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut handles = HashMap::new();
        let mut max_id = 0u32;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(id) = name.strip_prefix('f').and_then(|s| s.strip_suffix(".mood")) {
                if let Ok(id) = id.parse::<u32>() {
                    let file = OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(entry.path())?;
                    handles.insert(FileId(id), file);
                    max_id = max_id.max(id);
                }
            }
        }
        Ok(FileDisk {
            dir,
            handles: Mutex::new(handles),
            next_file: AtomicU64::new(max_id as u64 + 1),
        })
    }

    fn path(&self, id: FileId) -> PathBuf {
        self.dir.join(format!("f{}.mood", id.0))
    }
}

impl Disk for FileDisk {
    fn create_file(&self) -> Result<FileId> {
        let id = FileId(self.next_file.fetch_add(1, Ordering::Relaxed) as u32);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.path(id))?;
        self.handles.lock().insert(id, file);
        Ok(id)
    }

    fn drop_file(&self, file: FileId) -> Result<()> {
        let removed = self.handles.lock().remove(&file);
        if removed.is_none() {
            return Err(StorageError::UnknownFile(file));
        }
        std::fs::remove_file(self.path(file))?;
        Ok(())
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        let handles = self.handles.lock();
        let f = handles.get(&file).ok_or(StorageError::UnknownFile(file))?;
        Ok((f.metadata()?.len() / PAGE_SIZE as u64) as u32)
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let mut handles = self.handles.lock();
        let f = handles
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        let len = f.metadata()?.len();
        f.seek(SeekFrom::Start(len))?;
        f.write_all(&[0u8; PAGE_SIZE])?;
        Ok(PageId((len / PAGE_SIZE as u64) as u32))
    }

    fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> Result<()> {
        let mut handles = self.handles.lock();
        let f = handles
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        let pages = (f.metadata()?.len() / PAGE_SIZE as u64) as u32;
        if page.0 >= pages {
            return Err(StorageError::PageOutOfRange { file, page, pages });
        }
        f.seek(SeekFrom::Start(page.0 as u64 * PAGE_SIZE as u64))?;
        f.read_exact(&mut buf.data[..])?;
        Ok(())
    }

    fn read_pages(&self, file: FileId, start: PageId, bufs: &mut [Page]) -> Result<()> {
        if bufs.is_empty() {
            return Ok(());
        }
        let mut handles = self.handles.lock();
        let f = handles
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        let pages = (f.metadata()?.len() / PAGE_SIZE as u64) as u32;
        let last = start.0 as u64 + bufs.len() as u64 - 1;
        if last >= pages as u64 {
            return Err(StorageError::PageOutOfRange {
                file,
                page: PageId(last as u32),
                pages,
            });
        }
        // One seek, one contiguous read of the whole batch.
        let mut raw = vec![0u8; bufs.len() * PAGE_SIZE];
        f.seek(SeekFrom::Start(start.0 as u64 * PAGE_SIZE as u64))?;
        f.read_exact(&mut raw)?;
        for (i, buf) in bufs.iter_mut().enumerate() {
            buf.data
                .copy_from_slice(&raw[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
        }
        Ok(())
    }

    fn write_page(&self, file: FileId, page: PageId, data: &Page) -> Result<()> {
        let mut handles = self.handles.lock();
        let f = handles
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        let pages = (f.metadata()?.len() / PAGE_SIZE as u64) as u32;
        if page.0 >= pages {
            return Err(StorageError::PageOutOfRange { file, page, pages });
        }
        f.seek(SeekFrom::Start(page.0 as u64 * PAGE_SIZE as u64))?;
        f.write_all(&data.data[..])?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        for f in self.handles.lock().values() {
            f.sync_all()?;
        }
        Ok(())
    }

    fn files(&self) -> Vec<FileId> {
        let mut v: Vec<_> = self.handles.lock().keys().copied().collect();
        v.sort();
        v
    }
}

/// Wrapper that fails reads/writes after a programmable countdown — used by
/// failure-injection tests to exercise kernel error paths.
pub struct FaultyDisk<D: Disk> {
    inner: D,
    plan: std::sync::Arc<crate::fault::FaultPlan>,
}

impl<D: Disk> FaultyDisk<D> {
    /// The legacy fuse: `ops_before_failure` operations succeed, then
    /// every subsequent I/O fails (equivalent to
    /// [`FaultPlan::fail_after`](crate::fault::FaultPlan::fail_after)).
    pub fn new(inner: D, ops_before_failure: u64) -> Self {
        Self::with_plan(inner, crate::fault::FaultPlan::fail_after(ops_before_failure))
    }

    /// Wrap `inner` with a scripted/seeded [`FaultPlan`]
    /// (fail-at-op-k, torn writes, seeded probability — see the `fault`
    /// module).
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    pub fn with_plan(inner: D, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Self {
        FaultyDisk { inner, plan }
    }

    /// Disarm the plan (e.g. to let recovery succeed after a failure test).
    pub fn heal(&self) {
        self.plan.heal();
    }

    /// The shared plan (so a harness can inspect `ops()`/`fired_at()`).
    pub fn plan(&self) -> &std::sync::Arc<crate::fault::FaultPlan> {
        &self.plan
    }

    fn tick(&self) -> Result<()> {
        match self.plan.next() {
            // Bit flips only corrupt page writes; other ops pass clean.
            crate::fault::Fault::None | crate::fault::Fault::BitFlip => Ok(()),
            _ => Err(StorageError::Io("injected fault".into())),
        }
    }
}

impl<D: Disk> Disk for FaultyDisk<D> {
    fn create_file(&self) -> Result<FileId> {
        self.tick()?;
        self.inner.create_file()
    }
    fn drop_file(&self, file: FileId) -> Result<()> {
        self.tick()?;
        self.inner.drop_file(file)
    }
    fn page_count(&self, file: FileId) -> Result<u32> {
        self.inner.page_count(file)
    }
    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        self.tick()?;
        self.inner.allocate_page(file)
    }
    fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> Result<()> {
        self.tick()?;
        self.inner.read_page(file, page, buf)
    }
    fn write_page(&self, file: FileId, page: PageId, data: &Page) -> Result<()> {
        match self.plan.next() {
            crate::fault::Fault::None => self.inner.write_page(file, page, data),
            crate::fault::Fault::Fail => Err(StorageError::Io("injected fault".into())),
            crate::fault::Fault::Torn => {
                // Persist the first half of the new image over the old
                // page — the classic torn page — then report failure.
                let mut torn = Page::new();
                if self.inner.read_page(file, page, &mut torn).is_ok() {
                    torn.data[..PAGE_SIZE / 2].copy_from_slice(&data.data[..PAGE_SIZE / 2]);
                    let _ = self.inner.write_page(file, page, &torn);
                }
                Err(StorageError::Io("injected torn page write".into()))
            }
            crate::fault::Fault::BitFlip => {
                // Silent corruption: one seeded byte flips on the way to
                // the medium and the write still reports success. Only a
                // later checksum verification can tell.
                let (off, mask) = self.plan.corrupt_byte();
                let mut flipped = data.clone();
                flipped.data[off] ^= mask;
                self.inner.write_page(file, page, &flipped)
            }
        }
    }
    fn sync(&self) -> Result<()> {
        self.tick()?;
        self.inner.sync()
    }
    fn files(&self) -> Vec<FileId> {
        self.inner.files()
    }
    fn retry_stats(&self) -> Option<std::sync::Arc<RetryStats>> {
        self.inner.retry_stats()
    }
}

/// Lifetime counters for a [`RetryDisk`].
///
/// Counter discipline: `io_retries` counts individual retry *attempts*;
/// `io_gave_up` counts operations that exhausted the whole backoff
/// schedule and surfaced their error. Every give-up is preceded by a full
/// schedule of retries, so with a non-empty schedule
/// `io_gave_up ≤ io_retries` always holds (equality only when every
/// retried operation failed terminally with a one-entry schedule).
#[derive(Debug, Default)]
pub struct RetryStats {
    pub io_retries: AtomicU64,
    pub io_gave_up: AtomicU64,
}

impl RetryStats {
    pub fn retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }
    pub fn gave_up(&self) -> u64 {
        self.io_gave_up.load(Ordering::Relaxed)
    }
}

/// Default backoff schedule: bounded exponential, in milliseconds.
const DEFAULT_BACKOFF_MS: &[u64] = &[1, 2, 4, 8];

/// A [`Disk`] wrapper that retries transient page read/write faults with
/// a bounded backoff schedule, composable with [`FaultyDisk`] (wrap the
/// faulty disk so injected hiccups get ridden out).
///
/// Only `Io` errors are retried — they are the shape transient device
/// trouble takes. Deterministic failures (`PageOutOfRange`,
/// `UnknownFile`) surface immediately, and `sync` is deliberately *not*
/// retried: after a failed fsync the kernel may already have dropped the
/// dirty pages, so re-issuing it can report durability that never
/// happened. The sleep function is injected so tests can pin the whole
/// schedule without touching the wall clock.
pub struct RetryDisk<D: Disk> {
    inner: D,
    /// Delay handed to `sleep` before retry *i*; its length bounds the
    /// number of retries per operation.
    backoff: Vec<u64>,
    sleep: Box<dyn Fn(u64) + Send + Sync>,
    stats: std::sync::Arc<RetryStats>,
}

impl<D: Disk> RetryDisk<D> {
    /// Production wrapper: the default exponential schedule, really
    /// sleeping between attempts.
    pub fn new(inner: D) -> Self {
        Self::with_backoff(
            inner,
            DEFAULT_BACKOFF_MS.to_vec(),
            Box::new(|ms| std::thread::sleep(std::time::Duration::from_millis(ms))),
        )
    }

    /// Test wrapper: an explicit schedule and an injected sleep (pass a
    /// recording closure to assert the delays without waiting for them).
    pub fn with_backoff(
        inner: D,
        backoff: Vec<u64>,
        sleep: Box<dyn Fn(u64) + Send + Sync>,
    ) -> Self {
        RetryDisk {
            inner,
            backoff,
            sleep,
            stats: std::sync::Arc::new(RetryStats::default()),
        }
    }

    /// The shared counters (also reachable via [`Disk::retry_stats`]).
    pub fn stats(&self) -> std::sync::Arc<RetryStats> {
        self.stats.clone()
    }

    fn with_retry<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempt = 0usize;
        loop {
            match op() {
                Err(StorageError::Io(_)) if attempt < self.backoff.len() => {
                    (self.sleep)(self.backoff[attempt]);
                    attempt += 1;
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(err @ StorageError::Io(_)) => {
                    self.stats.io_gave_up.fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
                other => return other,
            }
        }
    }
}

impl<D: Disk> Disk for RetryDisk<D> {
    fn create_file(&self) -> Result<FileId> {
        self.inner.create_file()
    }
    fn drop_file(&self, file: FileId) -> Result<()> {
        self.inner.drop_file(file)
    }
    fn page_count(&self, file: FileId) -> Result<u32> {
        self.inner.page_count(file)
    }
    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        self.inner.allocate_page(file)
    }
    fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> Result<()> {
        self.with_retry(|| self.inner.read_page(file, page, buf))
    }
    fn read_pages(&self, file: FileId, start: PageId, bufs: &mut [Page]) -> Result<()> {
        self.with_retry(|| self.inner.read_pages(file, start, bufs))
    }
    fn write_page(&self, file: FileId, page: PageId, data: &Page) -> Result<()> {
        self.with_retry(|| self.inner.write_page(file, page, data))
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
    fn files(&self) -> Vec<FileId> {
        self.inner.files()
    }
    fn retry_stats(&self) -> Option<std::sync::Arc<RetryStats>> {
        Some(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let f = disk.create_file().unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 0);
        let p0 = disk.allocate_page(f).unwrap();
        let p1 = disk.allocate_page(f).unwrap();
        assert_eq!((p0, p1), (PageId(0), PageId(1)));
        let mut page = Page::new();
        page.data[0] = 0xAA;
        page.data[PAGE_SIZE - 1] = 0xBB;
        disk.write_page(f, p1, &page).unwrap();
        let mut back = Page::new();
        disk.read_page(f, p1, &mut back).unwrap();
        assert_eq!(back.data[0], 0xAA);
        assert_eq!(back.data[PAGE_SIZE - 1], 0xBB);
        // p0 still zeroed.
        disk.read_page(f, p0, &mut back).unwrap();
        assert_eq!(back.data[0], 0);
        // Out-of-range read errors.
        assert!(matches!(
            disk.read_page(f, PageId(99), &mut back),
            Err(StorageError::PageOutOfRange { .. })
        ));
        disk.drop_file(f).unwrap();
        assert!(matches!(
            disk.page_count(f),
            Err(StorageError::UnknownFile(_))
        ));
    }

    #[test]
    fn memdisk_basics() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn filedisk_basics() {
        let dir = std::env::temp_dir().join(format!("mood-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FileDisk::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filedisk_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("mood-disk-r-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f;
        {
            let disk = FileDisk::open(&dir).unwrap();
            f = disk.create_file().unwrap();
            let p = disk.allocate_page(f).unwrap();
            let mut page = Page::new();
            page.data[7] = 77;
            disk.write_page(f, p, &page).unwrap();
            disk.sync().unwrap();
        }
        {
            let disk = FileDisk::open(&dir).unwrap();
            assert_eq!(disk.files(), vec![f]);
            let mut page = Page::new();
            disk.read_page(f, PageId(0), &mut page).unwrap();
            assert_eq!(page.data[7], 77);
            // New file ids don't collide with recovered ones.
            let f2 = disk.create_file().unwrap();
            assert!(f2 > f);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_disk_rides_out_transient_faults() {
        use crate::fault::FaultPlan;
        let inner = MemDisk::new();
        let f = inner.create_file().unwrap();
        inner.allocate_page(f).unwrap();
        let mut page = Page::new();
        page.data[0] = 0x11;
        // Transient plan: the next 2 ops fail, then the device heals.
        let faulty = FaultyDisk::with_plan(inner, FaultPlan::fail_n_then_heal(2));
        let delays = std::sync::Arc::new(Mutex::new(Vec::new()));
        let rec = delays.clone();
        let disk = RetryDisk::with_backoff(
            faulty,
            vec![1, 2, 4],
            Box::new(move |ms| rec.lock().push(ms)),
        );
        let stats = disk.retry_stats().unwrap();
        disk.write_page(f, PageId(0), &page).unwrap();
        let mut back = Page::new();
        disk.read_page(f, PageId(0), &mut back).unwrap();
        assert_eq!(back.data[0], 0x11, "write landed after the hiccup");
        assert_eq!(stats.retries(), 2, "two transient failures retried");
        assert_eq!(stats.gave_up(), 0);
        assert_eq!(*delays.lock(), vec![1, 2], "backoff schedule honoured");
    }

    #[test]
    fn retry_disk_gives_up_on_persistent_faults() {
        let inner = MemDisk::new();
        let f = inner.create_file().unwrap();
        inner.allocate_page(f).unwrap();
        // Latching plan: dead until heal, which never comes.
        let faulty = FaultyDisk::with_plan(inner, crate::fault::FaultPlan::fail_after(0));
        let disk = RetryDisk::with_backoff(faulty, vec![1, 2], Box::new(|_| {}));
        let stats = disk.stats();
        let page = Page::new();
        assert!(matches!(
            disk.write_page(f, PageId(0), &page),
            Err(StorageError::Io(_))
        ));
        assert_eq!(stats.retries(), 2, "full schedule consumed");
        assert_eq!(stats.gave_up(), 1);
        assert!(
            stats.gave_up() <= stats.retries(),
            "documented counter invariant"
        );
        // Deterministic errors are not retried.
        let mut buf = Page::new();
        let before = stats.retries();
        // The faulty plan is latched, but PageOutOfRange is checked by
        // MemDisk only after the injected Io error — so heal first.
        disk.inner.heal();
        assert!(matches!(
            disk.read_page(f, PageId(99), &mut buf),
            Err(StorageError::PageOutOfRange { .. })
        ));
        assert_eq!(stats.retries(), before, "no retry for deterministic errors");
    }

    #[test]
    fn faulty_disk_bit_flip_is_silent_and_seeded() {
        use crate::fault::FaultPlan;
        let make = |seed| {
            let inner = MemDisk::new();
            let f = inner.create_file().unwrap();
            inner.allocate_page(f).unwrap();
            // Op 1 is the write (page_count/files don't tick).
            let disk = FaultyDisk::with_plan(inner, FaultPlan::bit_flip_at(1, seed));
            let mut page = Page::new();
            page.data.fill(0x55);
            page.stamp_checksum();
            disk.write_page(f, PageId(0), &page).unwrap(); // silent!
            let mut back = Page::new();
            disk.read_page(f, PageId(0), &mut back).unwrap();
            (page, back)
        };
        let (orig, corrupted) = make(1234);
        assert_ne!(
            orig.data[..],
            corrupted.data[..],
            "exactly one byte differs"
        );
        let diffs: Vec<_> = (0..PAGE_SIZE)
            .filter(|&i| orig.data[i] != corrupted.data[i])
            .collect();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0] < crate::page::PAGE_USABLE, "flip stays detectable");
        assert!(corrupted.verify_checksum().is_err(), "checksum catches it");
        let (_, again) = make(1234);
        assert_eq!(corrupted.data[..], again.data[..], "seeded → reproducible");
    }

    #[test]
    fn faulty_disk_fails_after_fuse() {
        let disk = FaultyDisk::new(MemDisk::new(), 3);
        let f = disk.create_file().unwrap(); // op 1
        disk.allocate_page(f).unwrap(); // op 2
        let mut page = Page::new();
        disk.read_page(f, PageId(0), &mut page).unwrap(); // op 3
        assert!(matches!(
            disk.read_page(f, PageId(0), &mut page),
            Err(StorageError::Io(_))
        ));
        disk.heal();
        disk.read_page(f, PageId(0), &mut page).unwrap();
    }
}
