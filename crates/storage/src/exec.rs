//! Execution configuration and the chunked worker pool the collection
//! operators run on.
//!
//! The pool is deliberately small: scoped threads over contiguous input
//! chunks, results concatenated in chunk order. Chunk-then-concat is what
//! makes parallel operators *byte-identical* to their sequential versions —
//! every element keeps its input position, so a parallel Select/Project/Join
//! emission differs from the sequential loop only in wall-clock time, never
//! in output. Errors are deterministic too: the error surfaced is the one
//! from the lowest-indexed failing chunk, i.e. the same error a sequential
//! left-to-right scan would have hit first.

/// Knob threaded from `Mood`/`Session` through the optimizer's config down
/// into the algebra operators. `parallelism = 1` (the default) is the pure
/// sequential path; higher values split operator inputs into that many
/// contiguous chunks executed on scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    pub parallelism: usize,
}

impl ExecutionConfig {
    /// A config with the given worker count (clamped to at least 1).
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecutionConfig {
            parallelism: parallelism.max(1),
        }
    }

    pub fn is_parallel(&self) -> bool {
        self.parallelism > 1
    }
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig { parallelism: 1 }
    }
}

/// Split `len` items into at most `parts` contiguous chunks of near-equal
/// size (first `len % parts` chunks get one extra element). Empty ranges are
/// not produced.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Run `f` over contiguous chunks of `items` on up to `parallelism` scoped
/// threads and concatenate the per-chunk outputs in chunk order.
///
/// `f` receives `(chunk_index, chunk)` so workers can label metrics or seed
/// per-chunk state. With `parallelism <= 1` (or a single-element input) `f`
/// runs inline on the caller's thread — no spawn cost, identical semantics.
pub fn run_chunked<T, R, E, F>(
    parallelism: usize,
    items: &[T],
    f: F,
) -> std::result::Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &[T]) -> std::result::Result<Vec<R>, E> + Sync,
{
    let ranges = chunk_ranges(items.len(), parallelism);
    if ranges.len() <= 1 {
        return f(0, items);
    }
    let chunk_results: Vec<std::result::Result<Vec<R>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let f = &f;
                scope.spawn(move || f(i, &items[r]))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_input_contiguously() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 4, 8] {
                let ranges = chunk_ranges(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} parts={parts}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn chunked_run_preserves_order() {
        let items: Vec<u32> = (0..103).collect();
        for par in [1usize, 2, 4, 8] {
            let doubled = run_chunked(par, &items, |_, chunk| {
                Ok::<_, ()>(chunk.iter().map(|x| x * 2).collect())
            })
            .unwrap();
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn first_chunk_error_wins() {
        let items: Vec<u32> = (0..100).collect();
        let err = run_chunked(4, &items, |_, chunk| {
            // Every chunk fails, reporting its first element; the error
            // surfaced must be the one from the earliest input position.
            Err::<Vec<u32>, u32>(chunk[0])
        })
        .unwrap_err();
        assert_eq!(err, 0);
    }

    #[test]
    fn sequential_fallback_runs_inline() {
        let tid = std::thread::current().id();
        let items = [1, 2, 3];
        let seen = run_chunked(1, &items, |_, chunk| {
            assert_eq!(std::thread::current().id(), tid);
            Ok::<_, ()>(chunk.to_vec())
        })
        .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
