//! Static hash index with overflow chaining.
//!
//! ESM provided hash indexing for equality selections alongside B+-trees
//! (the paper's `IndSel` lists both). Buckets are fixed at creation; each
//! bucket is a chain of pages holding (key, oid) entries. Equality probes
//! cost `O(chain length)` index-page reads, which the benches contrast with
//! B+-tree descent costs.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::metrics::AccessKind;
use crate::oid::{FileId, Oid, PageId};
use crate::page::{Page, PAGE_USABLE};

const NO_PAGE: u32 = u32::MAX;
/// Page header: next-overflow pointer (4) + entry count (2) + used bytes (2).
const HEADER: usize = 8;

/// FNV-1a — stable across runs, good enough for bucket spreading.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A static hash index over byte-encoded keys.
///
/// Writers serialize on an internal mutex (chained overflow allocation is
/// a multi-page operation); readers are safe concurrently.
pub struct HashIndex {
    file: FileId,
    pool: Arc<BufferPool>,
    buckets: u32,
    write_lock: parking_lot::Mutex<()>,
}

struct PageView;

impl PageView {
    fn next(p: &Page) -> Option<PageId> {
        let raw = u32::from_le_bytes(p.data[0..4].try_into().unwrap());
        if raw == NO_PAGE {
            None
        } else {
            Some(PageId(raw))
        }
    }

    fn set_next(p: &mut Page, next: Option<PageId>) {
        p.data[0..4].copy_from_slice(&next.map(|x| x.0).unwrap_or(NO_PAGE).to_le_bytes());
    }

    fn count(p: &Page) -> u16 {
        u16::from_le_bytes([p.data[4], p.data[5]])
    }

    fn used(p: &Page) -> usize {
        u16::from_le_bytes([p.data[6], p.data[7]]) as usize
    }

    fn init(p: &mut Page) {
        p.data.fill(0);
        Self::set_next(p, None);
        p.data[6..8].copy_from_slice(&(HEADER as u16).to_le_bytes());
    }

    /// Entries as (key, oid) pairs.
    fn entries(p: &Page) -> Result<Vec<(Vec<u8>, Oid)>> {
        let mut out = Vec::with_capacity(Self::count(p) as usize);
        let mut off = HEADER;
        for _ in 0..Self::count(p) {
            let klen = u16::from_le_bytes([p.data[off], p.data[off + 1]]) as usize;
            off += 2;
            let key = p.data[off..off + klen].to_vec();
            off += klen;
            let oid = Oid::from_bytes(&p.data[off..off + Oid::ENCODED_LEN])
                .ok_or(StorageError::Corrupt("bad OID in hash bucket".into()))?;
            off += Oid::ENCODED_LEN;
            out.push((key, oid));
        }
        Ok(out)
    }

    fn try_append(p: &mut Page, key: &[u8], oid: Oid) -> bool {
        let need = 2 + key.len() + Oid::ENCODED_LEN;
        let used = Self::used(p);
        if used + need > PAGE_USABLE {
            return false;
        }
        let mut off = used;
        p.data[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        off += 2;
        p.data[off..off + key.len()].copy_from_slice(key);
        off += key.len();
        p.data[off..off + Oid::ENCODED_LEN].copy_from_slice(&oid.to_bytes());
        off += Oid::ENCODED_LEN;
        let count = Self::count(p) + 1;
        p.data[4..6].copy_from_slice(&count.to_le_bytes());
        p.data[6..8].copy_from_slice(&(off as u16).to_le_bytes());
        true
    }

    fn rewrite(p: &mut Page, entries: &[(Vec<u8>, Oid)]) {
        let next = Self::next(p);
        Self::init(p);
        Self::set_next(p, next);
        for (k, o) in entries {
            let ok = Self::try_append(p, k, *o);
            debug_assert!(ok, "rewrite must fit: entries came from this page");
        }
    }
}

impl HashIndex {
    /// Create an index with `buckets` primary buckets (pages 0..buckets).
    pub fn create(pool: Arc<BufferPool>, buckets: u32) -> Result<HashIndex> {
        assert!(buckets >= 1);
        let file = pool.disk().create_file()?;
        for _ in 0..buckets {
            let pid = pool.disk().allocate_page(file)?;
            pool.with_page_mut(file, pid, AccessKind::Index, PageView::init)?;
        }
        Ok(HashIndex {
            file,
            pool,
            buckets,
            write_lock: parking_lot::Mutex::new(()),
        })
    }

    /// Re-open an index created with the same bucket count.
    pub fn open(pool: Arc<BufferPool>, file: FileId, buckets: u32) -> HashIndex {
        HashIndex {
            file,
            pool,
            buckets,
            write_lock: parking_lot::Mutex::new(()),
        }
    }

    pub fn file_id(&self) -> FileId {
        self.file
    }

    pub fn buckets(&self) -> u32 {
        self.buckets
    }

    fn bucket_of(&self, key: &[u8]) -> PageId {
        PageId((fnv1a(key) % self.buckets as u64) as u32)
    }

    /// Insert a (key, oid) pair. Duplicate pairs are allowed (the caller —
    /// the catalog's index maintenance — deduplicates where required).
    pub fn insert(&self, key: &[u8], oid: Oid) -> Result<()> {
        let _guard = self.write_lock.lock();
        let max_entry = PAGE_USABLE - HEADER;
        if 2 + key.len() + Oid::ENCODED_LEN > max_entry {
            return Err(StorageError::RecordTooLarge {
                size: key.len(),
                max: max_entry,
            });
        }
        let mut pid = self.bucket_of(key);
        loop {
            let (placed, next) =
                self.pool
                    .with_page_mut(self.file, pid, AccessKind::Index, |p| {
                        (PageView::try_append(p, key, oid), PageView::next(p))
                    })?;
            if placed {
                return Ok(());
            }
            match next {
                Some(n) => pid = n,
                None => {
                    // Chain a fresh overflow page and link it.
                    let new_pid = self.pool.disk().allocate_page(self.file)?;
                    self.pool
                        .with_page_mut(self.file, new_pid, AccessKind::Index, |p| {
                            PageView::init(p);
                            let ok = PageView::try_append(p, key, oid);
                            debug_assert!(ok);
                        })?;
                    self.pool
                        .with_page_mut(self.file, pid, AccessKind::Index, |p| {
                            PageView::set_next(p, Some(new_pid))
                        })?;
                    return Ok(());
                }
            }
        }
    }

    /// All OIDs under `key`, in insertion order along the chain.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<Oid>> {
        let mut out = Vec::new();
        let mut pid = Some(self.bucket_of(key));
        while let Some(p) = pid {
            let (entries, next) = self.pool.with_page(self.file, p, AccessKind::Index, |pg| {
                (PageView::entries(pg), PageView::next(pg))
            })?;
            for (k, oid) in entries.map_err(|e| e.locate(self.file, p))? {
                if k == key {
                    out.push(oid);
                }
            }
            pid = next;
        }
        Ok(out)
    }

    /// Remove every (key, oid) occurrence. Returns how many were removed.
    pub fn delete(&self, key: &[u8], oid: Oid) -> Result<usize> {
        let _guard = self.write_lock.lock();
        let mut removed = 0;
        let mut pid = Some(self.bucket_of(key));
        while let Some(p) = pid {
            let next = self
                .pool
                .with_page_mut(self.file, p, AccessKind::Index, |pg| {
                    let entries = PageView::entries(pg)?;
                    let kept: Vec<_> = entries
                        .iter()
                        .filter(|(k, o)| !(k.as_slice() == key && *o == oid))
                        .cloned()
                        .collect();
                    removed += entries.len() - kept.len();
                    if kept.len() != entries.len() {
                        PageView::rewrite(pg, &kept);
                    }
                    Ok::<_, StorageError>(PageView::next(pg))
                })?
                .map_err(|e| e.locate(self.file, p))?;
            pid = next;
        }
        Ok(removed)
    }

    /// Average chain length in pages (for diagnostics and the cost model).
    pub fn avg_chain_pages(&self) -> Result<f64> {
        let total = self.pool.disk().page_count(self.file)?;
        Ok(total as f64 / self.buckets as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::metrics::DiskMetrics;
    use crate::oid::SlotId;

    fn index(buckets: u32) -> HashIndex {
        let disk = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, 128, DiskMetrics::new()));
        HashIndex::create(pool, buckets).unwrap()
    }

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(3), PageId(n), SlotId(0), 1)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let h = index(8);
        h.insert(b"alpha", oid(1)).unwrap();
        h.insert(b"beta", oid(2)).unwrap();
        assert_eq!(h.lookup(b"alpha").unwrap(), vec![oid(1)]);
        assert_eq!(h.lookup(b"beta").unwrap(), vec![oid(2)]);
        assert!(h.lookup(b"gamma").unwrap().is_empty());
    }

    #[test]
    fn duplicates_accumulate() {
        let h = index(4);
        for i in 0..5 {
            h.insert(b"dup", oid(i)).unwrap();
        }
        assert_eq!(h.lookup(b"dup").unwrap().len(), 5);
    }

    #[test]
    fn overflow_chains_grow_and_still_resolve() {
        let h = index(1); // everything in one bucket → forced chaining
        for i in 0..2000u32 {
            h.insert(format!("key-{i}").as_bytes(), oid(i)).unwrap();
        }
        assert!(h.avg_chain_pages().unwrap() > 2.0, "one bucket must chain");
        for i in (0..2000).step_by(113) {
            assert_eq!(
                h.lookup(format!("key-{i}").as_bytes()).unwrap(),
                vec![oid(i)]
            );
        }
    }

    #[test]
    fn delete_removes_all_occurrences() {
        let h = index(4);
        h.insert(b"k", oid(1)).unwrap();
        h.insert(b"k", oid(2)).unwrap();
        h.insert(b"k", oid(1)).unwrap();
        assert_eq!(h.delete(b"k", oid(1)).unwrap(), 2);
        assert_eq!(h.lookup(b"k").unwrap(), vec![oid(2)]);
        assert_eq!(h.delete(b"k", oid(99)).unwrap(), 0);
    }

    #[test]
    fn keys_spread_across_buckets() {
        let h = index(64);
        for i in 0..640u32 {
            h.insert(format!("spread-{i}").as_bytes(), oid(i)).unwrap();
        }
        // With 640 keys over 64 buckets and ~100 entries per page, no
        // overflow pages should be needed if spreading is healthy.
        assert!((h.avg_chain_pages().unwrap() - 1.0).abs() < 0.2);
    }

    #[test]
    fn probes_cost_index_reads() {
        let disk = Arc::new(MemDisk::new());
        let metrics = DiskMetrics::new();
        let pool = Arc::new(BufferPool::new(disk, 2, metrics.clone()));
        let h = HashIndex::create(pool, 16).unwrap();
        for i in 0..100u32 {
            h.insert(format!("k{i}").as_bytes(), oid(i)).unwrap();
        }
        metrics.reset();
        h.lookup(b"k50").unwrap();
        let snap = metrics.snapshot();
        assert!(snap.idx_pages >= 1);
        assert_eq!(snap.rnd_pages + snap.seq_pages, 0);
    }
}
