//! Per-node cardinality and page-cost estimates for an access plan.
//!
//! `EXPLAIN` and `EXPLAIN ANALYZE` annotate every plan node with the cost
//! model's predictions (estimated rows, selectivity, page accesses) so they
//! can be compared side by side with the executor's measured counts. The
//! walk order defines node identities shared with the instrumented
//! executor: nodes are numbered pre-order over `[temp1, temp2, …, root]`
//! (see [`Plan::subtree_size`]), so estimate `id` N and the executor's
//! actuals for node N describe the same operator.
//!
//! Page estimates are the §5/§6 model costs (seconds) converted to
//! random-page equivalents via `PhysicalParams::random_page()`; `BIND`
//! nodes report the extent's `nbpages` directly since a scan touches
//! exactly those pages.

use mood_catalog::DatabaseStats;
use mood_cost::{
    atomic_selectivity, fref, indcost, join_cost, o_overlap, rndcost, rngxcost, seqcost,
    IndexParams, JoinInputs, PathHop, PathPredicate, Theta,
};

use crate::optimizer::{OptimizerConfig, StatsView};
use crate::plan::{Plan, PlanSet};

/// The cost model's prediction for one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEstimate {
    /// Pre-order id over `[temps…, root]` (see module docs).
    pub id: usize,
    /// Short operator label (`BIND(Vehicle, v)`,
    /// `HASH_PARTITION(v.company = c.self)`…).
    pub label: String,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated selectivity of the node's predicate/condition, when it
    /// has one (SELECT, INDSEL, JOIN).
    pub selectivity: Option<f64>,
    /// Estimated page accesses charged to this node (random-page
    /// equivalents of the model cost; `nbpages` for extent scans).
    pub pages: f64,
    /// The raw model cost in seconds (0 for purely in-memory nodes).
    pub cost: f64,
}

/// Estimate every node of a [`PlanSet`] in the shared pre-order walk.
pub fn estimate_plan_set(
    set: &PlanSet,
    stats: &DatabaseStats,
    cfg: &OptimizerConfig,
) -> Vec<NodeEstimate> {
    let view = StatsView { stats };
    let mut est = Estimator {
        view,
        cfg,
        var_class: Vec::new(),
        temp_rows: Vec::new(),
        out: Vec::new(),
        next_id: 0,
    };
    for (_, plan) in &set.temps {
        est.collect_vars(plan);
    }
    est.collect_vars(&set.root);
    for (name, plan) in &set.temps {
        let rows = est.walk(plan);
        est.temp_rows.push((name.clone(), rows));
    }
    est.walk(&set.root);
    est.out
}

struct Estimator<'a> {
    view: StatsView<'a>,
    cfg: &'a OptimizerConfig,
    /// Range variable → class, from every BIND/INDSEL in the plan set.
    var_class: Vec<(String, String)>,
    /// Temp name → estimated output rows, filled as temps are walked.
    temp_rows: Vec<(String, f64)>,
    out: Vec<NodeEstimate>,
    next_id: usize,
}

impl Estimator<'_> {
    fn collect_vars(&mut self, plan: &Plan) {
        match plan {
            Plan::Bind { class, var } | Plan::IndSel { class, var, .. }
                if !self.var_class.iter().any(|(v, _)| v == var) =>
            {
                self.var_class.push((var.clone(), class.clone()));
            }
            _ => {}
        }
        for c in plan.children() {
            self.collect_vars(c);
        }
    }

    fn class_of(&self, var: &str) -> Option<&str> {
        self.var_class
            .iter()
            .find(|(v, _)| v == var)
            .map(|(_, c)| c.as_str())
    }

    /// Walk one subtree pre-order, pushing an estimate per node; returns
    /// the node's estimated output rows.
    fn walk(&mut self, plan: &Plan) -> f64 {
        let id = self.next_id;
        self.next_id += 1;
        // Reserve the slot so children append after their parent.
        self.out.push(NodeEstimate {
            id,
            label: String::new(),
            rows: 0.0,
            selectivity: None,
            pages: 0.0,
            cost: 0.0,
        });
        let (label, rows, selectivity, cost, pages) = match plan {
            Plan::Bind { class, var } => {
                let info = self.view.class_info(class);
                (
                    format!("BIND({class}, {var})"),
                    info.cardinality,
                    None,
                    seqcost(&self.cfg.params, info.nbpages),
                    info.nbpages,
                )
            }
            Plan::Temp { name } => {
                let rows = self
                    .temp_rows
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, r)| *r)
                    .unwrap_or(0.0);
                (name.clone(), rows, None, 0.0, 0.0)
            }
            Plan::IndSel {
                class,
                var,
                index_kind,
                predicate,
            } => {
                let info = self.view.class_info(class);
                let (sel, probe_cost) = self.indsel_estimate(class, index_kind, predicate);
                let rows = info.cardinality * sel;
                let fetch = rndcost(&self.cfg.params, rows);
                let cost = probe_cost + fetch;
                (
                    format!("INDSEL({class}, {var}, {index_kind})"),
                    rows,
                    Some(sel),
                    cost,
                    cost / self.cfg.params.random_page(),
                )
            }
            Plan::Select { input, predicate } => {
                let in_rows = self.walk(input);
                let sel = self.predicate_selectivity(predicate);
                (
                    format!("SELECT({predicate})"),
                    in_rows * sel,
                    Some(sel),
                    0.0,
                    0.0,
                )
            }
            Plan::Join {
                left,
                right,
                method,
                condition,
            } => {
                let left_rows = self.walk(left);
                let right_rows = self.walk(right);
                let (rows, js, cost) =
                    self.join_estimate(left, right, *method, condition, left_rows, right_rows);
                // Labelled by method, not `JOIN(…)`: estimate blocks are
                // appended to EXPLAIN output, whose conformance tests count
                // joins by the `JOIN(` token.
                (
                    format!("{}({condition})", method.plan_name()),
                    rows,
                    js,
                    cost,
                    cost / self.cfg.params.random_page(),
                )
            }
            Plan::Project { input, attributes } => {
                let rows = self.walk(input);
                (
                    format!("PROJECT([{}])", attributes.join(", ")),
                    rows,
                    None,
                    0.0,
                    0.0,
                )
            }
            Plan::Sort { input, attributes } => {
                let rows = self.walk(input);
                (
                    format!("SORT([{}])", attributes.join(", ")),
                    rows,
                    None,
                    0.0,
                    0.0,
                )
            }
            Plan::Partition {
                input, attributes, ..
            } => {
                let rows = self.walk(input);
                (
                    format!("PARTITION([{}])", attributes.join(", ")),
                    rows,
                    None,
                    0.0,
                    0.0,
                )
            }
            Plan::Union { inputs } => {
                let rows = inputs.iter().map(|i| self.walk(i)).sum();
                ("UNION".to_string(), rows, None, 0.0, 0.0)
            }
        };
        let slot = &mut self.out[id];
        slot.label = label;
        slot.rows = rows;
        slot.selectivity = selectivity;
        slot.cost = cost;
        slot.pages = pages;
        rows
    }

    /// Selectivity of a rendered predicate: conjuncts joined by ` AND `,
    /// each `var.attr θ const` (atomic) or `var.a1…am θ const` (path).
    /// Unparseable conjuncts (method calls, OtherSelInfo text) fall back to
    /// the optimizer's default ½.
    fn predicate_selectivity(&self, predicate: &str) -> f64 {
        predicate
            .split(" AND ")
            .map(|c| self.conjunct_selectivity(c))
            .product()
    }

    fn conjunct_selectivity(&self, conjunct: &str) -> f64 {
        let Some(p) = parse_conjunct(conjunct) else {
            return 0.5;
        };
        let Some(root_class) = self.class_of(&p.var).map(str::to_string) else {
            return 0.5;
        };
        self.path_pred_selectivity(&root_class, &p.path, p.theta, p.constant)
    }

    /// Selectivity of `C.a1…am θ c` from class `C` — atomic when m = 1,
    /// the paper's path selectivity otherwise.
    fn path_pred_selectivity(
        &self,
        root_class: &str,
        path: &[String],
        theta: Theta,
        constant: Option<f64>,
    ) -> f64 {
        let mut hops: Vec<PathHop> = Vec::new();
        let mut hitprb_last = 1.0;
        let mut cur = root_class.to_string();
        for attr in &path[..path.len() - 1] {
            match self.view.hop(&cur, attr) {
                Some((hop, target, hitprb)) => {
                    hops.push(hop);
                    hitprb_last = hitprb;
                    cur = target;
                }
                None => return 0.5,
            }
        }
        let terminal = path.last().expect("non-empty path");
        let dom = self.view.domain(&cur, terminal);
        let term_sel = atomic_selectivity(theta, constant, &dom);
        mood_cost::path_selectivity(&PathPredicate {
            hops,
            terminal_cardinality: self.view.class_info(&cur).cardinality,
            terminal_selectivity: term_sel,
            hitprb_last,
        })
    }

    /// Selectivity and probe cost (seconds) of an INDSEL node.
    fn indsel_estimate(&self, class: &str, index_kind: &str, predicate: &str) -> (f64, f64) {
        let mut sel = 1.0;
        let mut probe = 0.0;
        for conjunct in predicate.split(" AND ") {
            let Some(p) = parse_conjunct(conjunct) else {
                sel *= 0.5;
                continue;
            };
            let s = self.path_pred_selectivity(class, &p.path, p.theta, p.constant);
            sel *= s;
            let key = p.path.join(".");
            let ix = if index_kind == "PATH_INDEX" {
                self.view.stats.index(class, &key).map(IndexParams::from_stats)
            } else {
                self.view.index(class, &key)
            };
            if let Some(ix) = ix {
                probe += match p.theta {
                    Theta::Eq => indcost(&self.cfg.params, &ix, 1.0),
                    _ => rngxcost(&self.cfg.params, &ix, s),
                };
            }
        }
        (sel, probe)
    }

    /// Output rows, join selectivity, and model cost of a JOIN node.
    fn join_estimate(
        &self,
        left: &Plan,
        right: &Plan,
        method: mood_cost::JoinMethod,
        condition: &str,
        left_rows: f64,
        right_rows: f64,
    ) -> (f64, Option<f64>, f64) {
        // Condition shape: `x.attr = y.self`.
        let parsed = condition.split_once(" = ").and_then(|(lhs, _)| {
            let (var, attr) = lhs.split_once('.')?;
            let class = self.class_of(var)?;
            let (hop, target, hitprb) = self.view.hop(class, attr)?;
            Some((class.to_string(), attr.to_string(), hop, target, hitprb))
        });
        let Some((from_class, attr, hop, target, hitprb)) = parsed else {
            return (left_rows * right_rows, None, 0.0);
        };
        let c = self.view.class_info(&from_class);
        let d = self.view.class_info(&target);
        let d_frac = if d.cardinality > 0.0 {
            (right_rows / d.cardinality).clamp(0.0, 1.0)
        } else {
            1.0
        };
        // Fraction of left rows whose reference lands in the surviving
        // right set (the Algorithm 8.2 `js`), and output rows: each
        // surviving left row contributes its matching references.
        let js = o_overlap(
            hop.totref,
            fref(std::slice::from_ref(&hop), 1.0),
            right_rows * hitprb,
        );
        let rows = left_rows * (hop.fan * d_frac).max(js).min(hop.fan.max(1.0));
        let j = JoinInputs {
            k_c: left_rows,
            k_d: right_rows,
            c,
            d,
            fan: hop.fan,
            totref: hop.totref,
            index: self.view.index(&from_class, &attr),
            d_already_accessed: false,
            cpu_cost: self.cfg.cpu_cost,
            c_in_memory: !matches!(left, Plan::Bind { .. }),
            d_in_memory: matches!(right, Plan::Temp { .. }),
        };
        let cost = join_cost(&self.cfg.params, method, &j).unwrap_or(0.0);
        (rows, Some(js), cost)
    }
}

struct ParsedConjunct {
    var: String,
    path: Vec<String>,
    theta: Theta,
    constant: Option<f64>,
}

/// Parse one rendered conjunct `var.a1…am θ const`. Returns `None` for
/// anything else (method calls, BETWEEN, join residues).
fn parse_conjunct(conjunct: &str) -> Option<ParsedConjunct> {
    // Two-character operators first so `<=` does not parse as `<`.
    let (lhs, theta, rhs) = [" <= ", " >= ", " <> ", " = ", " < ", " > "]
        .iter()
        .find_map(|op| {
            let (l, r) = conjunct.split_once(op)?;
            Some((l.trim(), Theta::parse(op.trim())?, r.trim()))
        })?;
    let mut segs = lhs.split('.').map(str::to_string);
    let var = segs.next()?;
    let path: Vec<String> = segs.collect();
    if path.is_empty() || path.iter().any(|s| s.contains('(')) {
        return None;
    }
    let constant = if let Ok(n) = rhs.parse::<f64>() {
        Some(n)
    } else if rhs == "TRUE" {
        Some(1.0)
    } else if rhs == "FALSE" {
        Some(0.0)
    } else {
        None // strings: equality falls back to 1/dist inside atomic_selectivity
    };
    Some(ParsedConjunct {
        var,
        path,
        theta,
        constant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, Const, PredSpec, QuerySpec};

    fn cfg() -> OptimizerConfig {
        OptimizerConfig::paper()
    }

    fn example_8_2() -> QuerySpec {
        let mut q = QuerySpec::new("v", "Vehicle");
        q.projection = vec!["v".to_string()];
        q.terms = vec![vec![PredSpec::Path {
            path: vec!["drivetrain".into(), "engine".into(), "cylinders".into()],
            theta: Theta::Eq,
            constant: Const::Num(2.0),
            terminal_var: None,
        }]];
        q
    }

    #[test]
    fn ids_are_preorder_and_cover_every_node() {
        let stats = mood_catalog::DatabaseStats::paper_example();
        let out = optimize(&example_8_2(), &stats, &cfg());
        let set = &out.terms[0].plan;
        let est = estimate_plan_set(set, &stats, &cfg());
        let total: usize = set
            .temps
            .iter()
            .map(|(_, p)| p.subtree_size())
            .sum::<usize>()
            + set.root.subtree_size();
        assert_eq!(est.len(), total);
        for (i, e) in est.iter().enumerate() {
            assert_eq!(e.id, i, "pre-order ids are dense");
            assert!(!e.label.is_empty());
        }
    }

    #[test]
    fn bind_estimates_match_class_stats() {
        let stats = mood_catalog::DatabaseStats::paper_example();
        let out = optimize(&example_8_2(), &stats, &cfg());
        let est = estimate_plan_set(&out.terms[0].plan, &stats, &cfg());
        let bind = est
            .iter()
            .find(|e| e.label == "BIND(Vehicle, v)")
            .expect("vehicle bind estimated");
        assert_eq!(bind.rows, 20_000.0);
        assert_eq!(bind.pages, 2_000.0);
        assert!(bind.cost > 0.0);
    }

    #[test]
    fn select_applies_terminal_selectivity() {
        let stats = mood_catalog::DatabaseStats::paper_example();
        let out = optimize(&example_8_2(), &stats, &cfg());
        let est = estimate_plan_set(&out.terms[0].plan, &stats, &cfg());
        let sel = est
            .iter()
            .find(|e| e.label.starts_with("SELECT(e.cylinders"))
            .expect("engine select estimated");
        // 10000 engines × 1/16 = 625.
        assert!((sel.rows - 625.0).abs() < 1.0, "{}", sel.rows);
        assert!((sel.selectivity.unwrap() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn join_nodes_carry_cost_and_selectivity() {
        let stats = mood_catalog::DatabaseStats::paper_example();
        let out = optimize(&example_8_2(), &stats, &cfg());
        let est = estimate_plan_set(&out.terms[0].plan, &stats, &cfg());
        let methods = [
            "FORWARD_TRAVERSAL(",
            "BACKWARD_TRAVERSAL(",
            "BINARY_JOIN_INDEX(",
            "HASH_PARTITION(",
        ];
        let joins: Vec<_> = est
            .iter()
            .filter(|e| methods.iter().any(|m| e.label.starts_with(m)))
            .collect();
        assert_eq!(joins.len(), 2);
        for j in joins {
            assert!(j.pages > 0.0, "{}: join pages estimated", j.label);
            assert!(j.selectivity.is_some());
            assert!(j.rows > 0.0 && j.rows <= 20_000.0, "{}", j.rows);
        }
    }

    #[test]
    fn unparseable_conjuncts_fall_back_to_half() {
        assert!(parse_conjunct("v.lbweight() > 3000").is_none());
        assert!(parse_conjunct("plain text").is_none());
        let p = parse_conjunct("v.weight >= 1500").unwrap();
        assert_eq!(p.var, "v");
        assert_eq!(p.path, vec!["weight".to_string()]);
        assert_eq!(p.theta, Theta::Ge);
        assert_eq!(p.constant, Some(1500.0));
    }
}
