//! Access plans — algebra expression trees rendered in the paper's
//! `JOIN(BIND(...), SELECT(...), HASH_PARTITION, v.company = c.self)`
//! notation, so the reproduction's output can be compared character by
//! character with Examples 8.1 and 8.2.

use std::fmt;

use mood_cost::JoinMethod;

/// A (sub-)access plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// `BIND(Class, var)` — the class extent under a range variable.
    Bind { class: String, var: String },
    /// Reference to a previously generated subplan (`T1`, `T2`, …).
    Temp { name: String },
    /// `SELECT(input, predicate)`.
    Select { input: Box<Plan>, predicate: String },
    /// `INDSEL(Class, var, index, predicate)` — index-served selection.
    IndSel {
        class: String,
        var: String,
        index_kind: String,
        predicate: String,
    },
    /// `JOIN(left, right, METHOD, condition)`.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        method: JoinMethod,
        condition: String,
    },
    /// `PROJECT(input, attrs)`.
    Project {
        input: Box<Plan>,
        attributes: Vec<String>,
    },
    /// `SORT(input, attrs)` (ORDER BY).
    Sort {
        input: Box<Plan>,
        attributes: Vec<String>,
    },
    /// `PARTITION(input, attrs)` (GROUP BY), with optional HAVING filter.
    Partition {
        input: Box<Plan>,
        attributes: Vec<String>,
        having: Option<String>,
    },
    /// `UNION(plans…)` — combining AND-term subplans (Section 7).
    Union { inputs: Vec<Plan> },
}

impl Plan {
    pub fn bind(class: &str, var: &str) -> Plan {
        Plan::Bind {
            class: class.to_string(),
            var: var.to_string(),
        }
    }

    pub fn temp(name: &str) -> Plan {
        Plan::Temp {
            name: name.to_string(),
        }
    }

    pub fn select(input: Plan, predicate: impl Into<String>) -> Plan {
        Plan::Select {
            input: Box::new(input),
            predicate: predicate.into(),
        }
    }

    pub fn join(left: Plan, right: Plan, method: JoinMethod, condition: impl Into<String>) -> Plan {
        Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            method,
            condition: condition.into(),
        }
    }

    /// Child subplans in execution-relevant order (left before right).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Partition { input, .. } => vec![input],
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::Union { inputs } => inputs.iter().collect(),
            Plan::Bind { .. } | Plan::Temp { .. } | Plan::IndSel { .. } => Vec::new(),
        }
    }

    /// Total node count of this subtree (the node itself plus descendants).
    ///
    /// Together with a pre-order walk this defines stable node identities:
    /// a node's first child has id `id + 1`, and each next sibling follows
    /// at `previous sibling id + previous sibling subtree_size()`. The
    /// estimator, the instrumented executor, and the plan renderer all walk
    /// plans this way, so their per-node data lines up by id.
    pub fn subtree_size(&self) -> usize {
        1 + self.children().iter().map(|c| c.subtree_size()).sum::<usize>()
    }

    /// Number of JOIN nodes (diagnostics, tests).
    pub fn join_count(&self) -> usize {
        match self {
            Plan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Partition { input, .. } => input.join_count(),
            Plan::Union { inputs } => inputs.iter().map(Plan::join_count).sum(),
            _ => 0,
        }
    }

    /// The join methods used, in left-deep order (tests compare against the
    /// paper's examples).
    pub fn join_methods(&self) -> Vec<JoinMethod> {
        let mut out = Vec::new();
        fn walk(p: &Plan, out: &mut Vec<JoinMethod>) {
            match p {
                Plan::Join {
                    left,
                    right,
                    method,
                    ..
                } => {
                    walk(left, out);
                    walk(right, out);
                    out.push(*method);
                }
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Partition { input, .. } => walk(input, out),
                Plan::Union { inputs } => inputs.iter().for_each(|i| walk(i, out)),
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Plan::Bind { class, var } => write!(f, "{pad}BIND({class}, {var})"),
            Plan::Temp { name } => write!(f, "{pad}{name}"),
            Plan::Select { input, predicate } => {
                // Compact single-line form when the input is a leaf, like
                // the paper's SELECT(BIND(Company, c), c.name = 'BMW').
                if matches!(**input, Plan::Bind { .. } | Plan::Temp { .. }) {
                    write!(f, "{pad}SELECT(")?;
                    input.fmt_indent(f, 0)?;
                    write!(f, ", {predicate})")
                } else {
                    writeln!(f, "{pad}SELECT(")?;
                    input.fmt_indent(f, indent + 1)?;
                    writeln!(f, ",")?;
                    write!(f, "{pad}  {predicate})")
                }
            }
            Plan::IndSel {
                class,
                var,
                index_kind,
                predicate,
            } => {
                write!(f, "{pad}INDSEL({class}, {var}, {index_kind}, {predicate})")
            }
            Plan::Join {
                left,
                right,
                method,
                condition,
            } => {
                writeln!(f, "{pad}JOIN(")?;
                left.fmt_indent(f, indent + 1)?;
                writeln!(f, ",")?;
                right.fmt_indent(f, indent + 1)?;
                writeln!(f, ",")?;
                write!(f, "{pad}  {}, {condition})", method.plan_name())
            }
            Plan::Project { input, attributes } => {
                writeln!(f, "{pad}PROJECT(")?;
                input.fmt_indent(f, indent + 1)?;
                writeln!(f, ",")?;
                write!(f, "{pad}  [{}])", attributes.join(", "))
            }
            Plan::Sort { input, attributes } => {
                writeln!(f, "{pad}SORT(")?;
                input.fmt_indent(f, indent + 1)?;
                writeln!(f, ",")?;
                write!(f, "{pad}  [{}])", attributes.join(", "))
            }
            Plan::Partition {
                input,
                attributes,
                having,
            } => {
                writeln!(f, "{pad}PARTITION(")?;
                input.fmt_indent(f, indent + 1)?;
                writeln!(f, ",")?;
                write!(f, "{pad}  [{}]", attributes.join(", "))?;
                if let Some(h) = having {
                    write!(f, ", HAVING {h}")?;
                }
                write!(f, ")")
            }
            Plan::Union { inputs } => {
                writeln!(f, "{pad}UNION(")?;
                for (i, p) in inputs.iter().enumerate() {
                    p.fmt_indent(f, indent + 1)?;
                    if i + 1 < inputs.len() {
                        writeln!(f, ",")?;
                    }
                }
                write!(f, "\n{pad})")
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// A full access plan: named temporaries (in creation order) plus the
/// final expression — the paper's `T1 : JOIN(...)` / final-plan layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSet {
    pub temps: Vec<(String, Plan)>,
    pub root: Plan,
    /// Estimated total cost (model seconds).
    pub estimated_cost: f64,
}

impl fmt::Display for PlanSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, plan) in &self.temps {
            writeln!(f, "{name} : {plan}\n")?;
        }
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_example_8_1_t1_shape() {
        // T1 : JOIN(BIND(Vehicle, v), SELECT(BIND(Company, c),
        //            c.name = 'BMW'), HASH_PARTITION, v.company = c.self)
        let t1 = Plan::join(
            Plan::bind("Vehicle", "v"),
            Plan::select(Plan::bind("Company", "c"), "c.name = 'BMW'"),
            JoinMethod::HashPartition,
            "v.company = c.self",
        );
        let s = t1.to_string();
        assert!(s.contains("BIND(Vehicle, v)"), "{s}");
        assert!(
            s.contains("SELECT(BIND(Company, c), c.name = 'BMW')"),
            "{s}"
        );
        assert!(s.contains("HASH_PARTITION, v.company = c.self"), "{s}");
    }

    #[test]
    fn join_counting_and_methods() {
        let plan = Plan::join(
            Plan::join(
                Plan::temp("T1"),
                Plan::bind("VehicleDriveTrain", "d"),
                JoinMethod::ForwardTraversal,
                "v.drivetrain = d.self",
            ),
            Plan::select(Plan::bind("VehicleEngine", "e"), "e.cylinders = 2"),
            JoinMethod::ForwardTraversal,
            "d.engine = e.self",
        );
        assert_eq!(plan.join_count(), 2);
        assert_eq!(
            plan.join_methods(),
            vec![JoinMethod::ForwardTraversal, JoinMethod::ForwardTraversal]
        );
    }

    #[test]
    fn plan_set_prints_temps_first() {
        let set = PlanSet {
            temps: vec![("T1".to_string(), Plan::bind("Vehicle", "v"))],
            root: Plan::temp("T1"),
            estimated_cost: 1.0,
        };
        let s = set.to_string();
        assert!(s.starts_with("T1 : BIND(Vehicle, v)"));
        assert!(s.trim_end().ends_with("T1"));
    }

    #[test]
    fn union_renders_all_branches() {
        let u = Plan::Union {
            inputs: vec![Plan::bind("A", "a"), Plan::bind("B", "b")],
        };
        let s = u.to_string();
        assert!(s.contains("UNION("));
        assert!(s.contains("BIND(A, a)"));
        assert!(s.contains("BIND(B, b)"));
        assert_eq!(u.join_count(), 0);
    }
}
