//! Plan execution.
//!
//! The executor follows the optimizer's access plan (so join methods and
//! path orders actually determine the I/O pattern — what the benches
//! measure against the §6 cost model), evaluates predicates with run-time
//! type checking through `OperandDataType`, and applies the clause order of
//! Figure 7.1 (FROM → WHERE → GROUP BY/HAVING → projection → ORDER BY) with
//! the operator order of Figure 7.2 inside WHERE (SELECT → JOIN → PROJECT →
//! UNION). An execution trace records the stages for the conformance tests.

use std::collections::{BTreeMap, HashMap, HashSet};

use mood_catalog::Catalog;
use mood_cost::JoinMethod;
use mood_datamodel::{encode_value, Value};
use mood_funcman::{FunctionManager, OperandDataType};
use mood_optimizer::{optimize, OptimizerConfig, Plan};
use mood_storage::exec::run_chunked;
use mood_storage::Oid;

use crate::ast::{AggFunc, Expr, Lit, PathRef, SelectStmt};
use crate::binder::{lower, Lowered};
use crate::error::{Result, SqlError};
use crate::parser::parse_expr;

/// One variable binding set: range variable → bound object.
pub type Row = BTreeMap<String, BoundObj>;

/// A bound object (stored or transient).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundObj {
    pub oid: Option<Oid>,
    pub value: Value,
}

/// A query result: column labels plus value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Single-column convenience accessor.
    pub fn column(&self, idx: usize) -> Vec<&Value> {
        self.rows.iter().map(|r| &r[idx]).collect()
    }
}

/// The executor.
///
/// The trace lives behind a `Mutex` (not a `RefCell`) so `&Executor` is
/// `Sync` — parallel operator chunks evaluate predicates through a shared
/// executor reference on worker threads.
pub struct Executor<'a> {
    pub catalog: &'a Catalog,
    pub funcman: &'a FunctionManager,
    pub config: OptimizerConfig,
    trace: std::sync::Mutex<Vec<String>>,
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog, funcman: &'a FunctionManager) -> Executor<'a> {
        Executor {
            catalog,
            funcman,
            config: OptimizerConfig::default(),
            trace: std::sync::Mutex::new(Vec::new()),
        }
    }

    pub fn with_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// The stage trace of the last query (Figure 7.1/7.2 conformance).
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().expect("trace lock").clone()
    }

    fn mark(&self, stage: impl Into<String>) {
        self.trace.lock().expect("trace lock").push(stage.into());
    }

    /// Filter rows by a predicate, in parallel when the execution config
    /// asks for it. Chunks are concatenated in input order, so survivors
    /// appear exactly as the sequential loop would emit them; the error
    /// from the earliest failing row wins either way.
    fn filter_rows(&self, rows: Vec<Row>, expr: &Expr) -> Result<Vec<Row>> {
        let par = self.config.execution.parallelism;
        if par <= 1 {
            let mut kept = Vec::new();
            for row in rows {
                if self.eval_pred(expr, &row)? {
                    kept.push(row);
                }
            }
            return Ok(kept);
        }
        run_chunked(par, &rows, |_, chunk| {
            let mut kept = Vec::new();
            for row in chunk {
                if self.eval_pred(expr, row)? {
                    kept.push(row.clone());
                }
            }
            Ok::<_, SqlError>(kept)
        })
    }

    /// Optimize only: the plan text (the `EXPLAIN` statement).
    pub fn explain(&self, stmt: &SelectStmt) -> Result<String> {
        let lowered = lower(self.catalog, stmt)?;
        let optimized = optimize(&lowered.spec, &self.catalog.stats(), &self.config);
        let mut out = String::new();
        for term in &optimized.terms {
            if !term.path_sel_info.is_empty() {
                out.push_str("-- PathSelInfo (predicate, selectivity, F, F/(1-s)):\n");
                for row in &term.path_sel_info {
                    out.push_str(&format!(
                        "--   {} | {:.3e} | {:.3} | {:.3}\n",
                        row.predicate, row.selectivity, row.forward_cost, row.rank
                    ));
                }
            }
            out.push_str(&term.plan.to_string());
            out.push('\n');
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // SELECT execution
    // ------------------------------------------------------------------

    pub fn run_select(&self, stmt: &SelectStmt) -> Result<QueryResult> {
        self.trace.lock().expect("trace lock").clear();
        let lowered = lower(self.catalog, stmt)?;
        self.mark("FROM");
        let mut rows = if lowered.unabsorbed.is_empty() {
            self.run_optimized(stmt, &lowered)?
        } else {
            self.run_nested_loop(stmt, &lowered)?
        };

        // GROUP BY / HAVING (Figure 7.1).
        let grouped = !stmt.group_by.is_empty()
            || stmt
                .projection
                .iter()
                .any(|e| matches!(e, Expr::Agg { .. }));
        let result = if grouped {
            self.mark("GROUP BY");
            let groups = self.group_rows(&rows, &stmt.group_by)?;
            let groups = if let Some(h) = &stmt.having {
                self.mark("HAVING");
                let mut kept = Vec::new();
                for g in groups {
                    if self.eval_group_pred(h, &g)? {
                        kept.push(g);
                    }
                }
                kept
            } else {
                groups
            };
            self.mark("PROJECT");
            let columns: Vec<String> = stmt.projection.iter().map(Expr::render).collect();
            let mut out_rows = Vec::new();
            for g in &groups {
                let mut out = Vec::new();
                for p in &stmt.projection {
                    out.push(self.eval_group_expr(p, g)?);
                }
                out_rows.push(out);
            }
            QueryResult {
                columns,
                rows: out_rows,
            }
        } else {
            // ORDER BY applies to the bound rows pre-projection.
            if !stmt.order_by.is_empty() {
                self.mark("ORDER BY");
                self.sort_rows(&mut rows, &stmt.order_by)?;
            }
            self.mark("PROJECT");
            let columns: Vec<String> = stmt.projection.iter().map(Expr::render).collect();
            let mut out_rows = Vec::new();
            for row in &rows {
                let mut out = Vec::new();
                for p in &stmt.projection {
                    out.push(self.eval_expr(p, row)?);
                }
                out_rows.push(out);
            }
            QueryResult {
                columns,
                rows: out_rows,
            }
        };
        // Grouped ORDER BY sorts output rows by matching columns.
        let mut result = result;
        if grouped && !stmt.order_by.is_empty() {
            self.mark("ORDER BY");
            let keys: Vec<usize> = stmt
                .order_by
                .iter()
                .filter_map(|(p, _)| result.columns.iter().position(|c| *c == p.render()))
                .collect();
            let dirs: Vec<bool> = stmt.order_by.iter().map(|(_, asc)| *asc).collect();
            result.rows.sort_by(|a, b| {
                for (ki, &col) in keys.iter().enumerate() {
                    let ord = a[col].compare(&b[col]).unwrap_or(std::cmp::Ordering::Equal);
                    let ord = if dirs.get(ki).copied().unwrap_or(true) {
                        ord
                    } else {
                        ord.reverse()
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if stmt.distinct {
            let mut seen = HashSet::new();
            result.rows.retain(|r| {
                let key: Vec<u8> = r.iter().flat_map(encode_value).collect();
                seen.insert(key)
            });
        }
        Ok(result)
    }

    fn run_optimized(&self, _stmt: &SelectStmt, lowered: &Lowered) -> Result<Vec<Row>> {
        // Ensure statistics exist for the root class; first use collects.
        if self.catalog.stats().class(&lowered.root.class).is_none() {
            self.catalog.collect_stats()?;
        }
        let optimized = optimize(&lowered.spec, &self.catalog.stats(), &self.config);
        let mut all_rows: Vec<Row> = Vec::new();
        for term in &optimized.terms {
            let mut temps: HashMap<String, Vec<Row>> = HashMap::new();
            for (name, plan) in &term.plan.temps {
                let rows = self.exec_plan(plan, lowered, &temps)?;
                temps.insert(name.clone(), rows);
            }
            let rows = self.exec_plan(&term.plan.root, lowered, &temps)?;
            all_rows.extend(rows);
        }
        if optimized.terms.len() > 1 {
            self.mark("WHERE:UNION");
            // Set semantics over variable bindings: dedupe by OID signature.
            let mut seen = HashSet::new();
            all_rows.retain(|row| {
                let sig: Vec<(String, Option<Oid>)> =
                    row.iter().map(|(k, v)| (k.clone(), v.oid)).collect();
                seen.insert(format!("{sig:?}"))
            });
        }
        Ok(all_rows)
    }

    /// Fallback for queries the optimizer's single-root model cannot
    /// absorb: nested-loop product over the FROM extents plus a residual
    /// WHERE filter.
    fn run_nested_loop(&self, stmt: &SelectStmt, lowered: &Lowered) -> Result<Vec<Row>> {
        let mut rows: Vec<Row> = vec![Row::new()];
        for item in &stmt.from {
            let extent = if item.every {
                self.catalog.extent_every(&item.class, &item.minus)?
            } else {
                self.catalog.extent(&item.class)?
            };
            let mut next = Vec::with_capacity(rows.len() * extent.len());
            for row in &rows {
                for (oid, value) in &extent {
                    let mut r = row.clone();
                    r.insert(
                        item.var.clone(),
                        BoundObj {
                            oid: Some(*oid),
                            value: value.clone(),
                        },
                    );
                    next.push(r);
                }
            }
            rows = next;
        }
        let _ = lowered;
        if let Some(w) = &stmt.where_clause {
            self.mark("WHERE:SELECT");
            rows = self.filter_rows(rows, w)?;
        }
        Ok(rows)
    }

    // ------------------------------------------------------------------
    // Plan interpretation
    // ------------------------------------------------------------------

    fn exec_plan(
        &self,
        plan: &Plan,
        lowered: &Lowered,
        temps: &HashMap<String, Vec<Row>>,
    ) -> Result<Vec<Row>> {
        match plan {
            Plan::Bind { class, var } => {
                let extent = if var == &lowered.root.var {
                    if lowered.root.every {
                        self.catalog.extent_every(class, &lowered.root.minus)?
                    } else {
                        self.catalog.extent(class)?
                    }
                } else {
                    self.catalog.extent(class)?
                };
                Ok(extent
                    .into_iter()
                    .map(|(oid, value)| {
                        let mut row = Row::new();
                        row.insert(
                            var.clone(),
                            BoundObj {
                                oid: Some(oid),
                                value,
                            },
                        );
                        row
                    })
                    .collect())
            }
            Plan::Temp { name } => temps
                .get(name)
                .cloned()
                .ok_or_else(|| SqlError::Exec(format!("unknown temporary {name}"))),
            Plan::IndSel {
                class,
                var,
                predicate,
                ..
            } => {
                self.mark("WHERE:SELECT");
                let expr = parse_expr(predicate)?;
                let preds = flatten_and(&expr);
                let mut oid_set: Option<HashSet<Oid>> = None;
                for p in &preds {
                    let oids = self.index_probe(class, p)?;
                    oid_set = Some(match oid_set {
                        None => oids.into_iter().collect(),
                        Some(prev) => oids.into_iter().filter(|o| prev.contains(o)).collect(),
                    });
                }
                let mut rows = Vec::new();
                for oid in oid_set.unwrap_or_default() {
                    let Ok((_, value)) = self.catalog.get_object(oid) else {
                        continue; // stale index entry (rebuild-on-demand)
                    };
                    let mut row = Row::new();
                    row.insert(
                        var.clone(),
                        BoundObj {
                            oid: Some(oid),
                            value,
                        },
                    );
                    // Re-verify: path indexes are rebuilt on demand, so an
                    // entry may be stale; evaluating the predicate on the
                    // fetched object guarantees correct answers regardless.
                    if self.eval_pred(&expr, &row)? {
                        rows.push(row);
                    }
                }
                rows.sort_by_key(|r| r.get(var).and_then(|b| b.oid));
                Ok(rows)
            }
            Plan::Select { input, predicate } => {
                let rows = self.exec_plan(input, lowered, temps)?;
                self.mark("WHERE:SELECT");
                let text = predicate.strip_prefix("__join__ ").unwrap_or(predicate);
                let expr = parse_expr(text)?;
                self.filter_rows(rows, &expr)
            }
            Plan::Join {
                left,
                right,
                method,
                condition,
            } => {
                let left_rows = self.exec_plan(left, lowered, temps)?;
                let out = self.exec_join(left_rows, right, *method, condition, lowered, temps)?;
                self.mark("WHERE:JOIN");
                Ok(out)
            }
            Plan::Union { inputs } => {
                let mut all = Vec::new();
                for p in inputs {
                    all.extend(self.exec_plan(p, lowered, temps)?);
                }
                self.mark("WHERE:UNION");
                Ok(all)
            }
            other => Err(SqlError::Exec(format!(
                "plan node {other:?} is handled at the statement level"
            ))),
        }
    }

    fn index_probe(&self, class: &str, p: &Expr) -> Result<Vec<Oid>> {
        let Expr::Compare { op, left, right } = p else {
            return Err(SqlError::Exec(format!(
                "INDSEL predicate not a comparison: {p:?}"
            )));
        };
        let (Expr::Path(path), Expr::Literal(lit)) = (&**left, &**right) else {
            return Err(SqlError::Exec("INDSEL predicate shape".into()));
        };
        if path.segments.is_empty() {
            return Err(SqlError::Exec(
                "INDSEL predicate must target an attribute".into(),
            ));
        }
        // Dotted join handles both plain attributes and whole-path indexes.
        let attr = &path.segments.join(".");
        let key = lit_value(lit);
        Ok(match op {
            crate::ast::CmpOp::Eq => self.catalog.index_lookup(class, attr, &key)?,
            crate::ast::CmpOp::Lt => {
                self.catalog
                    .index_range(class, attr, None, Some((&key, false)))?
            }
            crate::ast::CmpOp::Le => {
                self.catalog
                    .index_range(class, attr, None, Some((&key, true)))?
            }
            crate::ast::CmpOp::Gt => {
                self.catalog
                    .index_range(class, attr, Some((&key, false)), None)?
            }
            crate::ast::CmpOp::Ge => {
                self.catalog
                    .index_range(class, attr, Some((&key, true)), None)?
            }
            crate::ast::CmpOp::Ne => {
                return Err(SqlError::Exec("<> cannot be index-served".into()))
            }
        })
    }

    /// Execute one implicit join following the plan's method.
    fn exec_join(
        &self,
        left_rows: Vec<Row>,
        right: &Plan,
        method: JoinMethod,
        condition: &str,
        lowered: &Lowered,
        temps: &HashMap<String, Vec<Row>>,
    ) -> Result<Vec<Row>> {
        // Condition shape: "x.attr = y.self".
        let (lhs, rhs) = condition
            .split_once(" = ")
            .ok_or_else(|| SqlError::Exec(format!("unsupported join condition: {condition}")))?;
        let (x_var, attr) = lhs
            .split_once('.')
            .ok_or_else(|| SqlError::Exec(format!("bad join lhs: {lhs}")))?;
        let y_var = rhs
            .strip_suffix(".self")
            .ok_or_else(|| SqlError::Exec(format!("bad join rhs: {rhs}")))?;

        // Describe the right side.
        let right_side = match right {
            Plan::Bind { class, .. } => RightSideImpl::Class {
                class: class.clone(),
                filter: None,
            },
            Plan::Select { input, predicate } => {
                if let Plan::Bind { class, .. } = &**input {
                    RightSideImpl::Class {
                        class: class.clone(),
                        filter: Some(parse_expr(
                            predicate.strip_prefix("__join__ ").unwrap_or(predicate),
                        )?),
                    }
                } else {
                    let rows = self.exec_plan(right, lowered, temps)?;
                    RightSideImpl::Rows(key_rows_by(&rows, y_var))
                }
            }
            other => {
                let rows = self.exec_plan(other, lowered, temps)?;
                RightSideImpl::Rows(key_rows_by(&rows, y_var))
            }
        };

        // For backward traversal and the binary join index the right side
        // is materialized up front (the scan/probe source).
        let right_side = match (method, right_side) {
            (
                JoinMethod::BackwardTraversal | JoinMethod::BinaryJoinIndex,
                RightSideImpl::Class { class, filter },
            ) => {
                let mut map: HashMap<Oid, Vec<Row>> = HashMap::new();
                for (oid, value) in self.catalog.extent(&class)? {
                    let mut row = Row::new();
                    row.insert(
                        y_var.to_string(),
                        BoundObj {
                            oid: Some(oid),
                            value,
                        },
                    );
                    if let Some(f) = &filter {
                        if !self.eval_pred(f, &row)? {
                            continue;
                        }
                    }
                    map.entry(oid).or_default().push(row);
                }
                RightSideImpl::Rows(map)
            }
            (_, rs) => rs,
        };

        let mut out = Vec::new();
        match method {
            JoinMethod::BinaryJoinIndex => {
                let RightSideImpl::Rows(map) = &right_side else {
                    unreachable!()
                };
                // Left class from the first bound object.
                let left_class = left_rows
                    .iter()
                    .find_map(|r| r.get(x_var).and_then(|b| b.oid))
                    .map(|oid| self.catalog.get_object(oid).map(|(c, _)| c))
                    .transpose()?;
                let Some(left_class) = left_class else {
                    return Ok(out);
                };
                let mut left_by_oid: HashMap<Oid, Vec<&Row>> = HashMap::new();
                for r in &left_rows {
                    if let Some(oid) = r.get(x_var).and_then(|b| b.oid) {
                        left_by_oid.entry(oid).or_default().push(r);
                    }
                }
                let mut keys: Vec<&Oid> = map.keys().collect();
                keys.sort();
                for y_oid in keys {
                    for l_oid in
                        self.catalog
                            .index_lookup(&left_class, attr, &Value::Ref(*y_oid))?
                    {
                        if let Some(lrows) = left_by_oid.get(&l_oid) {
                            for l in lrows {
                                for r in &map[y_oid] {
                                    let mut merged = (*l).clone();
                                    merged.extend(r.clone());
                                    out.push(merged);
                                }
                            }
                        }
                    }
                }
                out.sort_by_key(|r| r.get(x_var).and_then(|b| b.oid));
            }
            JoinMethod::HashPartition => {
                // Partition: group left rows by referenced OID; fetch each
                // distinct target once.
                let mut partitions: BTreeMap<Oid, Vec<usize>> = BTreeMap::new();
                for (i, row) in left_rows.iter().enumerate() {
                    for oid in self.row_refs(row, x_var, attr)? {
                        partitions.entry(oid).or_default().push(i);
                    }
                }
                for (oid, members) in partitions {
                    let matches = right_side.resolve(self, oid, y_var)?;
                    for r in matches {
                        for &i in &members {
                            let mut merged = left_rows[i].clone();
                            merged.extend(r.clone());
                            out.push(merged);
                        }
                    }
                }
                out.sort_by_key(|r| r.get(x_var).and_then(|b| b.oid));
            }
            JoinMethod::ForwardTraversal | JoinMethod::BackwardTraversal => {
                for row in &left_rows {
                    for oid in self.row_refs(row, x_var, attr)? {
                        let matches = right_side.resolve(self, oid, y_var)?;
                        for r in matches {
                            let mut merged = row.clone();
                            merged.extend(r);
                            out.push(merged);
                        }
                    }
                }
            }
        }
        return Ok(out);

        fn key_rows_by(rows: &[Row], var: &str) -> HashMap<Oid, Vec<Row>> {
            let mut map: HashMap<Oid, Vec<Row>> = HashMap::new();
            for r in rows {
                if let Some(oid) = r.get(var).and_then(|b| b.oid) {
                    map.entry(oid).or_default().push(r.clone());
                }
            }
            map
        }
    }

    /// The reference OIDs of `row[var].attr`.
    fn row_refs(&self, row: &Row, var: &str, attr: &str) -> Result<Vec<Oid>> {
        let Some(bound) = row.get(var) else {
            return Ok(Vec::new());
        };
        Ok(match bound.value.field(attr) {
            Some(Value::Ref(oid)) => vec![*oid],
            Some(Value::Set(items)) | Some(Value::List(items)) => {
                items.iter().filter_map(|i| i.as_oid()).collect()
            }
            _ => Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    /// Evaluate an expression against a row.
    pub fn eval_expr(&self, e: &Expr, row: &Row) -> Result<Value> {
        Ok(match e {
            Expr::Literal(l) => lit_value(l),
            Expr::Path(p) => self.eval_path(p, row)?,
            Expr::MethodCall { base, method, args } => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_expr(a, row)?);
                }
                // Resolve the receiver: the path must end at a stored
                // object (a Ref or the variable itself).
                let receiver_oid = if base.segments.is_empty() {
                    row.get(&base.var).and_then(|b| b.oid)
                } else {
                    self.eval_path(base, row)?.as_oid()
                };
                let Some(oid) = receiver_oid else {
                    return Err(SqlError::Exec(format!(
                        "method {method}() needs a stored receiver ({} unresolved)",
                        base.render()
                    )));
                };
                self.funcman.invoke(oid, method, &arg_vals)?
            }
            Expr::Agg { .. } => {
                return Err(SqlError::Exec("aggregate outside GROUP BY context".into()))
            }
            Expr::Compare { op, left, right } => {
                let l = self.eval_expr(left, row)?;
                let r = self.eval_expr(right, row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match l.compare(&r) {
                    Some(ord) => Value::Boolean(match op {
                        crate::ast::CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                        crate::ast::CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                        crate::ast::CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        crate::ast::CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        crate::ast::CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        crate::ast::CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    }),
                    None => return Err(SqlError::Exec(format!("cannot compare {l} with {r}"))),
                }
            }
            Expr::Between { expr, lo, hi } => {
                let v = self.eval_expr(expr, row)?;
                let lo = self.eval_expr(lo, row)?;
                let hi = self.eval_expr(hi, row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let ge = v.compare(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.compare(&hi).map(|o| o != std::cmp::Ordering::Greater);
                match (ge, le) {
                    (Some(a), Some(b)) => Value::Boolean(a && b),
                    _ => return Err(SqlError::Exec("BETWEEN on incomparable values".into())),
                }
            }
            Expr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match self.eval_expr(p, row)? {
                        Value::Boolean(false) => return Ok(Value::Boolean(false)),
                        Value::Boolean(true) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(SqlError::Exec(format!("AND over non-Boolean {other}")))
                        }
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(true)
                }
            }
            Expr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match self.eval_expr(p, row)? {
                        Value::Boolean(true) => return Ok(Value::Boolean(true)),
                        Value::Boolean(false) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(SqlError::Exec(format!("OR over non-Boolean {other}")))
                        }
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(false)
                }
            }
            Expr::Not(inner) => match self.eval_expr(inner, row)? {
                Value::Boolean(b) => Value::Boolean(!b),
                Value::Null => Value::Null,
                other => return Err(SqlError::Exec(format!("NOT over non-Boolean {other}"))),
            },
            Expr::Arith { op, left, right } => {
                let l = OperandDataType::from_value(&self.eval_expr(left, row)?)?;
                let r = OperandDataType::from_value(&self.eval_expr(right, row)?)?;
                let out = match op {
                    '+' => l.add(&r)?,
                    '-' => l.sub(&r)?,
                    '*' => l.mul(&r)?,
                    '/' => l.div(&r)?,
                    '%' => l.rem(&r)?,
                    other => return Err(SqlError::Exec(format!("unknown operator {other}"))),
                };
                out.into_value()
            }
        })
    }

    /// Evaluate a path against a row, dereferencing through the catalog.
    fn eval_path(&self, p: &PathRef, row: &Row) -> Result<Value> {
        let Some(bound) = row.get(&p.var) else {
            return Err(SqlError::Exec(format!("unbound range variable {}", p.var)));
        };
        if p.segments.is_empty() {
            return Ok(match bound.oid {
                Some(oid) => Value::Ref(oid),
                None => bound.value.clone(),
            });
        }
        let mut cur = bound.value.clone();
        for seg in &p.segments {
            loop {
                match cur {
                    Value::Ref(oid) => {
                        let (_, v) = self.catalog.get_object(oid)?;
                        cur = v;
                    }
                    Value::Null => return Ok(Value::Null),
                    _ => break,
                }
            }
            cur = match cur.field(seg) {
                Some(v) => v.clone(),
                // Schema evolution: objects stored before an attribute was
                // added read it as NULL (the binder already validated that
                // the attribute exists in the schema).
                None => match &cur {
                    Value::Tuple(_) => Value::Null,
                    other => {
                        return Err(SqlError::Exec(format!(
                            "no attribute {seg} on {} (path {}, value {other})",
                            p.var,
                            p.render()
                        )))
                    }
                },
            };
        }
        Ok(cur)
    }

    /// Predicate evaluation: Null (unknown) filters out, per SQL.
    pub fn eval_pred(&self, e: &Expr, row: &Row) -> Result<bool> {
        Ok(matches!(self.eval_expr(e, row)?, Value::Boolean(true)))
    }

    // ------------------------------------------------------------------
    // Grouping and aggregates
    // ------------------------------------------------------------------

    fn group_rows(&self, rows: &[Row], group_by: &[PathRef]) -> Result<Vec<Vec<Row>>> {
        if group_by.is_empty() {
            return Ok(vec![rows.to_vec()]);
        }
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut groups: Vec<Vec<Row>> = Vec::new();
        for row in rows {
            let mut key = Vec::new();
            for g in group_by {
                key.extend(encode_value(&self.eval_path(g, row)?));
                key.push(0xFE);
            }
            match keys.iter().position(|k| *k == key) {
                Some(i) => groups[i].push(row.clone()),
                None => {
                    keys.push(key);
                    groups.push(vec![row.clone()]);
                }
            }
        }
        Ok(groups)
    }

    fn eval_group_expr(&self, e: &Expr, group: &[Row]) -> Result<Value> {
        match e {
            Expr::Agg { func, arg } => self.eval_agg(*func, arg.as_deref(), group),
            other => {
                let Some(first) = group.first() else {
                    return Ok(Value::Null);
                };
                self.eval_expr(other, first)
            }
        }
    }

    fn eval_group_pred(&self, e: &Expr, group: &[Row]) -> Result<bool> {
        // HAVING predicates may mix aggregates and group keys: evaluate
        // comparisons with group-aware operands.
        match e {
            Expr::And(parts) => {
                for p in parts {
                    if !self.eval_group_pred(p, group)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Expr::Or(parts) => {
                for p in parts {
                    if self.eval_group_pred(p, group)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Expr::Not(inner) => Ok(!self.eval_group_pred(inner, group)?),
            Expr::Compare { op, left, right } => {
                let l = self.eval_group_expr(left, group)?;
                let r = self.eval_group_expr(right, group)?;
                if l.is_null() || r.is_null() {
                    return Ok(false);
                }
                let Some(ord) = l.compare(&r) else {
                    return Err(SqlError::Exec(format!("cannot compare {l} with {r}")));
                };
                Ok(match op {
                    crate::ast::CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    crate::ast::CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    crate::ast::CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    crate::ast::CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    crate::ast::CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    crate::ast::CmpOp::Ge => ord != std::cmp::Ordering::Less,
                })
            }
            other => {
                let Some(first) = group.first() else {
                    return Ok(false);
                };
                self.eval_pred(other, first)
            }
        }
    }

    fn eval_agg(&self, func: AggFunc, arg: Option<&Expr>, group: &[Row]) -> Result<Value> {
        if func == AggFunc::Count && arg.is_none() {
            return Ok(Value::Integer(group.len() as i32));
        }
        let arg =
            arg.ok_or_else(|| SqlError::Exec(format!("{}() requires an argument", func.name())))?;
        let mut nums = Vec::new();
        let mut count = 0usize;
        for row in group {
            let v = self.eval_expr(arg, row)?;
            if v.is_null() {
                continue;
            }
            count += 1;
            if let Some(x) = v.as_f64() {
                nums.push(x);
            } else if func != AggFunc::Count {
                return Err(SqlError::Exec(format!(
                    "{}() over non-numeric value {v}",
                    func.name()
                )));
            }
        }
        Ok(match func {
            AggFunc::Count => Value::Integer(count as i32),
            AggFunc::Sum => Value::Float(nums.iter().sum()),
            AggFunc::Avg => {
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Min => nums
                .iter()
                .copied()
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))))
                .map(Value::Float)
                .unwrap_or(Value::Null),
            AggFunc::Max => nums
                .iter()
                .copied()
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))
                .map(Value::Float)
                .unwrap_or(Value::Null),
        })
    }

    fn sort_rows(&self, rows: &mut [Row], order_by: &[(PathRef, bool)]) -> Result<()> {
        // Precompute keys (evaluation may deref; do it once per row).
        let mut keyed: Vec<(usize, Vec<Value>)> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let mut keys = Vec::new();
            for (p, _) in order_by {
                keys.push(self.eval_path(p, row)?);
            }
            keyed.push((i, keys));
        }
        keyed.sort_by(|(_, a), (_, b)| {
            for (k, (_, asc)) in order_by.iter().enumerate() {
                let ord = a[k].compare(&b[k]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let permuted: Vec<Row> = keyed.iter().map(|(i, _)| rows[*i].clone()).collect();
        rows.clone_from_slice(&permuted);
        Ok(())
    }
}

/// The two right-side shapes of `exec_join`.
enum RightSideImpl {
    /// Unmaterialized class with an optional residual filter.
    Class { class: String, filter: Option<Expr> },
    /// Materialized rows keyed by the right variable's OID.
    Rows(HashMap<Oid, Vec<Row>>),
}

impl RightSideImpl {
    fn resolve(&self, ex: &Executor<'_>, oid: Oid, y_var: &str) -> Result<Vec<Row>> {
        match self {
            RightSideImpl::Rows(map) => Ok(map.get(&oid).cloned().unwrap_or_default()),
            RightSideImpl::Class { class, filter } => {
                let Ok((obj_class, value)) = ex.catalog.get_object(oid) else {
                    return Ok(Vec::new()); // dangling reference: no pair
                };
                if !ex.catalog.is_subclass(&obj_class, class) {
                    return Ok(Vec::new());
                }
                let mut row = Row::new();
                row.insert(
                    y_var.to_string(),
                    BoundObj {
                        oid: Some(oid),
                        value,
                    },
                );
                if let Some(f) = filter {
                    if !ex.eval_pred(f, &row)? {
                        return Ok(Vec::new());
                    }
                }
                Ok(vec![row])
            }
        }
    }
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(i) => {
            if let Ok(v) = i32::try_from(*i) {
                Value::Integer(v)
            } else {
                Value::LongInteger(*i)
            }
        }
        Lit::Float(x) => Value::Float(*x),
        Lit::Str(s) => Value::String(s.clone()),
        Lit::Bool(b) => Value::Boolean(*b),
        Lit::Null => Value::Null,
    }
}

fn flatten_and(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::And(parts) => parts.iter().flat_map(flatten_and).collect(),
        other => vec![other],
    }
}
