//! Combinatorial approximations used throughout the cost model.
//!
//! * `c(n,m,r)` — the Ceri–Pelagatti approximation to "the number of
//!   different colors when r objects are chosen out of n objects uniformly
//!   distributed over m colors" [Cer 85], exactly as printed in Section 4.1;
//! * `o(t,x,y) = 1 − C(t−x,y)/C(t,y)` — the probability that two sets of
//!   cardinalities x and y drawn from t distinct objects intersect;
//! * the exact alternatives ([`yao`], [`cardenas`]) the paper cites
//!   ([Yao 77], [Car 75]) for the ablation benches.

/// The paper's piecewise `c(n,m,r)`:
///
/// ```text
///          ⎧ r            r < m/2
/// c(n,m,r)=⎨ (r+m)/3      m/2 ≤ r < 2m
///          ⎩ m            r ≥ 2m
/// ```
///
/// `n` (the number of objects) does not appear in the approximation but is
/// kept in the signature to match the paper's usage sites.
pub fn c_approx(n: f64, m: f64, r: f64) -> f64 {
    let _ = n;
    if m <= 0.0 || r <= 0.0 {
        return 0.0;
    }
    if r < m / 2.0 {
        r
    } else if r < 2.0 * m {
        (r + m) / 3.0
    } else {
        m
    }
}

/// Cardenas' classical estimate of the number of distinct "colors" hit:
/// `m * (1 − (1 − 1/m)^r)` [Car 75].
pub fn cardenas(m: f64, r: f64) -> f64 {
    if m <= 0.0 || r <= 0.0 {
        return 0.0;
    }
    m * (1.0 - (1.0 - 1.0 / m).powf(r))
}

/// Yao's exact expected number of blocks (colors) hit when `r` records are
/// selected without replacement from `n` records spread evenly over `m`
/// blocks [Yao 77]. Falls back to [`cardenas`] when the product would be
/// numerically unstable (huge n).
pub fn yao(n: f64, m: f64, r: f64) -> f64 {
    if m <= 0.0 || r <= 0.0 || n <= 0.0 {
        return 0.0;
    }
    if r >= n {
        return m;
    }
    let per_block = n / m;
    if n > 1e7 {
        return cardenas(m, r);
    }
    // m * (1 - Π_{i=0}^{r-1} (n - per_block - i) / (n - i))
    let mut prod = 1.0f64;
    let r_int = r.floor() as u64;
    for i in 0..r_int {
        let num = n - per_block - i as f64;
        let den = n - i as f64;
        if num <= 0.0 || den <= 0.0 {
            prod = 0.0;
            break;
        }
        prod *= num / den;
        if prod < 1e-12 {
            prod = 0.0;
            break;
        }
    }
    m * (1.0 - prod)
}

/// `o(t,x,y)` — probability that two sets of sizes `x` and `y` drawn from
/// `t` distinct objects share at least one member:
/// `o(t,x,y) = 1 − C(t−x,y)/C(t,y)`.
///
/// The ratio `C(t−x,y)/C(t,y)` equals `Π_{i=0}^{y−1} (t−x−i)/(t−i)`, which
/// we evaluate directly for integral `y`; for fractional `y` (the formula is
/// applied to expected cardinalities like `k_m · hitprb`) we use the
/// continuous extension `(1 − x/t)^y`.
pub fn o_overlap(t: f64, x: f64, y: f64) -> f64 {
    if t <= 0.0 || x <= 0.0 || y <= 0.0 {
        return 0.0;
    }
    if x >= t || y >= t {
        return 1.0;
    }
    let is_integral = y.fract() == 0.0 && y <= 1e6;
    let miss = if is_integral {
        let mut prod = 1.0f64;
        for i in 0..(y as u64) {
            let num = t - x - i as f64;
            let den = t - i as f64;
            if num <= 0.0 {
                prod = 0.0;
                break;
            }
            prod *= num / den;
        }
        prod
    } else {
        (1.0 - x / t).powf(y)
    };
    (1.0 - miss).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_approx_piecewise_branches() {
        // r < m/2 → r.
        assert_eq!(c_approx(1000.0, 100.0, 30.0), 30.0);
        // m/2 ≤ r < 2m → (r+m)/3.
        assert_eq!(c_approx(1000.0, 100.0, 50.0), 50.0); // boundary: (50+100)/3 = 50
        assert_eq!(c_approx(1000.0, 100.0, 80.0), 60.0);
        // r ≥ 2m → m.
        assert_eq!(c_approx(1000.0, 100.0, 200.0), 100.0);
        assert_eq!(c_approx(1000.0, 100.0, 10_000.0), 100.0);
    }

    #[test]
    fn c_approx_is_continuous_at_breakpoints() {
        let m = 64.0;
        let eps = 1e-9;
        let a = c_approx(0.0, m, m / 2.0 - eps);
        let b = c_approx(0.0, m, m / 2.0 + eps);
        assert!((a - b).abs() < 1e-6);
        let a = c_approx(0.0, m, 2.0 * m - eps);
        let b = c_approx(0.0, m, 2.0 * m + eps);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn c_approx_edge_cases() {
        assert_eq!(c_approx(10.0, 0.0, 5.0), 0.0);
        assert_eq!(c_approx(10.0, 5.0, 0.0), 0.0);
    }

    #[test]
    fn paper_example_8_1_uses_c() {
        // fref(v.company, 20000) with fan=1:
        // c(totlinks=20000, totref=20000, 20000) → r ≥ 2m? 20000 < 40000,
        // and r ≥ m/2 → (20000+20000)/3 … wait: m=20000, r=20000 →
        // m/2 ≤ r < 2m → (r+m)/3 = 13333.33.
        let v = c_approx(20_000.0, 20_000.0, 20_000.0);
        assert!((v - 40_000.0 / 3.0).abs() < 1e-9);
        // fref(v.drivetrain, 20000): c(20000, 10000, 20000) → r ≥ 2m → m.
        assert_eq!(c_approx(20_000.0, 10_000.0, 20_000.0), 10_000.0);
    }

    #[test]
    fn cardenas_matches_known_values() {
        // m=100, r=100 → 100*(1-0.99^100) ≈ 63.4.
        let v = cardenas(100.0, 100.0);
        assert!((v - 63.397).abs() < 0.01, "{v}");
        assert_eq!(cardenas(100.0, 0.0), 0.0);
    }

    #[test]
    fn yao_bounds_and_limits() {
        // Selecting everything hits every block.
        assert_eq!(yao(1000.0, 100.0, 1000.0), 100.0);
        // Selecting one record hits exactly... close to one block.
        let one = yao(1000.0, 100.0, 1.0);
        assert!((one - 1.0).abs() < 1e-9, "{one}");
        // Yao ≤ min(m, r).
        for r in [5.0, 50.0, 500.0] {
            let v = yao(1000.0, 100.0, r);
            assert!(v <= 100.0 + 1e-9 && v <= r + 1e-9);
        }
    }

    #[test]
    fn yao_close_to_cardenas_for_large_n() {
        let (n, m, r) = (100_000.0, 1_000.0, 3_000.0);
        let y = yao(n, m, r);
        let c = cardenas(m, r);
        assert!((y - c).abs() / c < 0.05, "yao={y} cardenas={c}");
    }

    #[test]
    fn c_approx_vs_cardenas_shape() {
        // The piecewise approximation should stay within a factor ~1.6 of
        // Cardenas in the transition region (that is its design point).
        for r in [40.0, 60.0, 100.0, 150.0] {
            let a = c_approx(0.0, 100.0, r);
            let c = cardenas(100.0, r);
            let ratio = a / c;
            assert!(ratio > 0.6 && ratio < 1.6, "r={r}: {a} vs {c}");
        }
    }

    #[test]
    fn o_overlap_integral_matches_combinatorics() {
        // t=4, x=2, y=2: C(2,2)/C(4,2) = 1/6 → o = 5/6.
        let v = o_overlap(4.0, 2.0, 2.0);
        assert!((v - 5.0 / 6.0).abs() < 1e-12);
        // One of one: t=10, x=1, y=1 → 1/10.
        let v = o_overlap(10.0, 1.0, 1.0);
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn o_overlap_paper_p1_value() {
        // P1: o(totref=10000, x=fref=1, y=k_m*hitprb=625) ≈ 0.0625 (the
        // paper's Table 16 prints 6.25e-2).
        let v = o_overlap(10_000.0, 1.0, 625.0);
        assert!((v - 0.0625).abs() < 0.002, "{v}");
    }

    #[test]
    fn o_overlap_bounds() {
        assert_eq!(o_overlap(10.0, 0.0, 5.0), 0.0);
        assert_eq!(o_overlap(10.0, 5.0, 0.0), 0.0);
        assert_eq!(o_overlap(10.0, 10.0, 1.0), 1.0);
        let v = o_overlap(100.0, 3.0, 2.5); // fractional y path
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn o_overlap_monotone_in_x_and_y() {
        let base = o_overlap(1000.0, 10.0, 10.0);
        assert!(o_overlap(1000.0, 20.0, 10.0) > base);
        assert!(o_overlap(1000.0, 10.0, 20.0) > base);
    }

    #[test]
    fn c_approx_r_equals_one() {
        // r=1: a single probe hits a single color whenever m ≥ 2 (first
        // branch, r < m/2); with m=1 every probe lands on the only color.
        assert_eq!(c_approx(1000.0, 100.0, 1.0), 1.0);
        assert_eq!(c_approx(1000.0, 2.0, 1.0), 1.0); // boundary r = m/2 → (1+2)/3
        // Degenerate m=1: r=1 falls in the middle branch, (1+1)/3 — the
        // approximation undershoots the true value (1) there, a known
        // property of the piecewise formula at tiny m.
        assert!((c_approx(1000.0, 1.0, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn c_approx_hand_computed_middle_branch() {
        // Hand-computed (r+m)/3 values straight from the Section 4.1 formula.
        assert!((c_approx(500.0, 10.0, 7.0) - 17.0 / 3.0).abs() < 1e-12);
        assert!((c_approx(500.0, 60.0, 100.0) - 160.0 / 3.0).abs() < 1e-12);
        // n is immaterial to the approximation.
        assert_eq!(c_approx(1.0, 60.0, 100.0), c_approx(1e9, 60.0, 100.0));
    }

    #[test]
    fn o_overlap_x_plus_y_exceeds_t() {
        // x + y > t with x,y < t: overlap is certain by pigeonhole —
        // C(t−x, y) = 0 because fewer than y objects remain outside x.
        assert_eq!(o_overlap(10.0, 6.0, 5.0), 1.0);
        assert_eq!(o_overlap(10.0, 9.0, 2.0), 1.0);
        // Exactly x + y = t leaves one disjoint arrangement: t=4, x=2, y=2
        // → miss probability C(2,2)/C(4,2) = 1/6 < 1.
        assert!(o_overlap(4.0, 2.0, 2.0) < 1.0);
    }

    #[test]
    fn o_overlap_y_equals_one_is_x_over_t() {
        // y=1: the single draw hits the x-set with probability x/t.
        for (t, x) in [(10.0, 3.0), (100.0, 25.0), (20_000.0, 1.0)] {
            let v = o_overlap(t, x, 1.0);
            assert!((v - x / t).abs() < 1e-12, "t={t} x={x}: {v}");
        }
    }
}
