//! Measured-vs-model comparison helpers for the join experiments (X1).

use mood_core::algebra::{join, Collection, JoinMethod, JoinRhs, Obj};
use mood_core::cost::{join_cost, ClassInfo, IndexParams, JoinInputs, DEFAULT_CPU_COST};
use mood_core::{Mood, Oid, PhysicalParams};

/// One measured join execution.
#[derive(Debug, Clone)]
pub struct JoinMeasurement {
    pub method: JoinMethod,
    pub k_c: usize,
    /// Physical page reads by category.
    pub seq_pages: u64,
    pub rnd_pages: u64,
    pub idx_pages: u64,
    /// Modelled time for the measured access pattern.
    pub measured_model_seconds: f64,
    /// The §6 formula's predicted cost.
    pub predicted_seconds: f64,
    /// Join output size (sanity: all methods agree).
    pub pairs: usize,
}

/// Execute a `C.d = D.self` join over the first `k_c` C-objects with the
/// given method, measuring physical page reads.
pub fn measured_join_pages(
    db: &Mood,
    c_oids: &[Oid],
    k_c: usize,
    method: JoinMethod,
    params: &PhysicalParams,
) -> JoinMeasurement {
    let catalog = db.catalog();
    let subset: Vec<Obj> = c_oids[..k_c.min(c_oids.len())]
        .iter()
        .map(|&oid| {
            let (_, v) = catalog.get_object(oid).expect("generated object");
            Obj::stored(oid, v)
        })
        .collect();
    let left = Collection::Extent(subset);
    let metrics = db.metrics();
    metrics.reset();
    let before = metrics.snapshot();
    let pairs = join(catalog, &left, "d", JoinRhs::Class("D"), method).expect("join runs");
    let delta = metrics.snapshot().delta(&before);
    JoinMeasurement {
        method,
        k_c,
        seq_pages: delta.seq_pages,
        rnd_pages: delta.rnd_pages,
        idx_pages: delta.idx_pages,
        measured_model_seconds: params.time(&delta),
        predicted_seconds: model_join_cost(db, k_c, method, params).unwrap_or(f64::NAN),
        pairs: pairs.len(),
    }
}

/// The §6 formula prediction for the same join.
///
/// One deliberate deviation: the §6.2 backward-traversal CPU term is
/// `k_c·fan·k_d·CPUCOST` (a 1994 nested loop). Our executor tests
/// membership through a hash map built during the D scan, so the model
/// here charges the D scan plus one probe per reference — the cost the
/// implementation actually pays. The paper's formula is kept verbatim in
/// `mood-cost` (it is what the optimizer reproduces); this function models
/// the *measured harness*.
pub fn model_join_cost(
    db: &Mood,
    k_c: usize,
    method: JoinMethod,
    params: &PhysicalParams,
) -> Option<f64> {
    let stats = db.catalog().stats();
    let c = stats.class("C")?;
    let d = stats.class("D")?;
    let r = stats.reference("C", "d")?;
    let index = stats.index("C", "d").map(IndexParams::from_stats);
    if method == JoinMethod::BackwardTraversal {
        // D extent scan + hash probes (left side is already in memory).
        return Some(
            mood_core::cost::seqcost(params, d.nbpages as f64)
                + k_c as f64 * r.fan * DEFAULT_CPU_COST,
        );
    }
    if method == JoinMethod::BinaryJoinIndex {
        // The implementation enumerates D by one extent scan and probes
        // the binary join index once per D object; §6.3's bjc = INDCOST(k)
        // is the probe part of that.
        let ix = index?;
        return Some(
            mood_core::cost::seqcost(params, d.nbpages as f64)
                + mood_core::cost::indcost(params, &ix, d.cardinality as f64),
        );
    }
    let j = JoinInputs {
        k_c: k_c as f64,
        k_d: d.cardinality as f64,
        c: ClassInfo {
            cardinality: c.cardinality as f64,
            nbpages: c.nbpages as f64,
        },
        d: ClassInfo {
            cardinality: d.cardinality as f64,
            nbpages: d.nbpages as f64,
        },
        fan: r.fan,
        totref: r.totref as f64,
        index,
        d_already_accessed: false,
        cpu_cost: DEFAULT_CPU_COST,
        // The measured harness hands the k_c objects to the join already
        // materialized.
        c_in_memory: true,
        d_in_memory: false,
    };
    join_cost(params, method, &j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{build_ref_db, RefDbSpec};

    #[test]
    fn all_methods_agree_and_have_distinct_io_shapes() {
        let spec = RefDbSpec {
            n_c: 600,
            n_d: 200,
            join_index: true,
            ..Default::default()
        };
        let (db, c_oids, _) = build_ref_db(&spec);
        let params = PhysicalParams::salzberg_1988();
        let mut sizes = Vec::new();
        let mut by_method = Vec::new();
        for method in [
            JoinMethod::ForwardTraversal,
            JoinMethod::BackwardTraversal,
            JoinMethod::BinaryJoinIndex,
            JoinMethod::HashPartition,
        ] {
            let m = measured_join_pages(&db, &c_oids, 600, method, &params);
            sizes.push(m.pairs);
            by_method.push(m);
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "methods agree: {sizes:?}"
        );
        // The index method reads index pages; the others don't.
        let idx = &by_method[2];
        assert!(idx.idx_pages > 0, "{idx:?}");
        assert_eq!(by_method[0].idx_pages, 0);
    }

    #[test]
    fn model_costs_are_finite_and_ordered_sanely() {
        let spec = RefDbSpec::default();
        let (db, _, _) = build_ref_db(&spec);
        let params = PhysicalParams::salzberg_1988();
        // Forward cost grows with k_c; hash partition is sublinear in k_c.
        let f_small = model_join_cost(&db, 10, JoinMethod::ForwardTraversal, &params).unwrap();
        let f_big = model_join_cost(&db, 2000, JoinMethod::ForwardTraversal, &params).unwrap();
        assert!(f_small < f_big);
        let h_big = model_join_cost(&db, 2000, JoinMethod::HashPartition, &params).unwrap();
        assert!(h_big < f_big, "hash beats forward at full extent");
    }
}
