//! Runtime values of the MOOD data model.

use std::cmp::Ordering;
use std::fmt;

use mood_storage::Oid;

use crate::types::{BasicType, TypeDescriptor};

/// A value: an instance of a basic type or of a constructor application.
///
/// `Ref` holds a physical OID; equality on `Ref` is identity (same object).
/// Deep (value) equality, which dereferences, lives in [`crate::deep`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Integer(i32),
    Float(f64),
    LongInteger(i64),
    String(String),
    Char(char),
    Boolean(bool),
    /// Named fields in declaration order.
    Tuple(Vec<(String, Value)>),
    /// Unordered collection; stored order is insertion order, semantics are
    /// set semantics (operators deduplicate).
    Set(Vec<Value>),
    /// Ordered collection.
    List(Vec<Value>),
    /// Reference to another object.
    Ref(Oid),
    /// Null (the cost model's `notnull(A,C)` is about exactly these).
    Null,
}

impl Value {
    pub fn tuple(fields: Vec<(&str, Value)>) -> Value {
        Value::Tuple(
            fields
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        )
    }

    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// The basic type of an atomic value.
    pub fn basic_type(&self) -> Option<BasicType> {
        Some(match self {
            Value::Integer(_) => BasicType::Integer,
            Value::Float(_) => BasicType::Float,
            Value::LongInteger(_) => BasicType::LongInteger,
            Value::String(_) => BasicType::String,
            Value::Char(_) => BasicType::Char,
            Value::Boolean(_) => BasicType::Boolean,
            _ => return None,
        })
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Tuple field access.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Tuple(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Replace (or add) a tuple field, returning whether it existed.
    pub fn set_field(&mut self, name: &str, value: Value) -> bool {
        if let Value::Tuple(fields) = self {
            for (n, v) in fields.iter_mut() {
                if n == name {
                    *v = value;
                    return true;
                }
            }
            fields.push((name.to_string(), value));
        }
        false
    }

    /// Numeric view for coercing comparisons/arithmetic.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::LongInteger(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(oid) => Some(*oid),
            _ => None,
        }
    }

    /// Does this value conform to `ty`? Reference class names are checked
    /// by the catalog layer (which knows the hierarchy); here any `Ref`
    /// matches any `Reference`, and `Null` matches everything.
    pub fn matches(&self, ty: &TypeDescriptor) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (v, TypeDescriptor::Basic(b)) => v.basic_type() == Some(*b),
            (Value::Tuple(fields), TypeDescriptor::Tuple(ftypes)) => {
                fields.len() == ftypes.len()
                    && fields
                        .iter()
                        .zip(ftypes)
                        .all(|((fname, fval), (tname, tty))| fname == tname && fval.matches(tty))
            }
            (Value::Set(items), TypeDescriptor::Set(inner)) => {
                items.iter().all(|v| v.matches(inner))
            }
            (Value::List(items), TypeDescriptor::List(inner)) => {
                items.iter().all(|v| v.matches(inner))
            }
            (Value::Ref(_), TypeDescriptor::Reference(_)) => true,
            _ => false,
        }
    }

    /// Three-way comparison with numeric coercion (Integer, LongInteger and
    /// Float compare by value, as the paper's run-time type conversion
    /// implies). Non-comparable kinds return `None`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::String(a), Value::String(b)) => Some(a.cmp(b)),
            (Value::Char(a), Value::Char(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            (Value::Ref(a), Value::Ref(b)) => Some(a.cmp(b)),
            (Value::Integer(a), Value::Integer(b)) => Some(a.cmp(b)),
            (Value::LongInteger(a), Value::LongInteger(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Shallow equality following [`Value::compare`]'s coercion (so
    /// `Integer(2) == Float(2.0)` for predicate purposes).
    pub fn equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((an, av), (bn, bv))| an == bn && av.equals(bv))
            }
            (Value::Set(a), Value::Set(b)) => {
                // Set equality: mutual containment under `equals`.
                a.len() == b.len()
                    && a.iter().all(|x| b.iter().any(|y| x.equals(y)))
                    && b.iter().all(|x| a.iter().any(|y| x.equals(y)))
            }
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.equals(y))
            }
            (Value::Null, Value::Null) => true,
            (a, b) => a.compare(b) == Some(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::LongInteger(i) => write!(f, "{i}L"),
            Value::String(s) => write!(f, "'{s}'"),
            Value::Char(c) => write!(f, "'{c}'"),
            Value::Boolean(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Tuple(fields) => {
                write!(f, "<")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, ">")
            }
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Ref(oid) => write!(f, "@{oid}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::{FileId, PageId, SlotId};

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(1), PageId(n), SlotId(0), 1)
    }

    #[test]
    fn numeric_coercion_in_compare() {
        assert_eq!(
            Value::Integer(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::LongInteger(3).compare(&Value::Integer(4)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Integer(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn non_comparable_kinds() {
        assert_eq!(Value::string("a").compare(&Value::Integer(1)), None);
        assert_eq!(Value::Boolean(true).compare(&Value::string("true")), None);
    }

    #[test]
    fn equals_coerces_numerics() {
        assert!(Value::Integer(7).equals(&Value::Float(7.0)));
        assert!(!Value::Integer(7).equals(&Value::Float(7.5)));
    }

    #[test]
    fn set_equality_is_order_insensitive() {
        let a = Value::Set(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Value::Set(vec![Value::Integer(2), Value::Integer(1)]);
        assert!(a.equals(&b));
        let c = Value::Set(vec![Value::Integer(1)]);
        assert!(!a.equals(&c));
    }

    #[test]
    fn list_equality_is_order_sensitive() {
        let a = Value::List(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Value::List(vec![Value::Integer(2), Value::Integer(1)]);
        assert!(!a.equals(&b));
    }

    #[test]
    fn tuple_field_access_and_update() {
        let mut v = Value::tuple(vec![
            ("id", Value::Integer(1)),
            ("name", Value::string("BMW")),
        ]);
        assert_eq!(v.field("name"), Some(&Value::string("BMW")));
        assert!(v.set_field("name", Value::string("Audi")));
        assert_eq!(v.field("name"), Some(&Value::string("Audi")));
        assert_eq!(v.field("nope"), None);
    }

    #[test]
    fn matches_type_descriptors() {
        let ty = TypeDescriptor::tuple(vec![
            ("id", TypeDescriptor::integer()),
            ("manufacturer", TypeDescriptor::reference("Company")),
            ("tags", TypeDescriptor::set_of(TypeDescriptor::string())),
        ]);
        let v = Value::tuple(vec![
            ("id", Value::Integer(9)),
            ("manufacturer", Value::Ref(oid(3))),
            ("tags", Value::Set(vec![Value::string("fast")])),
        ]);
        assert!(v.matches(&ty));
        let bad = Value::tuple(vec![
            ("id", Value::string("nine")),
            ("manufacturer", Value::Ref(oid(3))),
            ("tags", Value::Set(vec![])),
        ]);
        assert!(!bad.matches(&ty));
        // Null matches anything (nullable attributes).
        assert!(Value::Null.matches(&ty));
    }

    #[test]
    fn display_is_readable() {
        let v = Value::tuple(vec![
            ("id", Value::Integer(1)),
            ("ok", Value::Boolean(true)),
        ]);
        assert_eq!(v.to_string(), "<id: 1, ok: TRUE>");
        assert_eq!(Value::Set(vec![Value::Integer(1)]).to_string(), "{1}");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn refs_compare_by_oid() {
        assert!(Value::Ref(oid(1)).equals(&Value::Ref(oid(1))));
        assert!(!Value::Ref(oid(1)).equals(&Value::Ref(oid(2))));
    }
}
