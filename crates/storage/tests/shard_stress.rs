//! Multi-threaded stress tests for the sharded buffer pool: lost updates,
//! double-framing across shards, per-shard metrics telescoping, and the
//! scan-resistant replacement policy protecting the B-tree hot set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mood_storage::{
    AccessKind, BTree, BufferPool, Disk, DiskMetrics, FileId, HeapFile, MemDisk, MetricsSnapshot,
    Oid, Page, PageId, Result as StorageResult, SlotId,
};

/// SplitMix64 — deterministic per-thread mixing without a rand dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// 8 threads x mixed increment/point-get/scan over a pool far smaller than
/// the working set. Asserts: no lost updates (per-page counters sum to the
/// number of increments), no page ever held by two frames, and the pool's
/// process totals equal the componentwise sum of the per-shard slices.
#[test]
fn mixed_workload_has_no_lost_updates_or_double_frames() {
    const THREADS: u64 = 8;
    const OPS: u64 = 400;
    const COUNTER_PAGES: u32 = 64;

    let disk = Arc::new(MemDisk::new());
    let metrics = DiskMetrics::new();
    // 16 frames (4 shards x 4) against a 64-page counter file plus a heap:
    // constant eviction pressure.
    let pool = Arc::new(BufferPool::new(disk.clone(), 16, metrics.clone()));
    let counters = disk.create_file().unwrap();
    for _ in 0..COUNTER_PAGES {
        let pid = disk.allocate_page(counters).unwrap();
        pool.with_page_mut(counters, pid, AccessKind::Random, |p| {
            p.data[0..8].copy_from_slice(&0u64.to_le_bytes());
        })
        .unwrap();
    }
    let heap = Arc::new(HeapFile::create(pool.clone()).unwrap());
    let seed_oids: Arc<Vec<Oid>> = Arc::new(
        (0..200u32)
            .map(|i| heap.insert(format!("seed-{i:04}").as_bytes()).unwrap())
            .collect(),
    );

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = pool.clone();
            let heap = heap.clone();
            let seed_oids = seed_oids.clone();
            s.spawn(move || {
                for op in 0..OPS {
                    let r = mix(t * 1_000_003 + op);
                    match r % 4 {
                        // Increment a counter page (read-modify-write under
                        // the checkout protocol).
                        0 | 1 => {
                            let pid = PageId((r >> 8) as u32 % COUNTER_PAGES);
                            pool.with_page_mut(counters, pid, AccessKind::Random, |p| {
                                let v = u64::from_le_bytes(p.data[0..8].try_into().unwrap());
                                std::thread::yield_now(); // widen the race window
                                p.data[0..8].copy_from_slice(&(v + 1).to_le_bytes());
                            })
                            .unwrap();
                        }
                        // Point-get a seeded heap record.
                        2 => {
                            let oid = seed_oids[(r >> 8) as usize % seed_oids.len()];
                            let bytes = heap.get(oid).unwrap();
                            assert!(bytes.starts_with(b"seed-"));
                        }
                        // Insert, then scan a slice of the heap.
                        _ => {
                            heap.insert(format!("t{t}-{op}").as_bytes()).unwrap();
                            let pages = heap.pages().unwrap();
                            let start = (r >> 16) as u32 % pages;
                            heap.scan_range_with(start, (start + 4).min(pages), |_, _| true)
                                .unwrap();
                        }
                    }
                }
            });
        }
    });

    // No lost updates: every increment landed.
    let increments: u64 = (0..THREADS * OPS)
        .filter(|i| {
            let (t, op) = (i / OPS, i % OPS);
            mix(t * 1_000_003 + op) % 4 <= 1
        })
        .count() as u64;
    let mut total = 0u64;
    for p in 0..COUNTER_PAGES {
        total += pool
            .with_page(counters, PageId(p), AccessKind::Random, |p| {
                u64::from_le_bytes(p.data[0..8].try_into().unwrap())
            })
            .unwrap();
    }
    assert_eq!(total, increments, "lost update under concurrency");

    // No page is ever cached by two frames (one shard owns each page).
    for p in 0..COUNTER_PAGES {
        assert!(
            pool.frames_holding(counters, PageId(p)) <= 1,
            "page {p} double-framed"
        );
    }
    for p in 0..heap.pages().unwrap() {
        assert!(pool.frames_holding(heap.file_id(), PageId(p)) <= 1);
    }

    // Per-shard accounting telescopes to the process totals exactly.
    let totals = metrics.snapshot();
    let sum = pool
        .shard_snapshots()
        .into_iter()
        .fold(MetricsSnapshot::default(), |acc, s| acc.plus(&s));
    assert_eq!(sum, totals, "shard slices must sum to pool totals");
    assert!(totals.buffer_evictions > 0, "workload must thrash the pool");
}

/// A full-extent sweep over a file much larger than the pool must not
/// degrade the hit ratio on the hot B-tree pages: the root stays resident
/// and a post-sweep lookup costs zero additional index-page reads.
#[test]
fn btree_hot_set_survives_full_extent_sweep() {
    let disk = Arc::new(MemDisk::new());
    let metrics = DiskMetrics::new();
    // 16 frames = 4 shards x 4; the sweep file is ~10x bigger.
    let pool = Arc::new(BufferPool::new(disk.clone(), 16, metrics.clone()));
    let tree = BTree::create(pool.clone(), true).unwrap();
    let key = |i: u32| i.to_be_bytes();
    let oid = |i: u32| Oid::new(tree.file_id(), PageId(i / 100), SlotId((i % 100) as u16), 1);
    for i in 0..2000u32 {
        tree.insert(&key(i), oid(i)).unwrap();
    }

    let heap = HeapFile::create(pool.clone()).unwrap();
    while heap.pages().unwrap() < 160 {
        heap.insert(&vec![7u8; 400]).unwrap();
    }

    // Seed every shard with evictable (cold) frames, so the pool is not
    // wall-to-wall hot pages left over from the index build.
    for p in 0..16u32 {
        pool.with_page(heap.file_id(), PageId(p), AccessKind::Sequential, |_| {})
            .unwrap();
    }
    // Warm the lookup path: root, inner, leaf load as Index (hot) pages.
    tree.lookup(&key(1000)).unwrap();
    let root = pool
        .with_page(tree.file_id(), PageId(0), AccessKind::Index, |p| {
            PageId(u32::from_le_bytes(p.data[4..8].try_into().unwrap()))
        })
        .unwrap();
    assert!(pool.is_resident(tree.file_id(), root));

    // Warm path verified: a second lookup is pure buffer hits.
    let before = metrics.snapshot();
    assert_eq!(tree.lookup(&key(1000)).unwrap(), vec![oid(1000)]);
    let warm = metrics.snapshot().delta(&before);
    assert_eq!(warm.idx_pages, 0, "warm lookup must be all hits");

    // The sweep: ten pool capacities of sequential pages.
    let mut visited = 0u64;
    heap.scan_with(|_, _| {
        visited += 1;
        true
    })
    .unwrap();
    assert!(visited > 0);

    // Hot index pages were untouched: root still resident, and the same
    // lookup still costs zero index-page reads — the hit ratio on the hot
    // set is unchanged by the sweep.
    assert!(
        pool.is_resident(tree.file_id(), root),
        "sweep evicted the B-tree root"
    );
    let before = metrics.snapshot();
    assert_eq!(tree.lookup(&key(1000)).unwrap(), vec![oid(1000)]);
    let after = metrics.snapshot().delta(&before);
    assert_eq!(
        after.idx_pages, 0,
        "post-sweep lookup must hit the still-resident hot set"
    );
    assert_eq!(after.buffer_misses, 0);
}

/// Regression for the readahead stale-install race: a prefetch batch read
/// runs with no locks held, so without frame reservation another thread
/// could load the same page, dirty it, and have it evicted (written back)
/// mid-read — after which installing the prefetched buffer would publish
/// the stale pre-update image as clean and lose the committed write. The
/// pool now reserves every window page (published in the shard map, marked
/// checked out) *before* the read; concurrent writers wait for the fill.
///
/// The gated disk completes the underlying batch read first and then holds
/// the call open, stretching the read-to-install window to a controlled
/// interval the writer thread races into.
#[test]
fn prefetch_cannot_clobber_concurrent_update() {
    struct GatedDisk {
        inner: MemDisk,
        gate_open: AtomicBool,
        batch_entered: AtomicBool,
    }
    impl Disk for GatedDisk {
        fn create_file(&self) -> StorageResult<FileId> {
            self.inner.create_file()
        }
        fn drop_file(&self, file: FileId) -> StorageResult<()> {
            self.inner.drop_file(file)
        }
        fn page_count(&self, file: FileId) -> StorageResult<u32> {
            self.inner.page_count(file)
        }
        fn allocate_page(&self, file: FileId) -> StorageResult<PageId> {
            self.inner.allocate_page(file)
        }
        fn read_page(&self, file: FileId, page: PageId, buf: &mut Page) -> StorageResult<()> {
            self.inner.read_page(file, page, buf)
        }
        fn read_pages(&self, file: FileId, start: PageId, bufs: &mut [Page]) -> StorageResult<()> {
            // Read first, then stall: the caller sits on already-fetched
            // (potentially stale) bytes until the test opens the gate.
            let r = self.inner.read_pages(file, start, bufs);
            self.batch_entered.store(true, Ordering::SeqCst);
            while !self.gate_open.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            r
        }
        fn write_page(&self, file: FileId, page: PageId, data: &Page) -> StorageResult<()> {
            self.inner.write_page(file, page, data)
        }
        fn sync(&self) -> StorageResult<()> {
            self.inner.sync()
        }
        fn files(&self) -> Vec<FileId> {
            self.inner.files()
        }
    }

    let disk = Arc::new(GatedDisk {
        inner: MemDisk::new(),
        gate_open: AtomicBool::new(false),
        batch_entered: AtomicBool::new(false),
    });
    // 16 frames = 4 shards x 4, readahead window 2: small enough that the
    // writer's sweep below evicts its dirtied page under the old design.
    let pool = Arc::new(BufferPool::new(disk.clone(), 16, DiskMetrics::new()));
    let f = disk.create_file().unwrap();
    for _ in 0..32 {
        disk.allocate_page(f).unwrap();
    }
    assert!(pool.readahead_window() >= 2);

    std::thread::scope(|s| {
        let prefetcher = {
            let pool = pool.clone();
            s.spawn(move || pool.prefetch_sequential(f, PageId(0), 8))
        };
        while !disk.batch_entered.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The batch covering page 0 has been read but not installed. A
        // writer must wait on the reservation rather than load its own
        // copy, dirty it, and have it written back behind the reader.
        let writer = {
            let pool = pool.clone();
            s.spawn(move || {
                pool.with_page_mut(f, PageId(0), AccessKind::Random, |p| p.data[0] = 99)
                    .unwrap();
                // Eviction pressure on page 0's shard: under the old
                // check-at-install design this flushed the update to disk
                // and let the stale batch image replace it.
                for p in (4..32u32).filter(|p| p % 4 == 0) {
                    pool.with_page(f, PageId(p), AccessKind::Random, |_| {})
                        .unwrap();
                }
            })
        };
        // Let the writer run (it blocks on the checked-out page), then
        // release the install.
        std::thread::sleep(Duration::from_millis(50));
        disk.gate_open.store(true, Ordering::SeqCst);
        prefetcher.join().unwrap();
        writer.join().unwrap();
    });

    let v = pool
        .with_page(f, PageId(0), AccessKind::Random, |p| p.data[0])
        .unwrap();
    assert_eq!(v, 99, "prefetch install clobbered a concurrent update");
    assert!(pool.frames_holding(f, PageId(0)) <= 1);
}
