//! `OperandDataType` — run-time typed operands for the SQL interpreter.
//!
//! Section 2: "For interpretation of arithmetic and Boolean expressions,
//! the types of operands are necessary at run time. This information is
//! provided by the class OperandDataType. [...] The code for the
//! interpretation of arithmetic and Boolean expressions mainly overloads
//! addition, subtraction, multiplication, division and mode operation
//! operators in the order (+, -, *, /, %) for arithmetic expressions. It
//! evaluates AND, OR, NOT, and comparison operators for Boolean
//! expressions. Type checking and conversion of results are performed at
//! run-time."
//!
//! The paper's own example mixes INT16, INT32 and DOUBLE, so the numeric
//! tower here is I16 < I32 < I64 < F64; the result type of a binary
//! operation is the wider operand's type, and assignment casts (as in the
//! paper's `z = (x*3 + x%3) * (y/4*5)` example) are explicit via
//! [`OperandDataType::cast`].

use std::cmp::Ordering;

use mood_datamodel::Value;

use crate::exception::{Exception, ExceptionKind};

/// Run-time numeric type tags, ordered by width for promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NumKind {
    Int16,
    Int32,
    Int64,
    Double,
}

/// A dynamically typed operand.
#[derive(Debug, Clone, PartialEq)]
pub enum OperandDataType {
    I16(i16),
    I32(i32),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    Char(char),
    Null,
}

use OperandDataType as Op;

/// Numeric view of an atomic [`Value`] (the coercion [`Op::as_f64`] applies
/// after wrapping), borrowed — no operand materialization.
fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Integer(i) => Some(*i as f64),
        Value::LongInteger(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

impl OperandDataType {
    /// Wrap a data-model value.
    pub fn from_value(v: &Value) -> Result<Op, Exception> {
        Ok(match v {
            Value::Integer(i) => Op::I32(*i),
            Value::LongInteger(i) => Op::I64(*i),
            Value::Float(f) => Op::F64(*f),
            Value::Boolean(b) => Op::Bool(*b),
            Value::String(s) => Op::Str(s.clone()),
            Value::Char(c) => Op::Char(*c),
            Value::Null => Op::Null,
            other => {
                return Err(Exception::type_error(format!(
                    "operand must be atomic, got {other}"
                )))
            }
        })
    }

    /// Back to a data-model value.
    pub fn into_value(self) -> Value {
        match self {
            Op::I16(i) => Value::Integer(i as i32),
            Op::I32(i) => Value::Integer(i),
            Op::I64(i) => Value::LongInteger(i),
            Op::F64(f) => Value::Float(f),
            Op::Bool(b) => Value::Boolean(b),
            Op::Str(s) => Value::String(s),
            Op::Char(c) => Value::Char(c),
            Op::Null => Value::Null,
        }
    }

    fn num_kind(&self) -> Option<NumKind> {
        match self {
            Op::I16(_) => Some(NumKind::Int16),
            Op::I32(_) => Some(NumKind::Int32),
            Op::I64(_) => Some(NumKind::Int64),
            Op::F64(_) => Some(NumKind::Double),
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match self {
            Op::I16(i) => Some(*i as i64),
            Op::I32(i) => Some(*i as i64),
            Op::I64(i) => Some(*i),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Op::I16(i) => Some(*i as f64),
            Op::I32(i) => Some(*i as f64),
            Op::I64(i) => Some(*i as f64),
            Op::F64(f) => Some(*f),
            _ => None,
        }
    }

    fn promote(a: &Op, b: &Op, op: &str) -> Result<NumKind, Exception> {
        match (a.num_kind(), b.num_kind()) {
            (Some(x), Some(y)) => Ok(x.max(y)),
            _ => Err(Exception::type_error(format!(
                "operator {op} needs numeric operands, got {a:?} and {b:?}"
            ))),
        }
    }

    fn from_i64(kind: NumKind, v: i64) -> Result<Op, Exception> {
        Ok(match kind {
            NumKind::Int16 => Op::I16(i16::try_from(v).map_err(|_| {
                Exception::new(ExceptionKind::Overflow, format!("{v} overflows INT16"))
            })?),
            NumKind::Int32 => Op::I32(i32::try_from(v).map_err(|_| {
                Exception::new(ExceptionKind::Overflow, format!("{v} overflows INT32"))
            })?),
            NumKind::Int64 => Op::I64(v),
            NumKind::Double => Op::F64(v as f64),
        })
    }

    fn arith(
        &self,
        other: &Op,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        f_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Op, Exception> {
        // String concatenation piggybacks on `+` like the C++ operator did.
        if op == "+" {
            if let (Op::Str(a), Op::Str(b)) = (self, other) {
                return Ok(Op::Str(format!("{a}{b}")));
            }
        }
        if matches!(self, Op::Null) || matches!(other, Op::Null) {
            return Ok(Op::Null); // nulls propagate through arithmetic
        }
        let kind = Op::promote(self, other, op)?;
        if kind == NumKind::Double {
            let (x, y) = (
                self.as_f64().expect("numeric"),
                other.as_f64().expect("numeric"),
            );
            if (op == "/" || op == "%") && y == 0.0 {
                return Err(Exception::division_by_zero());
            }
            return Ok(Op::F64(f_op(x, y)));
        }
        let (x, y) = (
            self.as_i64().expect("numeric"),
            other.as_i64().expect("numeric"),
        );
        if (op == "/" || op == "%") && y == 0 {
            return Err(Exception::division_by_zero());
        }
        let v = int_op(x, y)
            .ok_or_else(|| Exception::new(ExceptionKind::Overflow, format!("{x} {op} {y}")))?;
        Op::from_i64(kind, v)
    }

    /// `+` (numeric addition; string concatenation).
    pub fn add(&self, other: &Op) -> Result<Op, Exception> {
        self.arith(other, "+", i64::checked_add, |a, b| a + b)
    }

    /// `-`.
    pub fn sub(&self, other: &Op) -> Result<Op, Exception> {
        self.arith(other, "-", i64::checked_sub, |a, b| a - b)
    }

    /// `*`.
    pub fn mul(&self, other: &Op) -> Result<Op, Exception> {
        self.arith(other, "*", i64::checked_mul, |a, b| a * b)
    }

    /// `/` (integer division on integer operands, like C++).
    pub fn div(&self, other: &Op) -> Result<Op, Exception> {
        self.arith(other, "/", i64::checked_div, |a, b| a / b)
    }

    /// `%` — the paper's "mode operation".
    pub fn rem(&self, other: &Op) -> Result<Op, Exception> {
        self.arith(other, "%", i64::checked_rem, |a, b| a % b)
    }

    /// Unary minus.
    pub fn neg(&self) -> Result<Op, Exception> {
        Op::I32(0).sub(self)
    }

    /// AND with null propagation (three-valued logic is collapsed: Null
    /// counts as unknown → Null).
    pub fn and(&self, other: &Op) -> Result<Op, Exception> {
        match (self, other) {
            (Op::Bool(false), _) | (_, Op::Bool(false)) => Ok(Op::Bool(false)),
            (Op::Null, _) | (_, Op::Null) => Ok(Op::Null),
            (Op::Bool(a), Op::Bool(b)) => Ok(Op::Bool(*a && *b)),
            _ => Err(Exception::type_error("AND needs Boolean operands")),
        }
    }

    /// OR with null propagation.
    pub fn or(&self, other: &Op) -> Result<Op, Exception> {
        match (self, other) {
            (Op::Bool(true), _) | (_, Op::Bool(true)) => Ok(Op::Bool(true)),
            (Op::Null, _) | (_, Op::Null) => Ok(Op::Null),
            (Op::Bool(a), Op::Bool(b)) => Ok(Op::Bool(*a || *b)),
            _ => Err(Exception::type_error("OR needs Boolean operands")),
        }
    }

    /// NOT.
    pub fn not(&self) -> Result<Op, Exception> {
        match self {
            Op::Bool(b) => Ok(Op::Bool(!b)),
            Op::Null => Ok(Op::Null),
            _ => Err(Exception::type_error("NOT needs a Boolean operand")),
        }
    }

    /// Three-way comparison (numeric coercion; strings/chars/bools compare
    /// within their own kind). Null compares as unknown → `None`.
    pub fn compare(&self, other: &Op) -> Result<Option<Ordering>, Exception> {
        if matches!(self, Op::Null) || matches!(other, Op::Null) {
            return Ok(None);
        }
        match (self, other) {
            (Op::Str(a), Op::Str(b)) => Ok(Some(a.cmp(b))),
            (Op::Char(a), Op::Char(b)) => Ok(Some(a.cmp(b))),
            (Op::Bool(a), Op::Bool(b)) => Ok(Some(a.cmp(b))),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(x.partial_cmp(&y)),
                _ => Err(Exception::type_error(format!(
                    "cannot compare {a:?} with {b:?}"
                ))),
            },
        }
    }

    /// Comparison operators; Null operands yield Null (unknown).
    pub fn cmp_op(&self, op: &str, other: &Op) -> Result<Op, Exception> {
        let Some(ord) = self.compare(other)? else {
            return Ok(Op::Null);
        };
        let b = match op {
            "=" => ord == Ordering::Equal,
            "<>" => ord != Ordering::Equal,
            "<" => ord == Ordering::Less,
            "<=" => ord != Ordering::Greater,
            ">" => ord == Ordering::Greater,
            ">=" => ord != Ordering::Less,
            _ => return Err(Exception::type_error(format!("unknown comparison {op}"))),
        };
        Ok(Op::Bool(b))
    }

    /// Reject non-atomic values with the exact error [`Op::from_value`]
    /// raises, without materializing an operand.
    pub fn ensure_atomic(v: &Value) -> Result<(), Exception> {
        match v {
            Value::Integer(_)
            | Value::LongInteger(_)
            | Value::Float(_)
            | Value::Boolean(_)
            | Value::String(_)
            | Value::Char(_)
            | Value::Null => Ok(()),
            other => Err(Exception::type_error(format!(
                "operand must be atomic, got {other}"
            ))),
        }
    }

    /// Borrow-based [`Op::compare`]: identical semantics (Null → unknown,
    /// same-kind strings/chars/bools, numeric coercion through f64) without
    /// cloning operands — the hot path for per-row comparisons. Callers must
    /// [`Op::ensure_atomic`] both sides first.
    pub fn compare_values(a: &Value, b: &Value) -> Result<Option<Ordering>, Exception> {
        if matches!(a, Value::Null) || matches!(b, Value::Null) {
            return Ok(None);
        }
        match (a, b) {
            (Value::String(x), Value::String(y)) => Ok(Some(x.cmp(y))),
            (Value::Char(x), Value::Char(y)) => Ok(Some(x.cmp(y))),
            (Value::Boolean(x), Value::Boolean(y)) => Ok(Some(x.cmp(y))),
            _ => match (value_as_f64(a), value_as_f64(b)) {
                (Some(x), Some(y)) => Ok(x.partial_cmp(&y)),
                // Error path only: materialize for the same Debug rendering
                // Op::compare produces.
                _ => {
                    let (x, y) = (Op::from_value(a)?, Op::from_value(b)?);
                    Err(Exception::type_error(format!(
                        "cannot compare {x:?} with {y:?}"
                    )))
                }
            },
        }
    }

    /// Borrow-based [`Op::cmp_op`]: comparison by symbol, Null → Null.
    pub fn cmp_op_values(op: &str, a: &Value, b: &Value) -> Result<Value, Exception> {
        let Some(ord) = Op::compare_values(a, b)? else {
            return Ok(Value::Null);
        };
        let r = match op {
            "=" => ord == Ordering::Equal,
            "<>" => ord != Ordering::Equal,
            "<" => ord == Ordering::Less,
            "<=" => ord != Ordering::Greater,
            ">" => ord == Ordering::Greater,
            ">=" => ord != Ordering::Less,
            _ => return Err(Exception::type_error(format!("unknown comparison {op}"))),
        };
        Ok(Value::Boolean(r))
    }

    /// Assignment cast — the paper's "result's type is casted to double
    /// since z is double".
    pub fn cast(&self, kind: NumKind) -> Result<Op, Exception> {
        match kind {
            NumKind::Double => self
                .as_f64()
                .map(Op::F64)
                .ok_or_else(|| Exception::type_error("cannot cast to DOUBLE")),
            _ => {
                let v = match self {
                    Op::F64(f) => *f as i64,
                    other => other
                        .as_i64()
                        .ok_or_else(|| Exception::type_error("cannot cast to integer"))?,
                };
                Op::from_i64(kind, v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_expression() {
        // OperandDataType x(INT16), y(INT32), z(DOUBLE);
        // x = 10; y = 13; z = (x*3 + x%3) * (y/4*5)
        let x = Op::I16(10);
        let y = Op::I32(13);
        let inner_left = x
            .mul(&Op::I16(3))
            .unwrap()
            .add(&x.rem(&Op::I16(3)).unwrap())
            .unwrap();
        let inner_right = y.div(&Op::I32(4)).unwrap().mul(&Op::I32(5)).unwrap();
        let z = inner_left
            .mul(&inner_right)
            .unwrap()
            .cast(NumKind::Double)
            .unwrap();
        // x*3 = 30, x%3 = 1 → 31; y/4 = 3 (integer division), *5 = 15;
        // 31*15 = 465, cast to double.
        assert_eq!(z, Op::F64(465.0));
    }

    #[test]
    fn promotion_follows_width() {
        assert_eq!(Op::I16(1).add(&Op::I32(2)).unwrap(), Op::I32(3));
        assert_eq!(Op::I32(1).add(&Op::I64(2)).unwrap(), Op::I64(3));
        assert_eq!(Op::I64(1).add(&Op::F64(0.5)).unwrap(), Op::F64(1.5));
    }

    #[test]
    fn division_by_zero_raises() {
        assert_eq!(
            Op::I32(1).div(&Op::I32(0)),
            Err(Exception::division_by_zero())
        );
        assert_eq!(
            Op::I32(1).rem(&Op::I32(0)),
            Err(Exception::division_by_zero())
        );
        assert_eq!(
            Op::F64(1.0).div(&Op::F64(0.0)),
            Err(Exception::division_by_zero())
        );
    }

    #[test]
    fn overflow_detected_in_narrow_types() {
        let e = Op::I16(30_000).add(&Op::I16(30_000)).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::Overflow);
        // The same values promote safely at I32.
        assert_eq!(
            Op::I32(30_000).add(&Op::I32(30_000)).unwrap(),
            Op::I32(60_000)
        );
    }

    #[test]
    fn string_concatenation_on_plus() {
        assert_eq!(
            Op::Str("MOOD".into()).add(&Op::Str("SQL".into())).unwrap(),
            Op::Str("MOODSQL".into())
        );
        assert!(Op::Str("x".into()).sub(&Op::Str("y".into())).is_err());
    }

    #[test]
    fn type_errors_on_mixed_kinds() {
        assert!(Op::Bool(true).add(&Op::I32(1)).is_err());
        assert!(Op::Str("a".into()).mul(&Op::I32(2)).is_err());
        assert!(Op::I32(1).and(&Op::Bool(true)).is_err());
    }

    #[test]
    fn boolean_logic_with_nulls() {
        assert_eq!(Op::Bool(false).and(&Op::Null).unwrap(), Op::Bool(false));
        assert_eq!(Op::Bool(true).and(&Op::Null).unwrap(), Op::Null);
        assert_eq!(Op::Bool(true).or(&Op::Null).unwrap(), Op::Bool(true));
        assert_eq!(Op::Bool(false).or(&Op::Null).unwrap(), Op::Null);
        assert_eq!(Op::Null.not().unwrap(), Op::Null);
    }

    #[test]
    fn comparisons_coerce_numerics() {
        assert_eq!(
            Op::I32(2).cmp_op("=", &Op::F64(2.0)).unwrap(),
            Op::Bool(true)
        );
        assert_eq!(Op::I16(3).cmp_op("<", &Op::I64(4)).unwrap(), Op::Bool(true));
        assert_eq!(
            Op::Str("BMW".into())
                .cmp_op("<>", &Op::Str("Audi".into()))
                .unwrap(),
            Op::Bool(true)
        );
        // Null comparisons are unknown.
        assert_eq!(Op::Null.cmp_op("=", &Op::I32(1)).unwrap(), Op::Null);
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Op::Null.add(&Op::I32(5)).unwrap(), Op::Null);
        assert_eq!(Op::F64(1.0).mul(&Op::Null).unwrap(), Op::Null);
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::Integer(5),
            Value::Float(2.5),
            Value::LongInteger(9),
            Value::Boolean(true),
            Value::string("s"),
            Value::Char('q'),
            Value::Null,
        ] {
            assert_eq!(Op::from_value(&v).unwrap().into_value(), v);
        }
        assert!(Op::from_value(&Value::Set(vec![])).is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(Op::F64(3.9).cast(NumKind::Int32).unwrap(), Op::I32(3));
        assert_eq!(Op::I32(3).cast(NumKind::Double).unwrap(), Op::F64(3.0));
        let e = Op::I64(1 << 40).cast(NumKind::Int16).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::Overflow);
    }
}
