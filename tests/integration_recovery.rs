//! Durability, recovery, locking and failure injection — the ESM-substrate
//! guarantees ("backup and recovery of data", "controlling data access and
//! concurrency") exercised through the kernel and the raw storage API.

use std::sync::Arc;
use std::time::Duration;

use mood_core::{Mood, Value};
use mood_storage::{
    BufferPool, Disk, DiskMetrics, FaultyDisk, HeapFile, LockManager, LockMode, MemDisk, MemLog,
    PageId, StorageError, Wal,
};

#[test]
fn database_survives_reopen_with_indexes_and_methods() {
    let dir = std::env::temp_dir().join(format!("mood-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Mood::open(&dir).unwrap();
        db.execute("CREATE CLASS Account TUPLE (id Integer, balance Integer)")
            .unwrap();
        db.execute("CREATE UNIQUE BTREE INDEX ON Account(id)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!("new Account <{i}, {}>", i * 10))
                .unwrap();
        }
        db.checkpoint().unwrap();
    }
    {
        let db = Mood::open(&dir).unwrap();
        // Schema, data and extents all come back.
        let mut cur = db
            .query("SELECT a.balance FROM Account a WHERE a.id = 30")
            .unwrap();
        assert_eq!(cur.next().unwrap()[0], Value::Integer(300));
        // The reopened catalog accepts further DDL without id collisions.
        db.execute("CREATE CLASS Audit TUPLE (note String)")
            .unwrap();
        db.execute("new Audit <'reopened fine'>").unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn committed_transactions_replay_after_crash() {
    // The redo-log protocol at the storage level: log page images, crash
    // before flushing the pool, recover from the WAL.
    let disk = MemDisk::new();
    let wal = Wal::new(Box::new(MemLog::new()));
    let f = disk.create_file().unwrap();
    disk.allocate_page(f).unwrap();

    // Txn 1 commits; txn 2 does not.
    let t1 = wal.begin();
    let mut p = mood_storage::Page::new();
    p.data[0..4].copy_from_slice(&777u32.to_le_bytes());
    wal.log_page_write(t1, f, PageId(0), &p).unwrap();
    wal.commit(t1).unwrap();
    let t2 = wal.begin();
    let mut q = mood_storage::Page::new();
    q.data[0..4].copy_from_slice(&666u32.to_le_bytes());
    wal.log_page_write(t2, f, PageId(0), &q).unwrap();
    // no commit for t2 — crash here.

    let restored = wal.recover(&disk).unwrap();
    assert_eq!(restored, 1);
    let mut back = mood_storage::Page::new();
    disk.read_page(f, PageId(0), &mut back).unwrap();
    assert_eq!(u32::from_le_bytes(back.data[0..4].try_into().unwrap()), 777);
}

#[test]
fn injected_io_faults_surface_and_heal() {
    let faulty = Arc::new(FaultyDisk::new(MemDisk::new(), u64::MAX));
    let pool = Arc::new(BufferPool::new(faulty.clone(), 4, DiskMetrics::new()));
    let heap = HeapFile::create(pool).unwrap();
    let oid = heap.insert(b"precious").unwrap();
    // Arm a short fuse: a few I/Os succeed, then everything fails. Keep
    // inserting page-sized records until the injected fault surfaces.
    let faulty2 = Arc::new(FaultyDisk::new(MemDisk::new(), 8));
    let pool2 = Arc::new(BufferPool::new(faulty2.clone(), 1, DiskMetrics::new()));
    let heap2 = HeapFile::create(pool2).unwrap();
    let oid2 = heap2.insert(b"x").unwrap();
    let mut saw_fault = false;
    for _ in 0..32 {
        match heap2.insert(&vec![0u8; 3000]) {
            Ok(_) => {}
            Err(StorageError::Io(msg)) => {
                assert!(msg.contains("injected"));
                saw_fault = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(
        saw_fault,
        "the fuse must blow within a few page allocations"
    );
    faulty2.heal();
    assert_eq!(
        heap2.get(oid2).unwrap(),
        b"x",
        "healed disk serves old data"
    );
    let _ = oid;
}

#[test]
fn lock_manager_protects_concurrent_method_redefinition() {
    // The Section 2 scenario: the class's shared object is locked while a
    // function is rewritten; readers block rather than see a torn state.
    let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
    let writers_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let lm2 = lm.clone();
    let done2 = writers_done.clone();
    let writer = std::thread::spawn(move || {
        lm2.acquire(1, "so:Vehicle", LockMode::Exclusive).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        done2.store(true, std::sync::atomic::Ordering::SeqCst);
        lm2.release(1, "so:Vehicle");
    });
    std::thread::sleep(Duration::from_millis(10));
    // Reader blocks until the writer finishes.
    lm.acquire(2, "so:Vehicle", LockMode::Shared).unwrap();
    assert!(
        writers_done.load(std::sync::atomic::Ordering::SeqCst),
        "reader proceeded before the redefinition finished"
    );
    writer.join().unwrap();
}

#[test]
fn concurrent_sessions_share_one_database() {
    // Two threads hammer the same catalog through their own sessions.
    let db = Arc::new(Mood::in_memory());
    db.execute("CREATE CLASS Counter TUPLE (n Integer)")
        .unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                db.execute(&format!("new Counter <{}>", t * 100 + i))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let cur = db.query("SELECT c FROM Counter c").unwrap();
    assert_eq!(cur.len(), 100);
}

#[test]
fn buffer_pool_pressure_does_not_lose_updates() {
    // A 2-frame pool forces constant eviction while updating objects.
    let db = Mood::in_memory_with_pool(2);
    db.execute("CREATE CLASS Blob TUPLE (id Integer, payload String)")
        .unwrap();
    let catalog = db.catalog();
    let mut oids = Vec::new();
    for i in 0..64 {
        oids.push(
            catalog
                .new_object(
                    "Blob",
                    Value::tuple(vec![
                        ("id", Value::Integer(i)),
                        ("payload", Value::string("x".repeat(200))),
                    ]),
                )
                .unwrap(),
        );
    }
    for (i, oid) in oids.iter().enumerate() {
        catalog
            .update_object(
                *oid,
                Value::tuple(vec![
                    ("id", Value::Integer(i as i32)),
                    ("payload", Value::string(format!("updated-{i}"))),
                ]),
            )
            .unwrap();
    }
    for (i, oid) in oids.iter().enumerate() {
        let (_, v) = catalog.get_object(*oid).unwrap();
        assert_eq!(
            v.field("payload"),
            Some(&Value::string(format!("updated-{i}")))
        );
    }
    let snap = db.metrics().snapshot();
    assert!(
        snap.buffer_misses > 0,
        "pressure actually evicted: {snap:?}"
    );
}

#[test]
fn torn_log_tail_is_tolerated() {
    let log = Arc::new(MemLog::new());
    struct Shared(Arc<MemLog>);
    impl mood_storage::wal::LogStore for Shared {
        fn append(&self, b: &[u8]) -> mood_storage::Result<()> {
            self.0.append(b)
        }
        fn force(&self) -> mood_storage::Result<()> {
            self.0.force()
        }
        fn read_all(&self) -> mood_storage::Result<Vec<u8>> {
            self.0.read_all()
        }
        fn truncate(&self) -> mood_storage::Result<()> {
            self.0.truncate()
        }
    }
    let wal = Wal::new(Box::new(Shared(log.clone())));
    let disk = MemDisk::new();
    let f = disk.create_file().unwrap();
    disk.allocate_page(f).unwrap();
    let t = wal.begin();
    wal.log_page_write(t, f, PageId(0), &mood_storage::Page::new())
        .unwrap();
    wal.commit(t).unwrap();
    let t2 = wal.begin();
    wal.log_page_write(t2, f, PageId(0), &mood_storage::Page::new())
        .unwrap();
    wal.commit(t2).unwrap();
    log.tear(3); // torn commit record for t2
    assert_eq!(wal.recover(&disk).unwrap(), 1, "t1 only");
}

#[test]
fn metrics_distinguish_scan_from_probe_patterns() {
    let db = Mood::in_memory_with_pool(4);
    db.execute("CREATE CLASS Row TUPLE (k Integer, pad String)")
        .unwrap();
    let catalog = db.catalog();
    // Enough pages that the §8.1 inequality favors the index for an
    // equality probe (a handful of random reads vs hundreds of
    // sequential pages).
    for i in 0..5000 {
        catalog
            .new_object(
                "Row",
                Value::tuple(vec![
                    ("k", Value::Integer(i)),
                    ("pad", Value::string("p".repeat(200))),
                ]),
            )
            .unwrap();
    }
    db.execute("CREATE INDEX ON Row(k)").unwrap();
    db.collect_stats().unwrap();
    // Sequential scan pattern.
    let before = db.metrics().snapshot();
    db.execute("SELECT r FROM Row r WHERE r.pad = 'nope'")
        .unwrap();
    let scan = db.metrics().snapshot().delta(&before);
    assert!(scan.seq_pages > 0, "{scan:?}");
    // Index probe pattern.
    let before = db.metrics().snapshot();
    db.execute("SELECT r FROM Row r WHERE r.k = 2500").unwrap();
    let probe = db.metrics().snapshot().delta(&before);
    assert!(probe.idx_pages > 0, "descends the B+-tree: {probe:?}");
    assert!(
        probe.seq_pages < scan.seq_pages,
        "probe reads far fewer sequential pages: {probe:?} vs {scan:?}"
    );
}

#[test]
fn concurrent_object_creation_with_indexes_is_consistent() {
    // Regression: index writers must share one handle (and one writer
    // lock) across sessions, or concurrent inserts corrupt the B+-tree.
    let db = Arc::new(Mood::in_memory());
    db.execute("CREATE CLASS Item TUPLE (k Integer)").unwrap();
    db.execute("CREATE INDEX ON Item(k)").unwrap();
    let mut handles = Vec::new();
    for t in 0..6i32 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..100 {
                db.execute(&format!("new Item <{}>", t * 1000 + i)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    db.collect_stats().unwrap();
    // Every inserted key is findable through the index.
    for t in 0..6i32 {
        for i in (0..100).step_by(17) {
            let k = t * 1000 + i;
            let cur = db
                .query(&format!("SELECT x FROM Item x WHERE x.k = {k}"))
                .unwrap();
            assert_eq!(cur.len(), 1, "key {k} lost or duplicated");
        }
    }
    let cur = db.query("SELECT x FROM Item x").unwrap();
    assert_eq!(cur.len(), 600);
}
