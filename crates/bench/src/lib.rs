//! Workload generation and measurement helpers shared by the `reproduce`
//! binary and the criterion benches.
//!
//! The generators build synthetic databases with *controlled statistics*
//! (cardinalities, fan-out, sharing) so measured page counts can be
//! compared against the paper's §4–§6 formulas, per the experiment index in
//! DESIGN.md.

pub mod datagen;
pub mod measure;

pub use datagen::{build_ref_db, build_vehicle_db, RefDbSpec, VehicleDbSpec};
pub use measure::{measured_join_pages, model_join_cost, JoinMeasurement};
