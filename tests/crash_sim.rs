//! Deterministic crash-simulation harness.
//!
//! A scripted multi-transaction workload runs over fault-injecting
//! wrappers around the real file-backed disk and log. Each run arms a
//! [`FaultPlan`] (fail I/O #k, tear write #k, or seeded probabilistic
//! faults), executes the workload until the plan fires, then "crashes":
//! the process state (buffer pool, sessions, open transactions) is
//! dropped while the disk and log bytes stay on the filesystem. The
//! harness then asserts the recovery invariants:
//!
//! * recovery is idempotent — replaying the log twice over the raw
//!   bytes leaves byte-identical page files;
//! * a clean reopen succeeds and shows exactly the committed state
//!   (when the crash lands on a commit point itself, either the
//!   before- or after-state is acceptable — the commit record may or
//!   may not have reached the log);
//! * rolled-back transactions never surface;
//! * catalog, extents and indexes agree with the heap, and the
//!   recovered database accepts new DDL, DML and a further reopen.
//!
//! The gating tests sweep a sample of fault points with pinned seeds;
//! `#[ignore]`d extended sweeps cover every fault point (run in CI as a
//! separate non-gating job via `cargo test -- --ignored`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mood_core::{Mood, Value};
use mood_storage::{
    Disk, FaultPlan, FaultyDisk, FaultyLog, FileDisk, FileLog, StorageManager, Wal,
};

/// Committed ledger contents: account id -> balance.
type Ledger = BTreeMap<i32, i32>;

/// What the workload knows it made durable before the crash.
struct Outcome {
    /// The last state known committed. `None` means the `Account` class
    /// itself was never (committedly) created.
    committed: Option<Ledger>,
    /// When the crash hit a commit point, the state the database shows
    /// if that commit's record did reach the log.
    ambiguous: Option<Option<Ledger>>,
    /// Whether any statement failed (i.e. the fault plan fired).
    crashed: bool,
}

impl Outcome {
    fn unambiguous(led: Ledger) -> Outcome {
        Outcome {
            committed: Some(led),
            ambiguous: None,
            crashed: true,
        }
    }
}

static RUN: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mood-crashsim-{tag}-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ----------------------------------------------------------------------
// The scripted workload
// ----------------------------------------------------------------------

/// One commit unit of the workload. Every unit is atomic: it either
/// commits entirely (apply its effect to the model) or not at all.
enum Unit {
    /// A bare statement; the session autocommits it.
    Auto {
        sql: String,
        apply: Box<dyn Fn(&mut Ledger)>,
    },
    /// An explicit `BEGIN` .. `COMMIT` transaction.
    Commit {
        stmts: Vec<String>,
        apply: Box<dyn Fn(&mut Ledger)>,
    },
    /// An explicit transaction ended by `ROLLBACK` — never visible.
    Abort { stmts: Vec<String> },
}

fn units() -> Vec<Unit> {
    let mut u: Vec<Unit> = Vec::new();
    for i in 1..=6i32 {
        u.push(Unit::Auto {
            sql: format!("new Account <{i}, 100>"),
            apply: Box::new(move |l| {
                l.insert(i, 100);
            }),
        });
    }
    // A transfer: multi-statement explicit transaction that commits.
    u.push(Unit::Commit {
        stmts: vec![
            "UPDATE Account a SET balance = a.balance - 30 WHERE a.id = 1".into(),
            "UPDATE Account a SET balance = a.balance + 30 WHERE a.id = 2".into(),
        ],
        apply: Box::new(|l| {
            *l.get_mut(&1).unwrap() -= 30;
            *l.get_mut(&2).unwrap() += 30;
        }),
    });
    // A multi-statement transaction that rolls back: id 99 and the
    // zeroed balance must never be seen again, crash or no crash.
    u.push(Unit::Abort {
        stmts: vec![
            "UPDATE Account a SET balance = 0 WHERE a.id = 3".into(),
            "new Account <99, 1>".into(),
        ],
    });
    // Insert + update of the same fresh object inside one transaction.
    u.push(Unit::Commit {
        stmts: vec![
            "new Account <9, 500>".into(),
            "UPDATE Account a SET balance = a.balance + 5 WHERE a.id = 9".into(),
        ],
        apply: Box::new(|l| {
            l.insert(9, 505);
        }),
    });
    u.push(Unit::Auto {
        sql: "UPDATE Account a SET balance = a.balance * 2 WHERE a.id = 4".into(),
        apply: Box::new(|l| {
            *l.get_mut(&4).unwrap() *= 2;
        }),
    });
    u.push(Unit::Auto {
        sql: "DELETE FROM Account a WHERE a.id = 5".into(),
        apply: Box::new(|l| {
            l.remove(&5);
        }),
    });
    u
}

/// Run the workload, stopping at the first failed statement (the fault
/// plan latches, so the device is dead from then on — the caller drops
/// the database right after, which is the "crash").
fn run_workload(db: &Mood) -> Outcome {
    // DDL units autocommit. A failed CREATE CLASS is itself a commit
    // point: the class exists afterwards or it does not.
    if db
        .execute("CREATE CLASS Account TUPLE (id Integer, balance Integer)")
        .is_err()
    {
        return Outcome {
            committed: None,
            ambiguous: Some(Some(Ledger::new())),
            crashed: true,
        };
    }
    let mut led = Ledger::new();
    if db
        .execute("CREATE UNIQUE BTREE INDEX ON Account(id)")
        .is_err()
    {
        // Index presence is ambiguous; the ledger contents are not.
        return Outcome {
            committed: Some(led.clone()),
            ambiguous: Some(Some(led)),
            crashed: true,
        };
    }

    for unit in units() {
        match unit {
            Unit::Auto { sql, apply } => {
                let mut next = led.clone();
                apply(&mut next);
                match db.execute(&sql) {
                    Ok(_) => led = next,
                    // The autocommit may have forced its commit record
                    // before the failure surfaced: either state is legal.
                    Err(_) => {
                        return Outcome {
                            committed: Some(led),
                            ambiguous: Some(Some(next)),
                            crashed: true,
                        }
                    }
                }
            }
            Unit::Commit { stmts, apply } => {
                let mut next = led.clone();
                apply(&mut next);
                if db.execute("BEGIN").is_err() {
                    return Outcome::unambiguous(led);
                }
                for s in &stmts {
                    // A failed statement rolls itself back and leaves the
                    // transaction open; dropping the database aborts it.
                    if db.execute(s).is_err() {
                        return Outcome::unambiguous(led);
                    }
                }
                match db.execute("COMMIT") {
                    Ok(_) => led = next,
                    Err(_) => {
                        return Outcome {
                            committed: Some(led),
                            ambiguous: Some(Some(next)),
                            crashed: true,
                        }
                    }
                }
            }
            Unit::Abort { stmts } => {
                // Nothing in this unit ever becomes durable — page images
                // are only logged at commit — so every failure mode lands
                // on the pre-transaction state, unambiguously.
                if db.execute("BEGIN TRANSACTION").is_err() {
                    return Outcome::unambiguous(led);
                }
                for s in &stmts {
                    if db.execute(s).is_err() {
                        return Outcome::unambiguous(led);
                    }
                }
                if db.execute("ROLLBACK").is_err() {
                    return Outcome::unambiguous(led);
                }
            }
        }
    }
    Outcome {
        committed: Some(led),
        ambiguous: None,
        crashed: false,
    }
}

// ----------------------------------------------------------------------
// One crash run: workload under faults, then recovery checks
// ----------------------------------------------------------------------

/// Phase 1: open a database whose disk and log are wrapped by the given
/// fault plans, run the workload, then crash (drop everything).
fn faulted_run(dir: &Path, disk_plan: Arc<FaultPlan>, log_plan: Arc<FaultPlan>) -> Outcome {
    let fd = FileDisk::open(dir.join("pages")).unwrap();
    let disk: Arc<dyn Disk> = Arc::new(FaultyDisk::with_plan(fd, disk_plan));
    let log = Box::new(FaultyLog::new(
        FileLog::open(dir.join("wal.log")).unwrap(),
        log_plan,
    ));
    let opened = StorageManager::with_parts(disk, log, 64)
        .map_err(|e| e.to_string())
        .and_then(|sm| Mood::open_with_storage(Arc::new(sm), dir).map_err(|e| e.to_string()));
    match opened {
        Ok(db) => run_workload(&db),
        // Bootstrap itself crashed; the workload never created the class.
        Err(_) => Outcome {
            committed: None,
            ambiguous: None,
            crashed: true,
        },
    }
}

fn pages_snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut snap = BTreeMap::new();
    if let Ok(rd) = std::fs::read_dir(dir.join("pages")) {
        for e in rd.flatten() {
            snap.insert(
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            );
        }
    }
    snap
}

/// Phase 2: replay the log over the raw bytes twice; the page files must
/// come out byte-identical (recovery is idempotent).
fn check_recovery_idempotent(dir: &Path) {
    let recover = || {
        let disk = FileDisk::open(dir.join("pages")).unwrap();
        let wal = Wal::new(Box::new(FileLog::open(dir.join("wal.log")).unwrap()));
        wal.recover(&disk).unwrap();
    };
    recover();
    let first = pages_snapshot(dir);
    recover();
    let second = pages_snapshot(dir);
    assert_eq!(
        first.keys().collect::<Vec<_>>(),
        second.keys().collect::<Vec<_>>(),
        "second recovery changed the set of page files"
    );
    for (name, bytes) in &first {
        assert_eq!(
            bytes, &second[name],
            "second recovery changed bytes of {name}"
        );
    }
}

fn scan_ledger(db: &Mood) -> Ledger {
    let mut cur = db.query("SELECT a.id, a.balance FROM Account a").unwrap();
    let mut led = Ledger::new();
    while let Some(row) = cur.next() {
        let (Value::Integer(id), Value::Integer(bal)) = (&row[0], &row[1]) else {
            panic!("non-integer Account row: {row:?}");
        };
        led.insert(*id, *bal);
    }
    led
}

/// Phase 3: reopen on clean devices and check every invariant.
fn verify_reopen(dir: &Path, out: &Outcome) {
    let db = Mood::open(dir).expect("clean reopen after a crash must succeed");
    let observed: Option<Ledger> = if db.catalog().class("Account").is_ok() {
        Some(scan_ledger(&db))
    } else {
        None
    };

    let acceptable = observed == out.committed
        || out.ambiguous.as_ref().is_some_and(|alt| observed == *alt);
    assert!(
        acceptable,
        "recovered state mismatch in {dir:?}:\n  observed:  {observed:?}\n  committed: {:?}\n  ambiguous: {:?}",
        out.committed, out.ambiguous
    );

    if let Some(model) = &observed {
        // Rolled-back work must never surface.
        assert!(!model.contains_key(&99), "rolled-back insert resurfaced");
        // Extent bookkeeping agrees with the heap scan.
        assert_eq!(
            db.catalog().extent_count("Account").unwrap() as usize,
            model.len(),
            "extent count disagrees with the heap scan"
        );
        // Indexed point lookups agree with the scan, row by row.
        for (id, bal) in model {
            let mut cur = db
                .query(&format!(
                    "SELECT a.balance FROM Account a WHERE a.id = {id}"
                ))
                .unwrap();
            let row = cur.next().expect("point query must find the row");
            assert_eq!(row[0], Value::Integer(*bal), "index/heap disagree on id {id}");
            assert!(cur.next().is_none(), "duplicate row for id {id}");
        }
        let mut cur = db
            .query("SELECT a.id FROM Account a WHERE a.id = 99")
            .unwrap();
        assert!(cur.next().is_none(), "rolled-back insert found via index");
    }

    // The recovered catalog accepts new DDL and DML...
    db.execute("CREATE CLASS CrashAudit TUPLE (note String)")
        .unwrap();
    db.execute("new CrashAudit <'recovered'>").unwrap();
    db.execute("new CrashAudit <'second life'>").unwrap();
    drop(db);

    // ...and those post-recovery commits survive yet another recovery
    // (drop without checkpoint: the reopen below replays them).
    let db = Mood::open(dir).unwrap();
    let mut cur = db.query("SELECT c.note FROM CrashAudit c").unwrap();
    let mut notes = 0;
    while cur.next().is_some() {
        notes += 1;
    }
    assert_eq!(notes, 2, "post-recovery commits lost by a second recovery");
    if let Some(model) = &observed {
        assert_eq!(&scan_ledger(&db), model, "ledger drifted across reopen");
    }
}

fn crash_run(tag: &str, disk_plan: Arc<FaultPlan>, log_plan: Arc<FaultPlan>) {
    let dir = fresh_dir(tag);
    let outcome = faulted_run(&dir, disk_plan, log_plan);
    check_recovery_idempotent(&dir);
    verify_reopen(&dir, &outcome);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Count how many disk and log operations a fault-free run performs —
/// the sweep domain for the `fail_at`/`torn_at` plans.
fn clean_ops() -> (u64, u64) {
    let dir = fresh_dir("clean-ops");
    let disk_plan = FaultPlan::disarmed();
    let log_plan = FaultPlan::disarmed();
    let out = faulted_run(&dir, disk_plan.clone(), log_plan.clone());
    assert!(!out.crashed, "disarmed plans must not crash the workload");
    let _ = std::fs::remove_dir_all(&dir);
    (disk_plan.ops(), log_plan.ops())
}

// ----------------------------------------------------------------------
// Gating tests (pinned fault points and seeds)
// ----------------------------------------------------------------------

#[test]
fn clean_run_round_trips_begin_commit_rollback() {
    let dir = fresh_dir("clean");
    let out = faulted_run(&dir, FaultPlan::disarmed(), FaultPlan::disarmed());
    assert!(!out.crashed);
    let model = out.committed.clone().unwrap();
    // The committed transfer and the rolled-back transaction, spelled out:
    assert_eq!(model[&1], 70, "transfer debit lost");
    assert_eq!(model[&2], 130, "transfer credit lost");
    assert_eq!(model[&3], 100, "rolled-back update leaked");
    assert!(!model.contains_key(&99), "rolled-back insert leaked");
    assert_eq!(model[&9], 505, "txn insert+update lost");
    check_recovery_idempotent(&dir);
    verify_reopen(&dir, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_at_sampled_disk_fault_points() {
    let (disk_ops, _) = clean_ops();
    let step = (disk_ops / 12).max(1);
    let mut k = 1;
    while k <= disk_ops {
        crash_run("disk-fail", FaultPlan::fail_at(k), FaultPlan::disarmed());
        crash_run("disk-torn", FaultPlan::torn_at(k), FaultPlan::disarmed());
        k += step;
    }
}

#[test]
fn crash_at_sampled_log_fault_points() {
    let (_, log_ops) = clean_ops();
    let step = (log_ops / 12).max(1);
    let mut k = 1;
    while k <= log_ops {
        crash_run("log-fail", FaultPlan::disarmed(), FaultPlan::fail_at(k));
        crash_run("log-torn", FaultPlan::disarmed(), FaultPlan::torn_at(k));
        k += step;
    }
}

#[test]
fn crash_with_seeded_probabilistic_faults() {
    // One plan shared by disk and log: faults land wherever the seeded
    // stream puts them, including torn writes and torn log appends.
    for seed in [1u64, 7, 42, 20260807] {
        let plan = FaultPlan::probabilistic(seed, 0.02);
        crash_run("prob", plan.clone(), plan);
    }
}

// ----------------------------------------------------------------------
// Extended sweeps — every fault point, more seeds. Run by the CI
// crash-sweep job with `--ignored`; not gating.
// ----------------------------------------------------------------------

#[test]
#[ignore = "exhaustive sweep; run with --ignored in the CI crash-sweep job"]
fn sweep_every_disk_fault_point() {
    let (disk_ops, _) = clean_ops();
    for k in 1..=disk_ops {
        crash_run("sweep-disk-fail", FaultPlan::fail_at(k), FaultPlan::disarmed());
        crash_run("sweep-disk-torn", FaultPlan::torn_at(k), FaultPlan::disarmed());
    }
}

#[test]
#[ignore = "exhaustive sweep; run with --ignored in the CI crash-sweep job"]
fn sweep_every_log_fault_point() {
    let (_, log_ops) = clean_ops();
    for k in 1..=log_ops {
        crash_run("sweep-log-fail", FaultPlan::disarmed(), FaultPlan::fail_at(k));
        crash_run("sweep-log-torn", FaultPlan::disarmed(), FaultPlan::torn_at(k));
    }
}

#[test]
#[ignore = "exhaustive sweep; run with --ignored in the CI crash-sweep job"]
fn sweep_probabilistic_seeds() {
    for seed in 0u64..32 {
        for p in [0.01, 0.05] {
            let plan = FaultPlan::probabilistic(seed, p);
            crash_run("sweep-prob", plan.clone(), plan);
        }
    }
}
