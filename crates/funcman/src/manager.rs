//! The Function Manager.
//!
//! Section 2: "a Function Manager responsible for adding, updating, deleting
//! and invoking the member functions of the classes". In MOOD, method
//! bodies were C++ source, pre-processed and compiled into a per-class
//! *shared object* which `dld` loaded on first call; the catalog carried the
//! signatures for late binding. The reproduction keeps every architectural
//! property:
//!
//! * bodies are "compiled" when added (native Rust closures play the role
//!   of pre-compiled C++ object code; run-time-defined bodies compile
//!   through [`crate::expr::compile`]) — the server never restarts;
//! * each class has a shared-object unit; redefining a function takes an
//!   exclusive lock on it ("the shared library of the class will be
//!   unavailable only during the time it takes to write the new function");
//! * a function is *loaded* on first invocation and stays in memory until
//!   the scope ends ([`FunctionManager::end_scope`]);
//! * invocation resolves the signature through the catalog (class name +
//!   parameter list), honoring inheritance — true late binding;
//! * any crash inside a body surfaces as an [`Exception`], as if the
//!   function were interpreted.

use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use mood_catalog::{Catalog, MethodSig};
use mood_datamodel::{Resolver, Value};
use mood_storage::Oid;

use crate::exception::{catch, Exception, ExceptionKind};
use crate::expr::{compile, eval, EvalCtx, Expr};

/// A native method body — the stand-in for compiled C++ object code.
pub type NativeFn =
    Arc<dyn Fn(&Value, &[Value], &dyn Resolver) -> Result<Value, Exception> + Send + Sync>;

/// A compiled method body.
#[derive(Clone)]
pub enum MethodBody {
    /// Pre-compiled (registered from Rust).
    Native(NativeFn),
    /// Compiled at definition time from source.
    Interpreted { source: String, compiled: Expr },
}

/// One entry in a class's shared object file.
#[derive(Clone)]
struct CompiledFunction {
    body: MethodBody,
}

/// The per-class shared object: compiled functions plus the set currently
/// loaded in memory.
#[derive(Default)]
struct SharedObject {
    functions: HashMap<String, CompiledFunction>,
    loaded: HashSet<String>,
}

/// Counters exposed for the Function Manager bench (X5).
#[derive(Debug, Default)]
pub struct FuncManStats {
    pub compilations: AtomicU64,
    pub loads: AtomicU64,
    pub invocations: AtomicU64,
}

/// The Function Manager.
pub struct FunctionManager {
    catalog: Arc<Catalog>,
    objects: RwLock<HashMap<String, Arc<RwLock<SharedObject>>>>,
    stats: FuncManStats,
}

impl FunctionManager {
    pub fn new(catalog: Arc<Catalog>) -> Self {
        FunctionManager {
            catalog,
            objects: RwLock::new(HashMap::new()),
            stats: FuncManStats::default(),
        }
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn stats(&self) -> &FuncManStats {
        &self.stats
    }

    fn shared_object(&self, class: &str) -> Arc<RwLock<SharedObject>> {
        if let Some(so) = self.objects.read().get(class) {
            return so.clone();
        }
        self.objects
            .write()
            .entry(class.to_string())
            .or_insert_with(|| Arc::new(RwLock::new(SharedObject::default())))
            .clone()
    }

    /// Register a pre-compiled (native) method. Also records the signature
    /// in the catalog so the SQL layer can bind it.
    pub fn register_native(
        &self,
        class: &str,
        sig: MethodSig,
        body: NativeFn,
    ) -> Result<(), Exception> {
        self.install(class, sig, MethodBody::Native(body))
    }

    /// Define (or redefine) a method from source at run time — the paper's
    /// headline capability. Compile errors surface here, not at call time.
    pub fn define_source(
        &self,
        class: &str,
        sig: MethodSig,
        source: &str,
    ) -> Result<(), Exception> {
        let compiled = compile(source)?;
        self.stats.compilations.fetch_add(1, Ordering::Relaxed);
        self.install(
            class,
            sig,
            MethodBody::Interpreted {
                source: source.to_string(),
                compiled,
            },
        )
    }

    fn install(&self, class: &str, sig: MethodSig, body: MethodBody) -> Result<(), Exception> {
        self.catalog
            .class(class)
            .map_err(|e| Exception::new(ExceptionKind::System, e.to_string()))?;
        let so = self.shared_object(class);
        // Exclusive lock: the class's shared object is unavailable only
        // while the new function is written.
        let mut guard = so.write();
        guard.loaded.remove(&sig.name); // a redefinition must reload
        guard
            .functions
            .insert(sig.name.clone(), CompiledFunction { body });
        drop(guard);
        self.catalog
            .add_method(class, sig)
            .map_err(|e| Exception::new(ExceptionKind::System, e.to_string()))?;
        Ok(())
    }

    /// Delete a method.
    pub fn delete_method(&self, class: &str, method: &str) -> Result<(), Exception> {
        let so = self.shared_object(class);
        let mut guard = so.write();
        if guard.functions.remove(method).is_none() {
            return Err(Exception::new(
                ExceptionKind::MissingFunction,
                format!("{class}::{method} not in shared object"),
            ));
        }
        guard.loaded.remove(method);
        drop(guard);
        self.catalog
            .drop_method(class, method)
            .map_err(|e| Exception::new(ExceptionKind::System, e.to_string()))?;
        Ok(())
    }

    /// The source text of an interpreted method (MoodView's method editor
    /// reads this back).
    pub fn method_source(&self, class: &str, method: &str) -> Option<String> {
        let so = self.shared_object(class);
        let guard = so.read();
        match &guard.functions.get(method)?.body {
            MethodBody::Interpreted { source, .. } => Some(source.clone()),
            MethodBody::Native(_) => None,
        }
    }

    /// Invoke `method` on the object `oid` with `args`.
    ///
    /// Resolution order (late binding): the receiver's *dynamic* class is
    /// read from the store, the catalog resolves the signature up the
    /// hierarchy, the defining class's shared object supplies the body
    /// (loading it on first use).
    pub fn invoke(&self, oid: Oid, method: &str, args: &[Value]) -> Result<Value, Exception> {
        let (class, receiver) = self
            .catalog
            .get_object(oid)
            .map_err(|e| Exception::new(ExceptionKind::System, e.to_string()))?;
        self.invoke_on(&class, &receiver, method, args)
    }

    /// Invoke on an explicit receiver value of a known class (used for
    /// values not stored in any extent and for nested method calls).
    pub fn invoke_on(
        &self,
        class: &str,
        receiver: &Value,
        method: &str,
        args: &[Value],
    ) -> Result<Value, Exception> {
        self.stats.invocations.fetch_add(1, Ordering::Relaxed);
        let (defining, sig) = self
            .catalog
            .resolve_method(class, method)
            .map_err(|e| Exception::new(ExceptionKind::MissingFunction, e.to_string()))?;
        if args.len() != sig.params.len() {
            return Err(Exception::new(
                ExceptionKind::BadArguments,
                format!(
                    "{} expects {} argument(s), got {}",
                    sig.signature_for(&defining),
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        for ((pname, pty), arg) in sig.params.iter().zip(args) {
            if !arg.matches(pty) {
                return Err(Exception::new(
                    ExceptionKind::BadArguments,
                    format!("parameter {pname} expects {pty}, got {arg}"),
                ));
            }
        }
        let so = self.shared_object(&defining);
        let func = {
            // Shared lock: readers are only blocked while a writer holds
            // the object during redefinition.
            let mut guard = so.write();
            let Some(f) = guard.functions.get(method).cloned() else {
                return Err(Exception::new(
                    ExceptionKind::MissingFunction,
                    format!(
                        "signature {} found in catalog but {defining}'s shared object has no body",
                        sig.signature_for(&defining)
                    ),
                ));
            };
            if guard.loaded.insert(method.to_string()) {
                // First call since scope start: the dld load.
                self.stats.loads.fetch_add(1, Ordering::Relaxed);
            }
            f
        };
        let named_args: Vec<(String, Value)> = sig
            .params
            .iter()
            .map(|(n, _)| n.clone())
            .zip(args.iter().cloned())
            .collect();
        match &func.body {
            MethodBody::Native(f) => {
                let cat: &Catalog = &self.catalog;
                catch(AssertUnwindSafe(|| f(receiver, args, cat)))
            }
            MethodBody::Interpreted { compiled, .. } => {
                let dispatcher = |m: &str, a: &[Value]| self.invoke_on(class, receiver, m, a);
                let ctx = EvalCtx {
                    self_value: receiver,
                    args: &named_args,
                    resolver: Some(self.catalog.as_ref() as &dyn Resolver),
                    dispatcher: Some(&dispatcher),
                };
                let result = catch(AssertUnwindSafe(|| eval(compiled, &ctx)))?;
                if !result.matches(&sig.return_type) {
                    return Err(Exception::type_error(format!(
                        "{} returned {result}, expected {}",
                        sig.signature_for(&defining),
                        sig.return_type
                    )));
                }
                Ok(result)
            }
        }
    }

    /// End the current scope: unload every loaded function ("Function is
    /// kept in memory until the scope changes in the program").
    pub fn end_scope(&self) {
        for so in self.objects.read().values() {
            so.write().loaded.clear();
        }
    }

    /// Number of functions currently loaded (diagnostics).
    pub fn loaded_count(&self) -> usize {
        self.objects
            .read()
            .values()
            .map(|so| so.read().loaded.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_catalog::ClassBuilder;
    use mood_datamodel::TypeDescriptor;
    use mood_storage::StorageManager;

    fn setup() -> (Arc<Catalog>, FunctionManager) {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("id", TypeDescriptor::integer())
                .attribute("weight", TypeDescriptor::integer()),
        )
        .unwrap();
        cat.define_class(ClassBuilder::class("Automobile").inherits("Vehicle"))
            .unwrap();
        let fm = FunctionManager::new(cat.clone());
        (cat, fm)
    }

    fn lbweight_sig() -> MethodSig {
        MethodSig::new("lbweight", TypeDescriptor::float(), vec![])
    }

    #[test]
    fn interpreted_method_roundtrip() {
        let (cat, fm) = setup();
        fm.define_source("Vehicle", lbweight_sig(), "{ return weight * 2.2075; }")
            .unwrap();
        let oid = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(1)),
                    ("weight", Value::Integer(1000)),
                ]),
            )
            .unwrap();
        assert_eq!(
            fm.invoke(oid, "lbweight", &[]).unwrap(),
            Value::Float(2207.5)
        );
        // Signature landed in the catalog.
        assert!(cat.class("Vehicle").unwrap().method("lbweight").is_some());
        assert_eq!(
            fm.method_source("Vehicle", "lbweight").unwrap(),
            "{ return weight * 2.2075; }"
        );
    }

    #[test]
    fn native_method_roundtrip() {
        let (cat, fm) = setup();
        fm.register_native(
            "Vehicle",
            MethodSig::new("double_weight", TypeDescriptor::integer(), vec![]),
            Arc::new(|recv, _args, _res| {
                let w = recv.field("weight").and_then(|v| v.as_f64()).unwrap_or(0.0);
                Ok(Value::Integer((w * 2.0) as i32))
            }),
        )
        .unwrap();
        let oid = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(1)),
                    ("weight", Value::Integer(700)),
                ]),
            )
            .unwrap();
        assert_eq!(
            fm.invoke(oid, "double_weight", &[]).unwrap(),
            Value::Integer(1400)
        );
        assert!(
            fm.method_source("Vehicle", "double_weight").is_none(),
            "native has no source"
        );
    }

    #[test]
    fn late_binding_resolves_through_inheritance() {
        let (cat, fm) = setup();
        fm.define_source("Vehicle", lbweight_sig(), "weight * 2.2075")
            .unwrap();
        let car = cat
            .new_object(
                "Automobile",
                Value::tuple(vec![
                    ("id", Value::Integer(2)),
                    ("weight", Value::Integer(100)),
                ]),
            )
            .unwrap();
        // Automobile has no own body: Vehicle's is found late-bound.
        assert_eq!(
            fm.invoke(car, "lbweight", &[]).unwrap(),
            Value::Float(220.75)
        );
        // An Automobile override shadows it without a server restart.
        fm.define_source("Automobile", lbweight_sig(), "weight * 3.0")
            .unwrap();
        assert_eq!(
            fm.invoke(car, "lbweight", &[]).unwrap(),
            Value::Float(300.0)
        );
    }

    #[test]
    fn parameters_are_typechecked() {
        let (cat, fm) = setup();
        fm.define_source(
            "Vehicle",
            MethodSig::new(
                "scaled",
                TypeDescriptor::integer(),
                vec![("factor", TypeDescriptor::integer())],
            ),
            "weight * factor",
        )
        .unwrap();
        let oid = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![("weight", Value::Integer(10))]),
            )
            .unwrap();
        assert_eq!(
            fm.invoke(oid, "scaled", &[Value::Integer(3)]).unwrap(),
            Value::Integer(30)
        );
        let e = fm.invoke(oid, "scaled", &[]).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::BadArguments);
        let e = fm.invoke(oid, "scaled", &[Value::string("x")]).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::BadArguments);
    }

    #[test]
    fn return_type_checked_for_interpreted_bodies() {
        let (cat, fm) = setup();
        fm.define_source(
            "Vehicle",
            MethodSig::new("bad", TypeDescriptor::boolean(), vec![]),
            "weight + 1", // returns Integer, not Boolean
        )
        .unwrap();
        let oid = cat
            .new_object("Vehicle", Value::tuple(vec![("weight", Value::Integer(1))]))
            .unwrap();
        let e = fm.invoke(oid, "bad", &[]).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::TypeError);
    }

    #[test]
    fn compile_error_at_definition_time_not_call_time() {
        let (_, fm) = setup();
        let e = fm
            .define_source("Vehicle", lbweight_sig(), "weight *")
            .unwrap_err();
        assert_eq!(e.kind, ExceptionKind::CompileError);
    }

    #[test]
    fn native_panic_becomes_signal_exception() {
        let (cat, fm) = setup();
        fm.register_native(
            "Vehicle",
            MethodSig::new("crash", TypeDescriptor::integer(), vec![]),
            Arc::new(|_, _, _| panic!("simulated SIGSEGV")),
        )
        .unwrap();
        let oid = cat.new_object("Vehicle", Value::tuple(vec![])).unwrap();
        let e = fm.invoke(oid, "crash", &[]).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::Signal);
        // The server survives: we can keep invoking other methods.
        fm.define_source("Vehicle", lbweight_sig(), "0.0").unwrap();
        assert!(fm.invoke(oid, "lbweight", &[]).is_ok());
    }

    #[test]
    fn load_once_until_scope_end() {
        let (cat, fm) = setup();
        fm.define_source("Vehicle", lbweight_sig(), "weight * 1.0")
            .unwrap();
        let oid = cat
            .new_object("Vehicle", Value::tuple(vec![("weight", Value::Integer(1))]))
            .unwrap();
        assert_eq!(fm.stats().loads.load(Ordering::Relaxed), 0);
        fm.invoke(oid, "lbweight", &[]).unwrap();
        fm.invoke(oid, "lbweight", &[]).unwrap();
        fm.invoke(oid, "lbweight", &[]).unwrap();
        assert_eq!(fm.stats().loads.load(Ordering::Relaxed), 1, "loaded once");
        assert_eq!(fm.loaded_count(), 1);
        fm.end_scope();
        assert_eq!(fm.loaded_count(), 0);
        fm.invoke(oid, "lbweight", &[]).unwrap();
        assert_eq!(
            fm.stats().loads.load(Ordering::Relaxed),
            2,
            "reloaded after scope end"
        );
    }

    #[test]
    fn redefinition_reloads_and_serves_new_body() {
        let (cat, fm) = setup();
        fm.define_source("Vehicle", lbweight_sig(), "weight * 1.0")
            .unwrap();
        let oid = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![("weight", Value::Integer(10))]),
            )
            .unwrap();
        assert_eq!(fm.invoke(oid, "lbweight", &[]).unwrap(), Value::Float(10.0));
        fm.define_source("Vehicle", lbweight_sig(), "weight * 2.0")
            .unwrap();
        assert_eq!(fm.invoke(oid, "lbweight", &[]).unwrap(), Value::Float(20.0));
    }

    #[test]
    fn nested_method_calls_dispatch() {
        let (cat, fm) = setup();
        fm.define_source("Vehicle", lbweight_sig(), "weight * 2.2075")
            .unwrap();
        fm.define_source(
            "Vehicle",
            MethodSig::new("lbweight_plus", TypeDescriptor::float(), vec![]),
            "lbweight() + 1.0",
        )
        .unwrap();
        let oid = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![("weight", Value::Integer(1000))]),
            )
            .unwrap();
        assert_eq!(
            fm.invoke(oid, "lbweight_plus", &[]).unwrap(),
            Value::Float(2208.5)
        );
    }

    #[test]
    fn delete_method_removes_body_and_signature() {
        let (cat, fm) = setup();
        fm.define_source("Vehicle", lbweight_sig(), "0.0").unwrap();
        fm.delete_method("Vehicle", "lbweight").unwrap();
        assert!(cat.class("Vehicle").unwrap().method("lbweight").is_none());
        let oid = cat.new_object("Vehicle", Value::tuple(vec![])).unwrap();
        let e = fm.invoke(oid, "lbweight", &[]).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::MissingFunction);
        // Deleting twice errors.
        assert!(fm.delete_method("Vehicle", "lbweight").is_err());
    }

    #[test]
    fn unknown_class_rejected_at_install() {
        let (_, fm) = setup();
        let e = fm.define_source("Nope", lbweight_sig(), "1").unwrap_err();
        assert_eq!(e.kind, ExceptionKind::System);
    }
}
