//! Plan cache + compiled predicate evaluation: correctness, staleness and
//! counter discipline.
//!
//! * Compiled ≡ interpreted: for randomly generated predicates the plan
//!   cache + register programs produce byte-identical results to the
//!   interpreter at parallelism 1/2/4/8, warm and cold.
//! * No stale plan survives an epoch bump: DDL, index builds/drops and
//!   statistics refreshes all invalidate cached plans; answers after the
//!   bump come from a fresh plan.
//! * Counters: `plan_cache.{hits,misses,evictions,invalidations}` follow
//!   hits + misses = cacheable lookups, invalidations ⊆ misses.
//! * `EXPLAIN ANALYZE` reports `plan: fresh`/`plan: cached` with the epoch.

use proptest::prelude::*;

use mood_core::{Answer, Mood, OptimizerConfig, Value};

/// The Section 3.1 Vehicle schema with a deterministic population (the
/// observability harness's layout: cylinders cycle 2/4/6/8, transmissions
/// alternate AUTOMATIC/MANUAL).
fn build(n_vehicles: i32) -> Mood {
    let db = Mood::in_memory_with_pool(1024);
    db.set_optimizer_config(OptimizerConfig::paper());
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain))",
    ] {
        db.execute(ddl).unwrap();
    }
    let catalog = db.catalog();
    let mut trains = Vec::new();
    for i in 0..16i32 {
        let engine = catalog
            .new_object(
                "VehicleEngine",
                Value::tuple(vec![
                    ("size", Value::Integer(1000 + i * 100)),
                    ("cylinders", Value::Integer(2 + (i % 4) * 2)),
                ]),
            )
            .unwrap();
        trains.push(
            catalog
                .new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![
                        ("engine", Value::Ref(engine)),
                        (
                            "transmission",
                            Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                        ),
                    ]),
                )
                .unwrap(),
        );
    }
    for i in 0..n_vehicles {
        catalog
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(i)),
                    ("weight", Value::Integer(700 + (i % 15) * 80)),
                    ("drivetrain", Value::Ref(trains[i as usize % trains.len()])),
                ]),
            )
            .unwrap();
    }
    db.collect_stats().unwrap();
    db
}

fn rows_of(ans: Answer) -> mood_core::QueryResult {
    match ans {
        Answer::Rows(r) => r,
        other => panic!("not rows: {other:?}"),
    }
}

fn run(db: &Mood, sql: &str) -> Result<mood_core::QueryResult, String> {
    db.execute(sql).map(rows_of).map_err(|e| e.to_string())
}

// ----------------------------------------------------------------------
// Property: compiled ≡ interpreted, byte-identical, at every parallelism
// ----------------------------------------------------------------------

/// Predicate texts over the Vehicle schema: comparisons on immediate and
/// path attributes, arithmetic, BETWEEN, NULL-producing comparisons, and
/// AND/OR/NOT composition.
fn arb_pred() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0..70i32, arb_cmp()).prop_map(|(n, op)| format!("v.id {op} {n}")),
        (600..2000i32, arb_cmp()).prop_map(|(n, op)| format!("v.weight {op} {n}")),
        (0..10i32, arb_cmp())
            .prop_map(|(n, op)| format!("v.drivetrain.engine.cylinders {op} {n}")),
        prop_oneof![
            Just("AUTOMATIC".to_string()),
            Just("MANUAL".to_string()),
            Just("TIPTRONIC".to_string())
        ]
        .prop_map(|s| format!("v.drivetrain.transmission = '{s}'")),
        (0..40i32, 0..70i32).prop_map(|(a, b)| format!("v.id BETWEEN {a} AND {b}")),
        (1..5i32, 0..300i32).prop_map(|(m, n)| format!("v.id * {m} + 7 < {n}")),
        (800..4000i32).prop_map(|n| format!("v.drivetrain.engine.size % 400 < {}", n % 400 + 1)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) AND ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) OR ({b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

fn arb_cmp() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("="),
        Just("<>"),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">=")
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn compiled_matches_interpreted_at_every_parallelism(pred in arb_pred()) {
        let db = build(48);
        let sql = format!(
            "SELECT v.id, v.weight FROM EVERY Vehicle v WHERE {pred} ORDER BY v.id"
        );
        for par in [1usize, 2, 4, 8] {
            db.set_parallelism(par);
            // Compiled + cached: cold fill, then warm hit.
            db.set_compiled_predicates(true);
            db.set_plan_cache_enabled(true);
            let cold = run(&db, &sql);
            let warm = run(&db, &sql);
            prop_assert_eq!(&cold, &warm, "warm hit diverged (par {})", par);
            // Interpreter, no cache.
            db.set_plan_cache_enabled(false);
            db.set_compiled_predicates(false);
            let interp = run(&db, &sql);
            match (&cold, &interp) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "compiled != interpreted (par {})", par),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "Ok/Err divergence (par {}): {:?}", par, other),
            }
            db.set_compiled_predicates(true);
            db.set_plan_cache_enabled(true);
        }
    }
}

// ----------------------------------------------------------------------
// Counters and hit/miss discipline
// ----------------------------------------------------------------------

#[test]
fn repeated_query_hits_the_cache() {
    let db = build(64);
    let sql = "SELECT v.id FROM EVERY Vehicle v WHERE v.weight > 900 ORDER BY v.id";
    let before = db.engine_metrics().plan_cache;
    let first = run(&db, sql).unwrap();
    let mid = db.engine_metrics().plan_cache;
    assert_eq!(mid.misses, before.misses + 1, "cold run is a miss");
    assert_eq!(mid.hits, before.hits, "cold run is not a hit");
    for _ in 0..5 {
        assert_eq!(run(&db, sql).unwrap(), first);
    }
    let after = db.engine_metrics().plan_cache;
    assert_eq!(after.hits, mid.hits + 5, "warm runs all hit");
    assert_eq!(after.misses, mid.misses, "warm runs add no misses");
}

#[test]
fn whitespace_differences_share_one_entry() {
    let db = build(32);
    let a = "SELECT v.id FROM EVERY Vehicle v WHERE v.id < 5 ORDER BY v.id";
    let b = "SELECT   v.id\n  FROM EVERY Vehicle v\n  WHERE v.id < 5\n  ORDER BY v.id";
    let r1 = run(&db, a).unwrap();
    let before = db.engine_metrics().plan_cache;
    let r2 = run(&db, b).unwrap();
    let after = db.engine_metrics().plan_cache;
    assert_eq!(r1, r2);
    assert_eq!(after.hits, before.hits + 1, "layout variant hits the same entry");
    assert_eq!(after.misses, before.misses);
}

#[test]
fn capacity_pressure_evicts_lru() {
    let db = build(16);
    for i in 0..200 {
        let sql = format!("SELECT v.id FROM EVERY Vehicle v WHERE v.id = {i} ORDER BY v.id");
        run(&db, &sql).unwrap();
    }
    let stats = db.engine_metrics().plan_cache;
    assert!(
        stats.evictions > 0,
        "200 distinct statements against a 128-plan cache must evict: {stats:?}"
    );
    assert_eq!(stats.misses, 200 + stats.invalidations);
}

#[test]
fn compile_time_is_accounted() {
    let db = build(16);
    run(&db, "SELECT v.id FROM EVERY Vehicle v WHERE v.id < 3 ORDER BY v.id").unwrap();
    assert!(
        db.engine_metrics().compile_ns > 0,
        "preparing a cacheable plan must record compile time"
    );
}

// ----------------------------------------------------------------------
// Epoch invalidation: no stale plan survives DDL / index / stats changes
// ----------------------------------------------------------------------

#[test]
fn create_index_invalidates_cached_plans() {
    let db = build(64);
    let sql = "SELECT v.id FROM EVERY Vehicle v \
               WHERE v.drivetrain.engine.cylinders = 2 ORDER BY v.id";
    let plain = run(&db, sql).unwrap();
    assert_eq!(run(&db, sql).unwrap(), plain); // warm
    let before = db.engine_metrics().plan_cache;
    db.execute("CREATE INDEX ON Vehicle(drivetrain.engine.cylinders)")
        .unwrap();
    db.collect_stats().unwrap();
    // The cached sequential plan was built under the old epoch: it must be
    // invalidated, and the fresh plan (now index-eligible) must agree.
    assert_eq!(run(&db, sql).unwrap(), plain);
    let after = db.engine_metrics().plan_cache;
    assert_eq!(
        after.invalidations,
        before.invalidations + 1,
        "index build + stats refresh must invalidate the cached plan"
    );
    assert_eq!(after.misses, before.misses + 1, "the re-prepare is a miss");
}

#[test]
fn drop_index_invalidates_plans_that_use_it() {
    let db = build(64);
    db.execute("CREATE INDEX ON Vehicle(weight)").unwrap();
    db.collect_stats().unwrap();
    let sql = "SELECT v.id FROM EVERY Vehicle v WHERE v.weight = 940 ORDER BY v.id";
    let with_index = run(&db, sql).unwrap();
    assert_eq!(run(&db, sql).unwrap(), with_index); // warm: cached, index-served
    // Drop through the catalog (no DROP INDEX statement surface): a stale
    // cached plan would probe a vanished index and fail or miss rows.
    db.catalog().drop_index("Vehicle", "weight").unwrap();
    let after_drop = run(&db, sql).unwrap();
    assert_eq!(after_drop, with_index, "fresh plan after drop agrees");
}

#[test]
fn schema_change_invalidates_cached_plans() {
    let db = build(32);
    let sql = "SELECT v.id FROM EVERY Vehicle v WHERE v.id < 10 ORDER BY v.id";
    let r = run(&db, sql).unwrap();
    assert_eq!(run(&db, sql).unwrap(), r);
    let before = db.engine_metrics().plan_cache;
    db.execute("CREATE CLASS Depot TUPLE (name String(16))").unwrap();
    assert_eq!(run(&db, sql).unwrap(), r);
    let after = db.engine_metrics().plan_cache;
    assert_eq!(after.invalidations, before.invalidations + 1);
}

#[test]
fn dml_does_not_invalidate_but_is_visible() {
    let db = build(8);
    let sql = "SELECT v.id FROM EVERY Vehicle v WHERE v.id >= 0 ORDER BY v.id";
    assert_eq!(run(&db, sql).unwrap().len(), 8);
    let before = db.engine_metrics().plan_cache;
    // Plans reference schema/statistics, not rows: inserting an object
    // must NOT invalidate, and the cached plan must still see the new row.
    db.catalog()
        .new_object(
            "Vehicle",
            Value::tuple(vec![
                ("id", Value::Integer(100)),
                ("weight", Value::Integer(1000)),
                ("drivetrain", Value::Null),
            ]),
        )
        .unwrap();
    let rows = run(&db, sql).unwrap();
    assert_eq!(rows.len(), 9, "cached plan sees freshly inserted rows");
    let after = db.engine_metrics().plan_cache;
    assert_eq!(after.invalidations, before.invalidations, "DML never invalidates");
    assert_eq!(after.hits, before.hits + 1, "DML leaves the cached plan valid");
}

// ----------------------------------------------------------------------
// EXPLAIN ANALYZE: fresh vs cached
// ----------------------------------------------------------------------

#[test]
fn explain_analyze_distinguishes_cached_from_fresh() {
    let db = build(32);
    let sql = "SELECT v.id FROM EVERY Vehicle v WHERE v.weight > 900 ORDER BY v.id";
    let first = db.explain_analyze(sql).unwrap();
    assert!(
        first.contains("plan: fresh (epoch"),
        "cold EXPLAIN ANALYZE reports a fresh plan:\n{first}"
    );
    let second = db.explain_analyze(sql).unwrap();
    assert!(
        second.contains("plan: cached (epoch"),
        "warm EXPLAIN ANALYZE reports the cached plan:\n{second}"
    );
    assert!(second.contains("(plan reused)"), "{second}");
    // The instrumented and plain forms share one entry.
    let before = db.engine_metrics().plan_cache;
    run(&db, sql).unwrap();
    let after = db.engine_metrics().plan_cache;
    assert_eq!(after.hits, before.hits + 1, "SELECT hits the EXPLAIN ANALYZE entry");
    // Epoch bump flips it back to fresh.
    db.collect_stats().unwrap();
    let third = db.explain_analyze(sql).unwrap();
    assert!(third.contains("plan: fresh (epoch"), "{third}");
}

#[test]
fn cached_run_preserves_trace_and_answers() {
    let db = build(64);
    let sql = "SELECT v.id FROM EVERY Vehicle v \
               WHERE v.drivetrain.engine.cylinders = 2 ORDER BY v.id";
    let cold = run(&db, sql).unwrap();
    let cold_trace = db.last_trace();
    let warm = run(&db, sql).unwrap();
    let warm_trace = db.last_trace();
    assert_eq!(cold, warm);
    assert_eq!(cold_trace, warm_trace, "cached execution replays the same stages");
    assert_eq!(cold.len(), 16, "quarter of 64 vehicles have 2 cylinders");
}
