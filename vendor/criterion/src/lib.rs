//! Vendored stand-in for the `criterion` crate so the workspace builds
//! offline. Implements the group/bench_function/bench_with_input surface
//! the MOOD benches use with a plain wall-clock measurement loop: warm up
//! once, then run batches until `measurement_time` elapses (capped by
//! `sample_size` batches) and report min/mean/max per-iteration time.
//! No statistics, plots, or baselines — just comparable numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up / calibration batch.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Size batches so one batch is ~1/sample_size of the budget.
        let batch_budget = self.measurement_time / self.sample_size as u32;
        let iters_per_batch = (batch_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            if started.elapsed() > self.measurement_time {
                break;
            }
            let mut b = Bencher {
                iters: iters_per_batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_batch as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {id:<40} time: [{} {} {}] ({} samples x {iters_per_batch} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Benches are registered with harness = false semantics under
            // criterion; `cargo test` still invokes them with --test flags,
            // which we ignore beyond honoring a quick exit for listing.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5).measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
