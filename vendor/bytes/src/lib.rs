//! Vendored stand-in for the `bytes` crate so the workspace builds
//! offline. `Bytes` is a read cursor over an owned buffer; `BytesMut` is a
//! growable write buffer. Only the little-endian accessors the MOOD codecs
//! use are implemented.

use std::fmt;

/// Read side: a cursor over an owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off the next `n` bytes as their own `Bytes`, advancing self.
    /// Panics if fewer than `n` bytes remain (matching the real crate).
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }

    /// The remaining (unread) bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_ref())
    }
}

/// Write side: a growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_ref())
    }
}

macro_rules! get_impl {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(fn $name(&mut self) -> $ty;)*
    };
}

macro_rules! get_le {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(fn $name(&mut self) -> $ty {
            <$ty>::from_le_bytes(
                self.take(std::mem::size_of::<$ty>()).try_into().expect("sized"),
            )
        })*
    };
}

/// Read accessors (the subset of `bytes::Buf` used here).
pub trait Buf {
    fn remaining(&self) -> usize;
    get_impl!(
        get_u8 -> u8,
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f64_le -> f64,
    );
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    get_le!(
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f64_le -> f64,
    );
}

macro_rules! put_le {
    ($($name:ident($ty:ty)),* $(,)?) => {
        $(fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        })*
    };
}

/// Write accessors (the subset of `bytes::BufMut` used here).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f64_le(f64),
    );
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_i64_le(-42);
        w.put_f64_le(2.5);
        w.put_slice(b"abc");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.split_to(3).to_vec(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_advances_cursor() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32_le();
    }
}
