//! # mood-trace — structured tracing for the MOOD query lifecycle
//!
//! A lightweight tracing facade: the query layer opens a [`Span`] per
//! lifecycle phase (parse → bind → optimize → execute) and per algebra
//! operator; each span captures a scoped [`MetricsSnapshot`] delta (page
//! accesses attributed to the span's window), an optional actual row count,
//! and wall-clock time. Finished spans are dispatched to pluggable
//! [`Subscriber`]s — a [`RingBuffer`] collector for tests and programmatic
//! inspection, a [`TextDump`] that renders a human-readable indented log
//! for the CLI.
//!
//! Spans are intentionally synchronous and coordinator-side: parallel
//! operators still run their workers freely, and because [`DiskMetrics`]
//! totals are always the sum of the per-thread counts, a span's delta is
//! exact no matter how the work was distributed across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mood_storage::{DiskMetrics, MetricsSnapshot};
use parking_lot::Mutex;

/// A finished span, as delivered to subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `"parse"`, `"execute"`, `"op:SELECT"`.
    pub name: String,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: usize,
    /// Free-form attributes attached while the span was open.
    pub attrs: Vec<(String, String)>,
    /// Actual row count, when the span produced rows.
    pub rows: Option<u64>,
    /// Page/buffer counter delta over the span's window.
    pub delta: MetricsSnapshot,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
}

/// Receives finished spans. Implementations must tolerate concurrent calls.
pub trait Subscriber: Send + Sync {
    fn on_span(&self, span: &SpanRecord);
}

#[derive(Default)]
struct TracerInner {
    subscribers: Mutex<Vec<Arc<dyn Subscriber>>>,
    /// Subscriber count mirrored outside the mutex so the hot path can
    /// test "is anyone listening?" with one atomic load.
    active: AtomicUsize,
    depth: AtomicUsize,
}

/// Entry point: hands out spans and fans finished ones out to subscribers.
/// Cloning shares the subscriber list (Arc).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a subscriber; it sees every span *opened* after this call
    /// (a span opened while no subscriber was attached records nothing).
    pub fn subscribe(&self, sub: Arc<dyn Subscriber>) {
        self.inner.subscribers.lock().push(sub);
        self.inner.active.fetch_add(1, Ordering::Release);
    }

    /// True when at least one subscriber is attached — callers may skip
    /// span bookkeeping entirely when tracing is off.
    pub fn enabled(&self) -> bool {
        self.inner.active.load(Ordering::Acquire) > 0
    }

    /// Open a span. The span measures the `metrics` delta and wall-clock
    /// time from now until it is dropped (or [`Span::finish`]ed).
    ///
    /// With no subscriber attached the span is inert: no counter snapshot
    /// is taken and nothing is dispatched on drop, so tracing costs one
    /// atomic load per span on the query hot path.
    pub fn span(&self, name: impl Into<String>, metrics: &DiskMetrics) -> Span {
        let recording = self.enabled();
        let depth = if recording {
            self.inner.depth.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        Span {
            tracer: self.clone(),
            name: if recording { name.into() } else { String::new() },
            depth,
            attrs: Vec::new(),
            rows: None,
            metrics: metrics.clone(),
            start_snapshot: if recording {
                metrics.snapshot()
            } else {
                MetricsSnapshot::default()
            },
            start: Instant::now(),
            finished: false,
            recording,
        }
    }

    /// Run `f` inside a span named `name`, recording the result row count
    /// via `rows(&T)`.
    pub fn in_span<T>(
        &self,
        name: &str,
        metrics: &DiskMetrics,
        rows: impl FnOnce(&T) -> Option<u64>,
        f: impl FnOnce() -> T,
    ) -> T {
        let mut span = self.span(name, metrics);
        let out = f();
        if let Some(n) = rows(&out) {
            span.set_rows(n);
        }
        out
    }

    fn dispatch(&self, record: &SpanRecord) {
        self.inner.depth.fetch_sub(1, Ordering::Relaxed);
        for sub in self.inner.subscribers.lock().iter() {
            sub.on_span(record);
        }
    }
}

/// An open span; finishes (and reports) when dropped.
pub struct Span {
    tracer: Tracer,
    name: String,
    depth: usize,
    attrs: Vec<(String, String)>,
    rows: Option<u64>,
    metrics: DiskMetrics,
    start_snapshot: MetricsSnapshot,
    start: Instant,
    finished: bool,
    /// False when the span was opened with no subscriber attached: emit
    /// builds an empty record and skips dispatch (and depth bookkeeping,
    /// which was never incremented).
    recording: bool,
}

impl Span {
    /// Attach a key/value attribute.
    pub fn attr(&mut self, key: impl Into<String>, value: impl ToString) {
        self.attrs.push((key.into(), value.to_string()));
    }

    /// Record the span's actual output row count.
    pub fn set_rows(&mut self, rows: u64) {
        self.rows = Some(rows);
    }

    /// Finish eagerly (drop would do the same).
    pub fn finish(mut self) -> SpanRecord {
        self.emit()
    }

    fn emit(&mut self) -> SpanRecord {
        self.finished = true;
        if !self.recording {
            return SpanRecord {
                name: std::mem::take(&mut self.name),
                depth: self.depth,
                attrs: std::mem::take(&mut self.attrs),
                rows: self.rows,
                delta: MetricsSnapshot::default(),
                elapsed: self.start.elapsed(),
            };
        }
        let record = SpanRecord {
            name: std::mem::take(&mut self.name),
            depth: self.depth,
            attrs: std::mem::take(&mut self.attrs),
            rows: self.rows,
            delta: self.metrics.snapshot().delta(&self.start_snapshot),
            elapsed: self.start.elapsed(),
        };
        self.tracer.dispatch(&record);
        record
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.emit();
        }
    }
}

/// Bounded in-memory collector: keeps the last `capacity` spans. The test
/// harness reads these back to assert on the query lifecycle.
pub struct RingBuffer {
    capacity: usize,
    records: Mutex<std::collections::VecDeque<SpanRecord>>,
}

impl RingBuffer {
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(RingBuffer {
            capacity: capacity.max(1),
            records: Mutex::new(std::collections::VecDeque::new()),
        })
    }

    /// Copy of the retained spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().iter().cloned().collect()
    }

    /// Retained spans with the given name, oldest first.
    pub fn named(&self, name: &str) -> Vec<SpanRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| r.name == name)
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

impl Subscriber for RingBuffer {
    fn on_span(&self, span: &SpanRecord) {
        let mut records = self.records.lock();
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(span.clone());
    }
}

/// Renders finished spans as indented human-readable lines; the CLI's
/// `.spans` command drains these.
#[derive(Default)]
pub struct TextDump {
    lines: Mutex<Vec<String>>,
}

impl TextDump {
    pub fn new() -> Arc<Self> {
        Arc::new(TextDump::default())
    }

    /// Take the accumulated lines (clears the buffer).
    pub fn drain(&self) -> Vec<String> {
        std::mem::take(&mut self.lines.lock())
    }
}

/// One-line rendering of a span: name, rows, page delta, elapsed time.
pub fn render_span(r: &SpanRecord) -> String {
    let mut line = format!("{}{}", "  ".repeat(r.depth), r.name);
    if let Some(rows) = r.rows {
        line.push_str(&format!(" rows={rows}"));
    }
    let pages = r.delta.total_reads() + r.delta.writes;
    line.push_str(&format!(
        " pages={pages} (seq={} rnd={} idx={} w={})",
        r.delta.seq_pages, r.delta.rnd_pages, r.delta.idx_pages, r.delta.writes
    ));
    line.push_str(&format!(" time={:.3}ms", r.elapsed.as_secs_f64() * 1e3));
    for (k, v) in &r.attrs {
        line.push_str(&format!(" {k}={v}"));
    }
    line
}

impl Subscriber for TextDump {
    fn on_span(&self, span: &SpanRecord) {
        self.lines.lock().push(render_span(span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::AccessKind;

    #[test]
    fn span_captures_rows_delta_and_attrs() {
        let tracer = Tracer::new();
        let ring = RingBuffer::new(8);
        tracer.subscribe(ring.clone());
        let metrics = DiskMetrics::new();
        {
            let mut span = tracer.span("op:SELECT", &metrics);
            span.attr("predicate", "cylinders = 2");
            metrics.record_read(AccessKind::Sequential);
            metrics.record_read(AccessKind::Random);
            span.set_rows(4);
        }
        let records = ring.records();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.name, "op:SELECT");
        assert_eq!(r.rows, Some(4));
        assert_eq!(r.delta.seq_pages, 1);
        assert_eq!(r.delta.rnd_pages, 1);
        assert_eq!(r.attrs, vec![("predicate".to_string(), "cylinders = 2".to_string())]);
    }

    #[test]
    fn nested_spans_record_depth() {
        let tracer = Tracer::new();
        let ring = RingBuffer::new(8);
        tracer.subscribe(ring.clone());
        let metrics = DiskMetrics::new();
        {
            let _outer = tracer.span("execute", &metrics);
            let _inner = tracer.span("op:BIND", &metrics);
        }
        let records = ring.records();
        // Inner finishes (drops) first.
        assert_eq!(records[0].name, "op:BIND");
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[1].name, "execute");
        assert_eq!(records[1].depth, 0);
    }

    #[test]
    fn ring_buffer_keeps_last_n() {
        let tracer = Tracer::new();
        let ring = RingBuffer::new(2);
        tracer.subscribe(ring.clone());
        let metrics = DiskMetrics::new();
        for i in 0..5 {
            tracer.span(format!("s{i}"), &metrics);
        }
        let names: Vec<String> = ring.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s3", "s4"]);
    }

    #[test]
    fn delta_is_scoped_to_the_span_window() {
        let tracer = Tracer::new();
        let ring = RingBuffer::new(8);
        tracer.subscribe(ring.clone());
        let metrics = DiskMetrics::new();
        metrics.record_read(AccessKind::Random); // before: not counted
        {
            let _span = tracer.span("scan", &metrics);
            metrics.record_read(AccessKind::Sequential);
        }
        metrics.record_read(AccessKind::Random); // after: not counted
        let r = &ring.records()[0];
        assert_eq!(r.delta.total_reads(), 1);
        assert_eq!(r.delta.seq_pages, 1);
    }

    #[test]
    fn parallel_worker_pages_land_in_the_span_delta() {
        let tracer = Tracer::new();
        let ring = RingBuffer::new(8);
        tracer.subscribe(ring.clone());
        let metrics = DiskMetrics::new();
        {
            let _span = tracer.span("op:SELECT", &metrics);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let m = metrics.clone();
                    s.spawn(move || m.record_read(AccessKind::Sequential));
                }
            });
        }
        assert_eq!(ring.records()[0].delta.seq_pages, 4);
    }

    #[test]
    fn text_dump_renders_indented_lines() {
        let tracer = Tracer::new();
        let dump = TextDump::new();
        tracer.subscribe(dump.clone());
        let metrics = DiskMetrics::new();
        {
            let _outer = tracer.span("execute", &metrics);
            let mut inner = tracer.span("op:SELECT", &metrics);
            inner.set_rows(3);
        }
        let lines = dump.drain();
        assert!(lines[0].starts_with("  op:SELECT rows=3"));
        assert!(lines[1].starts_with("execute"));
        assert!(dump.drain().is_empty(), "drain clears");
    }

    #[test]
    fn disabled_tracer_reports_no_subscribers() {
        let tracer = Tracer::new();
        assert!(!tracer.enabled());
        tracer.subscribe(RingBuffer::new(1));
        assert!(tracer.enabled());
    }

    #[test]
    fn in_span_records_result_rows() {
        let tracer = Tracer::new();
        let ring = RingBuffer::new(4);
        tracer.subscribe(ring.clone());
        let metrics = DiskMetrics::new();
        let out: Vec<u32> =
            tracer.in_span("op:PROJECT", &metrics, |v: &Vec<u32>| Some(v.len() as u64), || {
                vec![1, 2, 3]
            });
        assert_eq!(out.len(), 3);
        assert_eq!(ring.records()[0].rows, Some(3));
    }
}
