//! Disk-resident B+-tree index.
//!
//! Keys are byte strings in a byte-comparable encoding (the data-model layer
//! provides the encoding); payloads are OIDs. Non-unique indexes store one
//! entry per (key, oid) pair, kept sorted, so duplicates enumerate in OID
//! order. Deletion is lazy (no rebalancing), which ESM-era storage managers
//! also did; the tree never loses search correctness, only space.
//!
//! Page 0 of the index file is a metadata page carrying the root pointer and
//! the statistics the cost model's Table 9 needs: `level(I)`, `leaves(I)`,
//! `keysize(I)`, `unique(I)` and the derived order `v(I)`.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::metrics::AccessKind;
use crate::oid::{FileId, Oid, PageId};
use crate::page::{Page, PAGE_SIZE, PAGE_USABLE};

const TAG_META: u8 = 0;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const NO_PAGE: u32 = u32::MAX;

/// Header bytes reserved in every node page.
const NODE_HEADER: usize = 16;

/// Statistics exposed for the cost model (paper Table 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BTreeStats {
    /// `level(I)` — number of levels (1 for a lone leaf).
    pub levels: u32,
    /// `leaves(I)` — number of leaf pages.
    pub leaves: u32,
    /// `keysize(I)` — average key size in bytes (rounded).
    pub keysize: u32,
    /// `unique(I)` flag.
    pub unique: bool,
    /// Total number of entries.
    pub entries: u64,
    /// `v(I)` — the order: half the fanout a page of this keysize supports.
    pub order: u32,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Oid)>,
        next: Option<PageId>,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                NODE_HEADER
                    + entries
                        .iter()
                        .map(|(k, _)| 2 + k.len() + Oid::ENCODED_LEN)
                        .sum::<usize>()
            }
            Node::Internal { keys, children } => {
                NODE_HEADER + children.len() * 4 + keys.iter().map(|k| 2 + k.len()).sum::<usize>()
            }
        }
    }

    fn write(&self, page: &mut Page) {
        page.data.fill(0);
        match self {
            Node::Leaf { entries, next } => {
                page.data[0] = TAG_LEAF;
                page.data[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                page.data[3..7]
                    .copy_from_slice(&next.map(|p| p.0).unwrap_or(NO_PAGE).to_le_bytes());
                let mut off = NODE_HEADER;
                for (k, oid) in entries {
                    page.data[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    off += 2;
                    page.data[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    page.data[off..off + Oid::ENCODED_LEN].copy_from_slice(&oid.to_bytes());
                    off += Oid::ENCODED_LEN;
                }
            }
            Node::Internal { keys, children } => {
                page.data[0] = TAG_INTERNAL;
                page.data[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                let mut off = NODE_HEADER;
                for c in children {
                    page.data[off..off + 4].copy_from_slice(&c.0.to_le_bytes());
                    off += 4;
                }
                for k in keys {
                    page.data[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    off += 2;
                    page.data[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                }
            }
        }
    }

    fn read(page: &Page) -> Result<Node> {
        let count = u16::from_le_bytes([page.data[1], page.data[2]]) as usize;
        match page.data[0] {
            TAG_LEAF => {
                let next_raw = u32::from_le_bytes(page.data[3..7].try_into().unwrap());
                let next = if next_raw == NO_PAGE {
                    None
                } else {
                    Some(PageId(next_raw))
                };
                let mut entries = Vec::with_capacity(count);
                let mut off = NODE_HEADER;
                for _ in 0..count {
                    let klen = u16::from_le_bytes([page.data[off], page.data[off + 1]]) as usize;
                    off += 2;
                    let key = page.data[off..off + klen].to_vec();
                    off += klen;
                    let oid = Oid::from_bytes(&page.data[off..off + Oid::ENCODED_LEN])
                        .ok_or(StorageError::Corrupt("bad OID in leaf".into()))?;
                    off += Oid::ENCODED_LEN;
                    entries.push((key, oid));
                }
                Ok(Node::Leaf { entries, next })
            }
            TAG_INTERNAL => {
                let mut off = NODE_HEADER;
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..count + 1 {
                    children.push(PageId(u32::from_le_bytes(
                        page.data[off..off + 4].try_into().unwrap(),
                    )));
                    off += 4;
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = u16::from_le_bytes([page.data[off], page.data[off + 1]]) as usize;
                    off += 2;
                    keys.push(page.data[off..off + klen].to_vec());
                    off += klen;
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(StorageError::Corrupt(format!("unexpected node tag {t}"))),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Meta {
    root: PageId,
    levels: u32,
    entries: u64,
    leaves: u32,
    unique: bool,
    key_bytes: u64,
}

impl Meta {
    fn write(&self, page: &mut Page) {
        page.data.fill(0);
        page.data[0] = TAG_META;
        page.data[4..8].copy_from_slice(&self.root.0.to_le_bytes());
        page.data[8..12].copy_from_slice(&self.levels.to_le_bytes());
        page.data[12..20].copy_from_slice(&self.entries.to_le_bytes());
        page.data[20..24].copy_from_slice(&self.leaves.to_le_bytes());
        page.data[24] = self.unique as u8;
        page.data[25..33].copy_from_slice(&self.key_bytes.to_le_bytes());
    }

    fn read(page: &Page) -> Result<Meta> {
        if page.data[0] != TAG_META {
            return Err(StorageError::Corrupt("missing B+-tree meta page".into()));
        }
        Ok(Meta {
            root: PageId(u32::from_le_bytes(page.data[4..8].try_into().unwrap())),
            levels: u32::from_le_bytes(page.data[8..12].try_into().unwrap()),
            entries: u64::from_le_bytes(page.data[12..20].try_into().unwrap()),
            leaves: u32::from_le_bytes(page.data[20..24].try_into().unwrap()),
            unique: page.data[24] != 0,
            key_bytes: u64::from_le_bytes(page.data[25..33].try_into().unwrap()),
        })
    }
}

/// A B+-tree index over byte-encoded keys.
///
/// Concurrency: readers are safe alongside one writer (readers reach
/// freshly split keys through the leaf chain); writers serialize on an
/// internal mutex, so the tree is safe for arbitrary concurrent use.
pub struct BTree {
    file: FileId,
    pool: Arc<BufferPool>,
    write_lock: parking_lot::Mutex<()>,
}

impl BTree {
    /// Create an empty index.
    pub fn create(pool: Arc<BufferPool>, unique: bool) -> Result<BTree> {
        let file = pool.disk().create_file()?;
        let meta_pid = pool.disk().allocate_page(file)?;
        debug_assert_eq!(meta_pid, PageId(0));
        let root_pid = pool.disk().allocate_page(file)?;
        let tree = BTree {
            file,
            pool,
            write_lock: parking_lot::Mutex::new(()),
        };
        tree.store_node(
            root_pid,
            &Node::Leaf {
                entries: Vec::new(),
                next: None,
            },
        )?;
        tree.store_meta(&Meta {
            root: root_pid,
            levels: 1,
            entries: 0,
            leaves: 1,
            unique,
            key_bytes: 0,
        })?;
        Ok(tree)
    }

    /// Re-open an existing index file.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> BTree {
        BTree {
            file,
            pool,
            write_lock: parking_lot::Mutex::new(()),
        }
    }

    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn load_meta(&self) -> Result<Meta> {
        self.pool
            .with_page(self.file, PageId(0), AccessKind::Index, Meta::read)?
            .map_err(|e| e.locate(self.file, PageId(0)))
    }

    fn store_meta(&self, meta: &Meta) -> Result<()> {
        self.pool
            .with_page_mut(self.file, PageId(0), AccessKind::Index, |p| meta.write(p))
    }

    fn load_node(&self, pid: PageId) -> Result<Node> {
        self.pool
            .with_page(self.file, pid, AccessKind::Index, Node::read)?
            .map_err(|e| e.locate(self.file, pid))
    }

    fn store_node(&self, pid: PageId, node: &Node) -> Result<()> {
        debug_assert!(node.serialized_size() <= PAGE_USABLE);
        self.pool
            .with_page_mut(self.file, pid, AccessKind::Index, |p| node.write(p))
    }

    fn alloc_node(&self, node: &Node) -> Result<PageId> {
        let pid = self.pool.disk().allocate_page(self.file)?;
        self.store_node(pid, node)?;
        Ok(pid)
    }

    /// Insert (key, oid). Fails with [`StorageError::DuplicateKey`] on a
    /// unique index when the key already exists.
    pub fn insert(&self, key: &[u8], oid: Oid) -> Result<()> {
        let _guard = self.write_lock.lock();
        if key.len() + 2 + Oid::ENCODED_LEN > PAGE_SIZE / 4 {
            return Err(StorageError::RecordTooLarge {
                size: key.len(),
                max: PAGE_SIZE / 4 - 2 - Oid::ENCODED_LEN,
            });
        }
        let mut meta = self.load_meta()?;
        let split = self.insert_rec(meta.root, key, oid, &mut meta)?;
        if let Some((sep, right)) = split {
            let new_root = self.alloc_node(&Node::Internal {
                keys: vec![sep],
                children: vec![meta.root, right],
            })?;
            meta.root = new_root;
            meta.levels += 1;
        }
        meta.entries += 1;
        meta.key_bytes += key.len() as u64;
        self.store_meta(&meta)
    }

    /// Recursive insert; returns the (separator, right-page) of a split.
    fn insert_rec(
        &self,
        pid: PageId,
        key: &[u8],
        oid: Oid,
        meta: &mut Meta,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        match self.load_node(pid)? {
            Node::Leaf { mut entries, next } => {
                if meta.unique && entries.iter().any(|(k, _)| k.as_slice() == key) {
                    return Err(StorageError::DuplicateKey);
                }
                let pos = entries.partition_point(|(k, o)| (k.as_slice(), *o) < (key, oid));
                entries.insert(pos, (key.to_vec(), oid));
                let node = Node::Leaf { entries, next };
                if node.serialized_size() <= PAGE_USABLE {
                    self.store_node(pid, &node)?;
                    return Ok(None);
                }
                // Split the leaf.
                let Node::Leaf { mut entries, next } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right = self.alloc_node(&Node::Leaf {
                    entries: right_entries,
                    next,
                })?;
                self.store_node(
                    pid,
                    &Node::Leaf {
                        entries,
                        next: Some(right),
                    },
                )?;
                meta.leaves += 1;
                Ok(Some((sep, right)))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let split = self.insert_rec(children[idx], key, oid, meta)?;
                let Some((sep, right)) = split else {
                    return Ok(None);
                };
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                let node = Node::Internal { keys, children };
                if node.serialized_size() <= PAGE_USABLE {
                    self.store_node(pid, &node)?;
                    return Ok(None);
                }
                let Node::Internal {
                    mut keys,
                    mut children,
                } = node
                else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let promoted = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // the promoted key moves up, not right
                let right_children = children.split_off(mid + 1);
                let right = self.alloc_node(&Node::Internal {
                    keys: right_keys,
                    children: right_children,
                })?;
                self.store_node(pid, &Node::Internal { keys, children })?;
                Ok(Some((promoted, right)))
            }
        }
    }

    /// Find the *leftmost* leaf that could contain `key`.
    ///
    /// Routing takes the `< key` branch (not `<= key`): a run of duplicate
    /// keys may straddle a split whose separator equals the key, so readers
    /// must start at the left sibling and walk `next` pointers.
    fn descend_left(&self, key: &[u8]) -> Result<PageId> {
        let meta = self.load_meta()?;
        let mut pid = meta.root;
        loop {
            match self.load_node(pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() < key);
                    pid = children[idx];
                }
            }
        }
    }

    /// All OIDs stored under exactly `key`.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<Oid>> {
        let mut out = Vec::new();
        self.range_scan(Some(key), true, Some(key), true, |_, oid| {
            out.push(oid);
            true
        })?;
        Ok(out)
    }

    /// Range scan over `[lo, hi]` with per-bound inclusivity; `None` means
    /// unbounded. The visitor returns `false` to stop.
    pub fn range_scan(
        &self,
        lo: Option<&[u8]>,
        lo_inclusive: bool,
        hi: Option<&[u8]>,
        hi_inclusive: bool,
        mut visit: impl FnMut(&[u8], Oid) -> bool,
    ) -> Result<()> {
        let mut pid = match lo {
            Some(k) => self.descend_left(k)?,
            None => {
                let meta = self.load_meta()?;
                let mut pid = meta.root;
                loop {
                    match self.load_node(pid)? {
                        Node::Leaf { .. } => break pid,
                        Node::Internal { children, .. } => pid = children[0],
                    }
                }
            }
        };
        loop {
            let Node::Leaf { entries, next } = self.load_node(pid)? else {
                return Err(StorageError::CorruptAt {
                    file: self.file,
                    page: pid,
                    detail: "descend ended on internal node".into(),
                });
            };
            for (k, oid) in &entries {
                if let Some(lo) = lo {
                    let below = if lo_inclusive {
                        k.as_slice() < lo
                    } else {
                        k.as_slice() <= lo
                    };
                    if below {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    let above = if hi_inclusive {
                        k.as_slice() > hi
                    } else {
                        k.as_slice() >= hi
                    };
                    if above {
                        return Ok(());
                    }
                }
                if !visit(k, *oid) {
                    return Ok(());
                }
            }
            match next {
                Some(n) => pid = n,
                None => return Ok(()),
            }
        }
    }

    /// Remove one (key, oid) entry. Returns whether an entry was removed.
    pub fn delete(&self, key: &[u8], oid: Oid) -> Result<bool> {
        let _guard = self.write_lock.lock();
        // A duplicate run may span several leaves; walk right until the
        // entry is found or the keys pass the target.
        let mut pid = self.descend_left(key)?;
        loop {
            let Node::Leaf { mut entries, next } = self.load_node(pid)? else {
                return Err(StorageError::CorruptAt {
                    file: self.file,
                    page: pid,
                    detail: "descend ended on internal node".into(),
                });
            };
            if entries.first().is_some_and(|(k, _)| k.as_slice() > key) {
                return Ok(false);
            }
            let before = entries.len();
            entries.retain(|(k, o)| !(k.as_slice() == key && *o == oid));
            if entries.len() < before {
                self.store_node(pid, &Node::Leaf { entries, next })?;
                let mut meta = self.load_meta()?;
                meta.entries = meta.entries.saturating_sub(1);
                meta.key_bytes = meta.key_bytes.saturating_sub(key.len() as u64);
                self.store_meta(&meta)?;
                return Ok(true);
            }
            if entries.last().is_some_and(|(k, _)| k.as_slice() > key) {
                return Ok(false);
            }
            match next {
                Some(n) => pid = n,
                None => return Ok(false),
            }
        }
    }

    /// Table 9 statistics.
    pub fn stats(&self) -> Result<BTreeStats> {
        let meta = self.load_meta()?;
        let keysize = meta.key_bytes.checked_div(meta.entries).unwrap_or(0) as u32;
        let entry = 2 + keysize as usize + Oid::ENCODED_LEN;
        let fanout = ((PAGE_USABLE - NODE_HEADER) / entry.max(1)).max(2) as u32;
        Ok(BTreeStats {
            levels: meta.levels,
            leaves: meta.leaves,
            keysize,
            unique: meta.unique,
            entries: meta.entries,
            order: fanout / 2,
        })
    }

    pub fn len(&self) -> Result<u64> {
        Ok(self.load_meta()?.entries)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::metrics::DiskMetrics;
    use crate::oid::SlotId;

    fn tree(unique: bool) -> BTree {
        let disk = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, 256, DiskMetrics::new()));
        BTree::create(pool, unique).unwrap()
    }

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(9), PageId(n / 100), SlotId((n % 100) as u16), 1)
    }

    fn key(n: u32) -> Vec<u8> {
        // Big-endian so byte order == numeric order.
        n.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_and_lookup_single() {
        let t = tree(true);
        t.insert(&key(5), oid(5)).unwrap();
        assert_eq!(t.lookup(&key(5)).unwrap(), vec![oid(5)]);
        assert!(t.lookup(&key(6)).unwrap().is_empty());
    }

    #[test]
    fn thousands_of_keys_split_correctly() {
        let t = tree(true);
        let n = 5000u32;
        // Insert in a scrambled order to exercise splits everywhere.
        let mut order: Vec<u32> = (0..n).collect();
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(&key(i), oid(i)).unwrap();
        }
        let stats = t.stats().unwrap();
        assert!(
            stats.levels >= 2,
            "5000 keys need multiple levels, got {}",
            stats.levels
        );
        assert!(stats.leaves > 1);
        assert_eq!(stats.entries, n as u64);
        for i in (0..n).step_by(97) {
            assert_eq!(t.lookup(&key(i)).unwrap(), vec![oid(i)], "key {i}");
        }
    }

    #[test]
    fn range_scan_in_order() {
        let t = tree(true);
        for i in 0..1000u32 {
            t.insert(&key(i), oid(i)).unwrap();
        }
        let mut seen = Vec::new();
        t.range_scan(Some(&key(100)), true, Some(&key(199)), true, |k, _| {
            seen.push(u32::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, (100..=199).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_exclusive_bounds() {
        let t = tree(true);
        for i in 0..20u32 {
            t.insert(&key(i), oid(i)).unwrap();
        }
        let mut seen = Vec::new();
        t.range_scan(Some(&key(5)), false, Some(&key(10)), false, |k, _| {
            seen.push(u32::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, vec![6, 7, 8, 9]);
    }

    #[test]
    fn unbounded_scan_sees_everything_sorted() {
        let t = tree(true);
        for i in [5u32, 1, 9, 3, 7] {
            t.insert(&key(i), oid(i)).unwrap();
        }
        let mut seen = Vec::new();
        t.range_scan(None, true, None, true, |k, _| {
            seen.push(u32::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn unique_rejects_duplicates() {
        let t = tree(true);
        t.insert(&key(1), oid(1)).unwrap();
        assert_eq!(t.insert(&key(1), oid(2)), Err(StorageError::DuplicateKey));
    }

    #[test]
    fn non_unique_stores_duplicates_in_oid_order() {
        let t = tree(false);
        t.insert(&key(1), oid(30)).unwrap();
        t.insert(&key(1), oid(10)).unwrap();
        t.insert(&key(1), oid(20)).unwrap();
        assert_eq!(t.lookup(&key(1)).unwrap(), vec![oid(10), oid(20), oid(30)]);
    }

    #[test]
    fn delete_removes_specific_entry() {
        let t = tree(false);
        t.insert(&key(1), oid(10)).unwrap();
        t.insert(&key(1), oid(20)).unwrap();
        assert!(t.delete(&key(1), oid(10)).unwrap());
        assert_eq!(t.lookup(&key(1)).unwrap(), vec![oid(20)]);
        assert!(
            !t.delete(&key(1), oid(10)).unwrap(),
            "second delete is a no-op"
        );
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn stats_track_shape() {
        let t = tree(false);
        assert_eq!(t.stats().unwrap().levels, 1);
        for i in 0..2000u32 {
            t.insert(&key(i), oid(i)).unwrap();
        }
        let s = t.stats().unwrap();
        assert_eq!(s.entries, 2000);
        assert_eq!(s.keysize, 4);
        assert!(!s.unique);
        assert!(
            s.order > 10,
            "4-byte keys give a large order, got {}",
            s.order
        );
        // leaves consistent with entries / fanout.
        assert!(s.leaves as u64 >= s.entries / (2 * s.order as u64 + 1));
    }

    #[test]
    fn variable_length_string_keys() {
        let t = tree(true);
        let words = [
            "apple",
            "banana",
            "cherry",
            "date",
            "elderberry",
            "fig",
            "grape",
        ];
        for (i, w) in words.iter().enumerate() {
            t.insert(w.as_bytes(), oid(i as u32)).unwrap();
        }
        let mut seen = Vec::new();
        t.range_scan(Some(b"banana"), true, Some(b"fig"), true, |k, _| {
            seen.push(String::from_utf8(k.to_vec()).unwrap());
            true
        })
        .unwrap();
        assert_eq!(seen, vec!["banana", "cherry", "date", "elderberry", "fig"]);
    }

    #[test]
    fn oversized_key_rejected() {
        let t = tree(true);
        assert!(matches!(
            t.insert(&vec![0u8; PAGE_SIZE], oid(1)),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn lookups_cost_index_page_reads() {
        let disk = Arc::new(MemDisk::new());
        let metrics = DiskMetrics::new();
        // Tiny pool so index descents actually hit "disk".
        let pool = Arc::new(BufferPool::new(disk, 1, metrics.clone()));
        let t = BTree::create(pool, true).unwrap();
        for i in 0..3000u32 {
            t.insert(&key(i), oid(i)).unwrap();
        }
        metrics.reset();
        t.lookup(&key(1500)).unwrap();
        let snap = metrics.snapshot();
        assert!(snap.idx_pages >= 2, "multi-level descent reads index pages");
        assert_eq!(snap.rnd_pages + snap.seq_pages, 0);
    }
}
