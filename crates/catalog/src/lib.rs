//! # mood-catalog — catalog management for MOOD
//!
//! Section 2 of the paper: the catalog holds class, type and member-function
//! definitions "in a structure similar to a compiler symbol table",
//! persisted on ESM via the `MoodsType` / `MoodsAttribute` / `MoodsFunction`
//! record classes (Figure 2.2). On top of the persisted symbol table this
//! crate provides:
//!
//! * the class hierarchy (multiple inheritance DAG) with effective-attribute
//!   computation and late-binding method resolution ([`hierarchy`]);
//! * class extents: object CRUD with type checking and OID stability
//!   ([`Catalog::new_object`] etc.);
//! * secondary indexes (B+-tree and hash) with automatic maintenance;
//! * the statistics of Table 8/9, collectable by scan or injectable for the
//!   paper's worked examples ([`stats`]).

pub mod error;
pub mod hierarchy;
pub mod persist;
pub mod schema;
pub mod stats;

pub use error::{CatalogError, Result};
pub use persist::{CatalogRoot, CatalogStore};
pub use schema::{AttributeDef, ClassBuilder, ClassDef, ClassKind, MethodSig, TypeId};
pub use stats::{AttrStats, ClassStats, DatabaseStats, RefStats};

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use mood_datamodel::{decode_value, encode_key, encode_value, Resolver, TypeDescriptor, Value};
use mood_storage::{AccessHint, FileId, Oid, StorageManager};

/// Kind of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    BTree,
    Hash,
}

/// A registered secondary index on (class, attribute).
#[derive(Debug, Clone)]
pub struct IndexInfo {
    pub class: String,
    pub attribute: String,
    pub kind: IndexKind,
    pub unique: bool,
    pub file: FileId,
    /// Bucket count (hash indexes only).
    pub buckets: u32,
}

struct Inner {
    classes: hierarchy::ClassMap,
    by_id: HashMap<TypeId, String>,
    extent_class: HashMap<FileId, String>,
    next_type_id: TypeId,
    store: CatalogStore,
    indexes: HashMap<(String, String), IndexInfo>,
    stats: DatabaseStats,
    named: HashMap<String, Oid>,
}

/// The MOOD catalog: symbol table + extents + indexes + statistics.
pub struct Catalog {
    sm: Arc<StorageManager>,
    inner: RwLock<Inner>,
    /// Schema/statistics epoch: bumped by every DDL, index change, stats
    /// refresh and schema reload. Cached query plans are tagged with the
    /// epoch they were compiled under and discarded when it moves — object
    /// inserts/updates/deletes do *not* bump it (plans re-scan extents and
    /// re-probe indexes at execution time, so they stay correct across DML).
    epoch: AtomicU64,
}

const DEFAULT_HASH_BUCKETS: u32 = 64;

impl Catalog {
    /// Create a fresh catalog on `sm`.
    pub fn create(sm: Arc<StorageManager>) -> Result<Catalog> {
        let store = CatalogStore::create(&sm)?;
        Ok(Catalog {
            sm,
            inner: RwLock::new(Inner {
                classes: hierarchy::ClassMap::new(),
                by_id: HashMap::new(),
                extent_class: HashMap::new(),
                next_type_id: 1,
                store,
                indexes: HashMap::new(),
                stats: DatabaseStats::new(),
                named: HashMap::new(),
            }),
            epoch: AtomicU64::new(0),
        })
    }

    /// Reopen a catalog persisted at `root`.
    pub fn open(sm: Arc<StorageManager>, root: CatalogRoot) -> Result<Catalog> {
        let mut store = CatalogStore::open(&sm, root);
        let defs = store.load_all()?;
        let mut classes = hierarchy::ClassMap::new();
        let mut by_id = HashMap::new();
        let mut extent_class = HashMap::new();
        let mut next = 1;
        for def in defs {
            next = next.max(def.type_id + 1);
            by_id.insert(def.type_id, def.name.clone());
            if let Some(f) = def.extent {
                extent_class.insert(f, def.name.clone());
            }
            classes.insert(def.name.clone(), def);
        }
        Ok(Catalog {
            sm,
            inner: RwLock::new(Inner {
                classes,
                by_id,
                extent_class,
                next_type_id: next,
                store,
                indexes: HashMap::new(),
                stats: DatabaseStats::new(),
                named: HashMap::new(),
            }),
            epoch: AtomicU64::new(0),
        })
    }

    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }

    /// The current schema/statistics epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the epoch, invalidating plans compiled under earlier ones.
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The bootstrap root for [`Catalog::open`].
    pub fn root(&self) -> CatalogRoot {
        self.inner.read().store.root()
    }

    /// Rebuild the in-memory schema maps from the persisted catalog pages.
    ///
    /// Called after a rolled-back DDL autocommit: the pages are back to
    /// their pre-statement contents, but the maps may have partially moved.
    /// The index registry is pruned of classes that no longer exist;
    /// statistics and the naming map survive (both are advisory).
    /// `next_type_id` stays monotonic so an id consumed by the failed DDL
    /// is never reissued.
    pub fn reload_schema(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let defs = inner.store.load_all()?;
        let mut classes = hierarchy::ClassMap::new();
        let mut by_id = HashMap::new();
        let mut extent_class = HashMap::new();
        let mut next = inner.next_type_id;
        for def in defs {
            next = next.max(def.type_id + 1);
            by_id.insert(def.type_id, def.name.clone());
            if let Some(f) = def.extent {
                extent_class.insert(f, def.name.clone());
            }
            classes.insert(def.name.clone(), def);
        }
        inner.indexes.retain(|(class, _), _| classes.contains_key(class));
        inner.classes = classes;
        inner.by_id = by_id;
        inner.extent_class = extent_class;
        inner.next_type_id = next;
        drop(inner);
        self.bump_epoch();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Schema definition and evolution
    // ------------------------------------------------------------------

    /// Define a new class or type (the DDL `CREATE CLASS`).
    pub fn define_class(&self, builder: ClassBuilder) -> Result<ClassDef> {
        let mut inner = self.inner.write();
        let name = builder.name().to_string();
        if inner.classes.contains_key(&name) {
            return Err(CatalogError::DuplicateClass(name));
        }
        for sup in builder.superclass_names() {
            if !inner.classes.contains_key(sup) {
                return Err(CatalogError::UnknownClass(sup.clone()));
            }
        }
        hierarchy::check_acyclic(&inner.classes, &name, builder.superclass_names())?;
        let extent = match builder.kind() {
            ClassKind::Class => Some(self.sm.create_heap()?.file_id()),
            ClassKind::Type => None,
        };
        let type_id = inner.next_type_id;
        inner.next_type_id += 1;
        let def = builder.build(type_id, extent);
        // Validate the effective attribute set (inheritance conflicts).
        inner.classes.insert(name.clone(), def.clone());
        if let Err(e) = hierarchy::effective_attributes(&inner.classes, &name) {
            inner.classes.remove(&name);
            return Err(e);
        }
        inner.by_id.insert(type_id, name.clone());
        if let Some(f) = extent {
            inner.extent_class.insert(f, name.clone());
        }
        inner.store.save_class(&def)?;
        drop(inner);
        self.bump_epoch();
        Ok(def)
    }

    /// Drop a class. Refuses while subclasses exist.
    pub fn drop_class(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.classes.contains_key(name) {
            return Err(CatalogError::UnknownClass(name.to_string()));
        }
        if !hierarchy::all_subclasses(&inner.classes, name).is_empty() {
            return Err(CatalogError::InheritanceCycle(format!(
                "cannot drop {name}: subclasses exist"
            )));
        }
        let def = inner.classes.remove(name).expect("checked above");
        inner.by_id.remove(&def.type_id);
        if let Some(f) = def.extent {
            inner.extent_class.remove(&f);
            self.sm.pool().discard_file(f);
            let _ = self.sm.pool().disk().drop_file(f);
        }
        inner.indexes.retain(|(c, _), info| {
            if c == name {
                self.sm.forget_index(info.file);
                let _ = self.sm.pool().disk().drop_file(info.file);
                false
            } else {
                true
            }
        });
        inner.store.delete_class(name)?;
        drop(inner);
        self.bump_epoch();
        Ok(())
    }

    fn mutate_class(&self, name: &str, f: impl FnOnce(&mut ClassDef) -> Result<()>) -> Result<()> {
        let mut inner = self.inner.write();
        let mut def = inner
            .classes
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownClass(name.to_string()))?;
        f(&mut def)?;
        inner.classes.insert(name.to_string(), def.clone());
        // Re-validate inheritance for the whole affected subtree.
        let mut to_check: Vec<String> = vec![name.to_string()];
        to_check.extend(
            hierarchy::all_subclasses(&inner.classes, name)
                .iter()
                .map(|d| d.name.clone()),
        );
        for c in &to_check {
            if let Err(e) = hierarchy::effective_attributes(&inner.classes, c) {
                // Roll back.
                let orig = inner.store.load_all()?;
                inner.classes = orig.into_iter().map(|d| (d.name.clone(), d)).collect();
                return Err(e);
            }
        }
        inner.store.save_class(&def)?;
        drop(inner);
        self.bump_epoch();
        Ok(())
    }

    /// Add an attribute to a class (schema evolution). Existing objects
    /// read the new attribute as `Null`.
    pub fn add_attribute(&self, class: &str, name: &str, ty: TypeDescriptor) -> Result<()> {
        let exists = {
            let inner = self.inner.read();
            hierarchy::effective_attributes(&inner.classes, class)?
                .iter()
                .any(|a| a.name == name)
        };
        if exists {
            return Err(CatalogError::DuplicateAttribute {
                class: class.to_string(),
                attribute: name.to_string(),
            });
        }
        self.mutate_class(class, |def| {
            def.attributes.push(AttributeDef::new(name, ty));
            Ok(())
        })
    }

    /// Drop an own attribute.
    pub fn drop_attribute(&self, class: &str, name: &str) -> Result<()> {
        self.mutate_class(class, |def| {
            let before = def.attributes.len();
            def.attributes.retain(|a| a.name != name);
            if def.attributes.len() == before {
                return Err(CatalogError::UnknownAttribute {
                    class: class.to_string(),
                    attribute: name.to_string(),
                });
            }
            Ok(())
        })
    }

    /// Rename an own attribute.
    pub fn rename_attribute(&self, class: &str, old: &str, new: &str) -> Result<()> {
        self.mutate_class(class, |def| {
            let attr = def
                .attributes
                .iter_mut()
                .find(|a| a.name == old)
                .ok_or_else(|| CatalogError::UnknownAttribute {
                    class: class.to_string(),
                    attribute: old.to_string(),
                })?;
            attr.name = new.to_string();
            Ok(())
        })
    }

    /// Register a method signature (the body goes to the Function Manager).
    pub fn add_method(&self, class: &str, sig: MethodSig) -> Result<()> {
        self.mutate_class(class, |def| {
            def.methods.retain(|m| m.name != sig.name);
            def.methods.push(sig);
            Ok(())
        })
    }

    /// Remove a method signature.
    pub fn drop_method(&self, class: &str, method: &str) -> Result<()> {
        self.mutate_class(class, |def| {
            let before = def.methods.len();
            def.methods.retain(|m| m.name != method);
            if def.methods.len() == before {
                return Err(CatalogError::UnknownMethod {
                    class: class.to_string(),
                    signature: method.to_string(),
                });
            }
            Ok(())
        })
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Class definition by name.
    pub fn class(&self, name: &str) -> Result<ClassDef> {
        self.inner
            .read()
            .classes
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownClass(name.to_string()))
    }

    /// The paper's `typeId(char *typeName)`.
    pub fn type_id(&self, name: &str) -> Result<TypeId> {
        Ok(self.class(name)?.type_id)
    }

    /// The paper's `typeName(int typeId)`.
    pub fn type_name(&self, id: TypeId) -> Result<String> {
        self.inner
            .read()
            .by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownClass(format!("#{id}")))
    }

    /// All class names, sorted.
    pub fn class_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.inner.read().classes.keys().cloned().collect();
        v.sort();
        v
    }

    /// Effective (inherited + own) attributes.
    pub fn effective_attributes(&self, class: &str) -> Result<Vec<AttributeDef>> {
        hierarchy::effective_attributes(&self.inner.read().classes, class)
    }

    /// The effective tuple type of a class's instances.
    pub fn effective_type(&self, class: &str) -> Result<TypeDescriptor> {
        Ok(TypeDescriptor::Tuple(
            self.effective_attributes(class)?
                .into_iter()
                .map(|a| (a.name, a.ty))
                .collect(),
        ))
    }

    /// Transitive subclass names (excluding `class` itself), sorted.
    pub fn subclasses(&self, class: &str) -> Vec<String> {
        hierarchy::all_subclasses(&self.inner.read().classes, class)
            .iter()
            .map(|d| d.name.clone())
            .collect()
    }

    /// Direct + transitive superclass names, nearest first.
    pub fn superclasses(&self, class: &str) -> Vec<String> {
        hierarchy::all_superclasses(&self.inner.read().classes, class)
            .iter()
            .map(|d| d.name.clone())
            .collect()
    }

    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        hierarchy::is_subclass_of(&self.inner.read().classes, sub, sup)
    }

    /// Late-binding method resolution: (defining class, signature).
    pub fn resolve_method(&self, class: &str, method: &str) -> Result<(String, MethodSig)> {
        hierarchy::resolve_method(&self.inner.read().classes, class, method)
            .map(|(c, s)| (c.to_string(), s.clone()))
            .ok_or_else(|| CatalogError::UnknownMethod {
                class: class.to_string(),
                signature: method.to_string(),
            })
    }

    // ------------------------------------------------------------------
    // Objects and extents
    // ------------------------------------------------------------------

    fn extent_file(&self, class: &str) -> Result<FileId> {
        let def = self.class(class)?;
        def.extent
            .ok_or_else(|| CatalogError::NoExtent(class.to_string()))
    }

    /// Normalize and type-check a value against the class's effective type:
    /// fields reordered to declaration order, missing fields filled with
    /// `Null`, unknown fields rejected.
    pub fn normalize(&self, class: &str, value: Value) -> Result<Value> {
        let attrs = self.effective_attributes(class)?;
        let Value::Tuple(mut given) = value else {
            return Err(CatalogError::TypeMismatch {
                class: class.to_string(),
                detail: "objects must be tuples".into(),
            });
        };
        for (name, _) in &given {
            if !attrs.iter().any(|a| &a.name == name) {
                return Err(CatalogError::TypeMismatch {
                    class: class.to_string(),
                    detail: format!("unknown attribute {name}"),
                });
            }
        }
        let mut fields = Vec::with_capacity(attrs.len());
        for attr in &attrs {
            let v = match given.iter().position(|(n, _)| n == &attr.name) {
                Some(i) => given.swap_remove(i).1,
                None => Value::Null,
            };
            if !v.matches(&attr.ty) {
                return Err(CatalogError::TypeMismatch {
                    class: class.to_string(),
                    detail: format!("attribute {} expects {}, got {v}", attr.name, attr.ty),
                });
            }
            fields.push((attr.name.clone(), v));
        }
        Ok(Value::Tuple(fields))
    }

    fn encode_object(type_id: TypeId, value: &Value) -> Vec<u8> {
        let mut bytes = type_id.to_le_bytes().to_vec();
        bytes.extend_from_slice(&encode_value(value));
        bytes
    }

    fn decode_object(bytes: &[u8]) -> Result<(TypeId, Value)> {
        if bytes.len() < 4 {
            return Err(CatalogError::Corrupt("object record too short".into()));
        }
        let type_id = u32::from_le_bytes(bytes[0..4].try_into().expect("checked"));
        Ok((type_id, decode_value(&bytes[4..])?))
    }

    /// Create an object in `class`'s extent: the MOODSQL
    /// `new Class <values...>` operation.
    pub fn new_object(&self, class: &str, value: Value) -> Result<Oid> {
        let value = self.normalize(class, value)?;
        let file = self.extent_file(class)?;
        let type_id = self.type_id(class)?;
        let heap = self.sm.open_heap(file);
        let oid = heap.insert(&Self::encode_object(type_id, &value))?;
        self.index_insert(class, &value, oid)?;
        Ok(oid)
    }

    /// Fetch an object by OID — the algebra's `Deref`. Returns the class
    /// name (from the stored type id, so subclass instances report their
    /// *dynamic* type — late binding needs this) and the value.
    pub fn get_object(&self, oid: Oid) -> Result<(String, Value)> {
        let class = self
            .inner
            .read()
            .extent_class
            .get(&oid.file)
            .cloned()
            .ok_or(CatalogError::Storage(
                mood_storage::StorageError::DanglingOid(oid),
            ))?;
        let heap = self.sm.open_heap(oid.file);
        let (type_id, value) = Self::decode_object(&heap.get(oid)?)?;
        // Prefer the stored (dynamic) type name when it resolves.
        let name = self.type_name(type_id).unwrap_or(class);
        Ok((name, value))
    }

    /// Update an object in place (OID stable), maintaining indexes.
    pub fn update_object(&self, oid: Oid, value: Value) -> Result<()> {
        let (class, old) = self.get_object(oid)?;
        let value = self.normalize(&class, value)?;
        self.index_delete(&class, &old, oid)?;
        let type_id = self.type_id(&class)?;
        let heap = self.sm.open_heap(oid.file);
        heap.update(oid, &Self::encode_object(type_id, &value))?;
        self.index_insert(&class, &value, oid)?;
        Ok(())
    }

    /// Delete an object, maintaining indexes.
    pub fn delete_object(&self, oid: Oid) -> Result<()> {
        let (class, old) = self.get_object(oid)?;
        self.index_delete(&class, &old, oid)?;
        let heap = self.sm.open_heap(oid.file);
        heap.delete(oid)?;
        Ok(())
    }

    /// Scan one class's own extent (no subclasses).
    pub fn extent(&self, class: &str) -> Result<Vec<(Oid, Value)>> {
        let mut out = Vec::new();
        self.extent_with(class, AccessHint::Sequential, &mut |oid, v| {
            out.push((oid, v));
            true
        })?;
        Ok(out)
    }

    /// Stream one class's own extent without materializing it — the visitor
    /// returns `false` to stop early. `hint` selects the buffer-pool access
    /// pattern: `Sequential` gets readahead and scan-resistant (cold) frame
    /// placement; `Random` loads pages into the hot set, which suits small
    /// extents consulted point-wise after the scan.
    pub fn extent_with(
        &self,
        class: &str,
        hint: AccessHint,
        visit: &mut dyn FnMut(Oid, Value) -> bool,
    ) -> Result<()> {
        let file = self.extent_file(class)?;
        let heap = self.sm.open_heap(file);
        heap.scan_hint_with(hint, |oid, bytes| {
            match Self::decode_object(bytes) {
                Ok((_, v)) => visit(oid, v),
                Err(_) => true,
            }
        })?;
        Ok(())
    }

    /// Scan an extent including subclass extents (`FROM EVERY C`), with an
    /// optional exclusion set (`FROM EVERY C - Sub`, the paper's minus
    /// operator).
    pub fn extent_every(&self, class: &str, minus: &[String]) -> Result<Vec<(Oid, Value)>> {
        let mut out = Vec::new();
        self.extent_every_with(class, minus, AccessHint::Sequential, &mut |oid, v| {
            out.push((oid, v));
            true
        })?;
        Ok(out)
    }

    /// Streaming form of [`extent_every`](Self::extent_every): visits the
    /// class's own extent, then each (non-excluded) subclass extent, in
    /// order, without materializing a combined vector.
    pub fn extent_every_with(
        &self,
        class: &str,
        minus: &[String],
        hint: AccessHint,
        visit: &mut dyn FnMut(Oid, Value) -> bool,
    ) -> Result<()> {
        let mut excluded: HashSet<String> = HashSet::new();
        for m in minus {
            excluded.insert(m.clone());
            for sub in self.subclasses(m) {
                excluded.insert(sub);
            }
        }
        let mut targets = vec![class.to_string()];
        targets.extend(self.subclasses(class));
        let mut stopped = false;
        for t in targets {
            if stopped {
                break;
            }
            if excluded.contains(&t) {
                continue;
            }
            self.extent_with(&t, hint, &mut |oid, v| {
                let more = visit(oid, v);
                stopped = !more;
                more
            })?;
        }
        Ok(())
    }

    /// Count of a class's own extent.
    pub fn extent_count(&self, class: &str) -> Result<u64> {
        let file = self.extent_file(class)?;
        Ok(self.sm.open_heap(file).count()?)
    }

    // ------------------------------------------------------------------
    // Named objects
    // ------------------------------------------------------------------

    /// Give `name` to an object — the algebra's `Bind` naming operation.
    pub fn name_object(&self, name: &str, oid: Oid) {
        self.inner.write().named.insert(name.to_string(), oid);
    }

    /// Resolve a named object.
    pub fn named_object(&self, name: &str) -> Option<Oid> {
        self.inner.read().named.get(name).copied()
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// Create a secondary index on an atomic attribute (or on a Reference
    /// attribute, which yields the paper's *binary join index*), and build
    /// it from the current extent.
    pub fn create_index(
        &self,
        class: &str,
        attribute: &str,
        kind: IndexKind,
        unique: bool,
    ) -> Result<IndexInfo> {
        let attrs = self.effective_attributes(class)?;
        let attr = attrs.iter().find(|a| a.name == attribute).ok_or_else(|| {
            CatalogError::UnknownAttribute {
                class: class.to_string(),
                attribute: attribute.to_string(),
            }
        })?;
        if !attr.ty.is_atomic() && !matches!(attr.ty, TypeDescriptor::Reference(_)) {
            return Err(CatalogError::NotAtomic {
                class: class.to_string(),
                attribute: attribute.to_string(),
            });
        }
        {
            let inner = self.inner.read();
            if inner
                .indexes
                .contains_key(&(class.to_string(), attribute.to_string()))
            {
                return Err(CatalogError::DuplicateIndex {
                    class: class.to_string(),
                    attribute: attribute.to_string(),
                });
            }
        }
        let info = match kind {
            IndexKind::BTree => {
                let tree = self.sm.create_btree(unique)?;
                IndexInfo {
                    class: class.to_string(),
                    attribute: attribute.to_string(),
                    kind,
                    unique,
                    file: tree.file_id(),
                    buckets: 0,
                }
            }
            IndexKind::Hash => {
                let h = self.sm.create_hash(DEFAULT_HASH_BUCKETS)?;
                IndexInfo {
                    class: class.to_string(),
                    attribute: attribute.to_string(),
                    kind,
                    unique,
                    file: h.file_id(),
                    buckets: DEFAULT_HASH_BUCKETS,
                }
            }
        };
        self.inner
            .write()
            .indexes
            .insert((class.to_string(), attribute.to_string()), info.clone());
        // Build from the existing extent (and subclass extents share the
        // attribute, but each class's index covers its own extent only —
        // matching the per-extent indexing ESM provided). Streamed: the
        // build never holds more than one object in memory.
        let mut first_err: Option<CatalogError> = None;
        self.extent_with(class, AccessHint::Sequential, &mut |oid, value| {
            match self.index_insert_one(&info, &value, oid) {
                Ok(()) => true,
                Err(e) => {
                    first_err = Some(e);
                    false
                }
            }
        })?;
        if let Some(e) = first_err {
            return Err(e);
        }
        self.bump_epoch();
        Ok(info)
    }

    /// Drop an index.
    pub fn drop_index(&self, class: &str, attribute: &str) -> Result<()> {
        let info = self
            .inner
            .write()
            .indexes
            .remove(&(class.to_string(), attribute.to_string()))
            .ok_or_else(|| CatalogError::UnknownIndex {
                class: class.to_string(),
                attribute: attribute.to_string(),
            })?;
        self.sm.forget_index(info.file);
        self.sm.pool().discard_file(info.file);
        let _ = self.sm.pool().disk().drop_file(info.file);
        self.bump_epoch();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Path indexes (the "path indices" of Section 3.2's IndSel/Join lists,
    // in the access-support-relation style of the paper's [Kem 90])
    // ------------------------------------------------------------------

    /// Create a *path index* on `class` over a reference path ending at an
    /// atomic attribute (e.g. `Vehicle` over `drivetrain.engine.cylinders`):
    /// a B+-tree mapping the terminal value to the *root* OIDs reaching it.
    ///
    /// Unlike attribute indexes, path indexes are not maintained
    /// incrementally (an update anywhere along the path would need reverse
    /// pointers); they are built here and refreshed with
    /// [`Catalog::rebuild_path_index`] — the maintenance model the access-
    /// support-relation literature calls "rematerialization".
    pub fn create_path_index(&self, class: &str, path: &[String]) -> Result<IndexInfo> {
        if path.len() < 2 {
            return Err(CatalogError::NotAtomic {
                class: class.to_string(),
                attribute: path.join("."),
            });
        }
        // Validate the path: hops must be references, the tail atomic.
        let mut cur = class.to_string();
        for (i, seg) in path.iter().enumerate() {
            let attrs = self.effective_attributes(&cur)?;
            let attr = attrs.iter().find(|a| a.name == *seg).ok_or_else(|| {
                CatalogError::UnknownAttribute {
                    class: cur.clone(),
                    attribute: seg.clone(),
                }
            })?;
            if i + 1 == path.len() {
                if !attr.ty.is_atomic() {
                    return Err(CatalogError::NotAtomic {
                        class: class.to_string(),
                        attribute: path.join("."),
                    });
                }
            } else {
                match attr.ty.referenced_class() {
                    Some(t) => cur = t.to_string(),
                    None => {
                        return Err(CatalogError::NotAtomic {
                            class: cur,
                            attribute: seg.clone(),
                        })
                    }
                }
            }
        }
        let dotted = path.join(".");
        {
            let inner = self.inner.read();
            if inner
                .indexes
                .contains_key(&(class.to_string(), dotted.clone()))
            {
                return Err(CatalogError::DuplicateIndex {
                    class: class.to_string(),
                    attribute: dotted,
                });
            }
        }
        let tree = self.sm.create_btree(false)?;
        let info = IndexInfo {
            class: class.to_string(),
            attribute: dotted.clone(),
            kind: IndexKind::BTree,
            unique: false,
            file: tree.file_id(),
            buckets: 0,
        };
        self.inner
            .write()
            .indexes
            .insert((class.to_string(), dotted), info.clone());
        self.rebuild_path_index(class, path)?;
        self.bump_epoch();
        Ok(info)
    }

    /// Rebuild a path index from the current extents: clear and re-traverse
    /// every root object forward along the path.
    pub fn rebuild_path_index(&self, class: &str, path: &[String]) -> Result<()> {
        let dotted = path.join(".");
        let info = self
            .index(class, &dotted)
            .ok_or_else(|| CatalogError::UnknownIndex {
                class: class.to_string(),
                attribute: dotted.clone(),
            })?;
        // Recreate the tree file (cheapest "clear").
        let fresh = self.sm.create_btree(false)?;
        let new_file = fresh.file_id();
        {
            let mut inner = self.inner.write();
            if let Some(i) = inner.indexes.get_mut(&(class.to_string(), dotted.clone())) {
                let old = i.file;
                i.file = new_file;
                self.sm.forget_index(old);
                self.sm.pool().discard_file(old);
                let _ = self.sm.pool().disk().drop_file(old);
            }
        }
        let tree = self.sm.open_btree(new_file);
        // `every`: subclass instances share inherited paths. Streamed, one
        // root object at a time.
        let mut first_err: Option<CatalogError> = None;
        self.extent_every_with(class, &[], AccessHint::Sequential, &mut |root_oid, value| {
            let res = (|| -> Result<()> {
                for terminal in self.traverse_path(&value, path)? {
                    if terminal.is_null() {
                        continue;
                    }
                    let key = encode_key(&terminal).map_err(|_| CatalogError::NotAtomic {
                        class: class.to_string(),
                        attribute: dotted.clone(),
                    })?;
                    tree.insert(&key, root_oid)?;
                }
                Ok(())
            })();
            match res {
                Ok(()) => true,
                Err(e) => {
                    first_err = Some(e);
                    false
                }
            }
        })?;
        if let Some(e) = first_err {
            return Err(e);
        }
        let _ = info;
        Ok(())
    }

    /// Forward-traverse `path` from `value`, fanning out through set/list
    /// reference attributes; returns the terminal values reached.
    fn traverse_path(&self, value: &Value, path: &[String]) -> Result<Vec<Value>> {
        let mut frontier = vec![value.clone()];
        for (i, seg) in path.iter().enumerate() {
            let mut next = Vec::new();
            for v in frontier {
                let Some(field) = v.field(seg) else { continue };
                if i + 1 == path.len() {
                    next.push(field.clone());
                    continue;
                }
                let oids: Vec<Oid> = match field {
                    Value::Ref(o) => vec![*o],
                    Value::Set(items) | Value::List(items) => {
                        items.iter().filter_map(|x| x.as_oid()).collect()
                    }
                    _ => Vec::new(),
                };
                for oid in oids {
                    if let Ok((_, target)) = self.get_object(oid) {
                        next.push(target);
                    }
                }
            }
            frontier = next;
        }
        Ok(frontier)
    }

    /// Registered index on (class, attribute), if any.
    pub fn index(&self, class: &str, attribute: &str) -> Option<IndexInfo> {
        self.inner
            .read()
            .indexes
            .get(&(class.to_string(), attribute.to_string()))
            .cloned()
    }

    /// All registered indexes.
    pub fn indexes(&self) -> Vec<IndexInfo> {
        self.inner.read().indexes.values().cloned().collect()
    }

    fn index_insert(&self, class: &str, value: &Value, oid: Oid) -> Result<()> {
        let infos: Vec<IndexInfo> = {
            let inner = self.inner.read();
            inner
                .indexes
                .values()
                .filter(|i| i.class == class)
                .cloned()
                .collect()
        };
        for info in infos {
            self.index_insert_one(&info, value, oid)?;
        }
        Ok(())
    }

    fn index_insert_one(&self, info: &IndexInfo, value: &Value, oid: Oid) -> Result<()> {
        let Some(field) = value.field(&info.attribute) else {
            return Ok(());
        };
        if field.is_null() {
            return Ok(()); // nulls are not indexed
        }
        let key = encode_key(field).map_err(|_| CatalogError::NotAtomic {
            class: info.class.clone(),
            attribute: info.attribute.clone(),
        })?;
        match info.kind {
            IndexKind::BTree => self.sm.open_btree(info.file).insert(&key, oid)?,
            IndexKind::Hash => self
                .sm
                .open_hash(info.file, info.buckets)
                .insert(&key, oid)?,
        }
        Ok(())
    }

    fn index_delete(&self, class: &str, value: &Value, oid: Oid) -> Result<()> {
        let infos: Vec<IndexInfo> = {
            let inner = self.inner.read();
            inner
                .indexes
                .values()
                .filter(|i| i.class == class)
                .cloned()
                .collect()
        };
        for info in infos {
            let Some(field) = value.field(&info.attribute) else {
                continue;
            };
            if field.is_null() {
                continue;
            }
            let key = encode_key(field).map_err(|_| CatalogError::NotAtomic {
                class: info.class.clone(),
                attribute: info.attribute.clone(),
            })?;
            match info.kind {
                IndexKind::BTree => {
                    self.sm.open_btree(info.file).delete(&key, oid)?;
                }
                IndexKind::Hash => {
                    self.sm
                        .open_hash(info.file, info.buckets)
                        .delete(&key, oid)?;
                }
            }
        }
        Ok(())
    }

    /// Equality probe through an index.
    pub fn index_lookup(&self, class: &str, attribute: &str, key: &Value) -> Result<Vec<Oid>> {
        let info = self
            .index(class, attribute)
            .ok_or_else(|| CatalogError::UnknownIndex {
                class: class.to_string(),
                attribute: attribute.to_string(),
            })?;
        let k = encode_key(key).map_err(|_| CatalogError::NotAtomic {
            class: class.to_string(),
            attribute: attribute.to_string(),
        })?;
        Ok(match info.kind {
            IndexKind::BTree => self.sm.open_btree(info.file).lookup(&k)?,
            IndexKind::Hash => self.sm.open_hash(info.file, info.buckets).lookup(&k)?,
        })
    }

    /// Range probe (B+-tree indexes only; `None` bound = unbounded).
    pub fn index_range(
        &self,
        class: &str,
        attribute: &str,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Result<Vec<Oid>> {
        let info = self
            .index(class, attribute)
            .ok_or_else(|| CatalogError::UnknownIndex {
                class: class.to_string(),
                attribute: attribute.to_string(),
            })?;
        if info.kind != IndexKind::BTree {
            return Err(CatalogError::UnknownIndex {
                class: class.to_string(),
                attribute: format!("{attribute} (hash index cannot range-scan)"),
            });
        }
        let enc = |v: &Value| {
            encode_key(v).map_err(|_| CatalogError::NotAtomic {
                class: class.to_string(),
                attribute: attribute.to_string(),
            })
        };
        let lo_k = lo.map(|(v, inc)| enc(v).map(|k| (k, inc))).transpose()?;
        let hi_k = hi.map(|(v, inc)| enc(v).map(|k| (k, inc))).transpose()?;
        let mut out = Vec::new();
        self.sm.open_btree(info.file).range_scan(
            lo_k.as_ref().map(|(k, _)| k.as_slice()),
            lo_k.as_ref().map(|(_, inc)| *inc).unwrap_or(true),
            hi_k.as_ref().map(|(k, _)| k.as_slice()),
            hi_k.as_ref().map(|(_, inc)| *inc).unwrap_or(true),
            |_, oid| {
                out.push(oid);
                true
            },
        )?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// A snapshot of the current statistics.
    pub fn stats(&self) -> DatabaseStats {
        self.inner.read().stats.clone()
    }

    /// Replace the statistics wholesale (used to inject the paper's
    /// Tables 13–15).
    pub fn set_stats(&self, stats: DatabaseStats) {
        self.inner.write().stats = stats;
        self.bump_epoch();
    }

    /// Recompute statistics for every class by scanning extents: the
    /// Table 8 parameters plus Table 9 for every B+-tree index.
    pub fn collect_stats(&self) -> Result<DatabaseStats> {
        let classes = self.class_names();
        let mut stats = DatabaseStats::new();
        for class in &classes {
            let def = self.class(class)?;
            let Some(file) = def.extent else { continue };
            let heap = self.sm.open_heap(file);
            let objects = self.extent(class)?;
            let cardinality = objects.len() as u64;
            let total_bytes: u64 = objects
                .iter()
                .map(|(_, v)| encode_value(v).len() as u64 + 4)
                .sum();
            stats.set_class(
                class,
                ClassStats {
                    cardinality,
                    nbpages: heap.pages()? as u64,
                    size: total_bytes.checked_div(cardinality).unwrap_or(0),
                },
            );
            for attr in self.effective_attributes(class)? {
                match &attr.ty {
                    TypeDescriptor::Basic(_) => {
                        let mut distinct: HashSet<Vec<u8>> = HashSet::new();
                        let mut notnull = 0u64;
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        let mut numeric = false;
                        for (_, v) in &objects {
                            let Some(f) = v.field(&attr.name) else {
                                continue;
                            };
                            if f.is_null() {
                                continue;
                            }
                            notnull += 1;
                            if let Ok(k) = encode_key(f) {
                                distinct.insert(k);
                            }
                            if let Some(x) = f.as_f64() {
                                numeric = true;
                                min = min.min(x);
                                max = max.max(x);
                            }
                        }
                        stats.set_attr(
                            class,
                            &attr.name,
                            AttrStats {
                                notnull: if cardinality == 0 {
                                    0.0
                                } else {
                                    notnull as f64 / cardinality as f64
                                },
                                dist: distinct.len() as u64,
                                max: numeric.then_some(max),
                                min: numeric.then_some(min),
                            },
                        );
                    }
                    ty => {
                        let Some(target) = ty.referenced_class() else {
                            continue;
                        };
                        let mut links = 0u64;
                        let mut referenced: HashSet<Oid> = HashSet::new();
                        for (_, v) in &objects {
                            let Some(f) = v.field(&attr.name) else {
                                continue;
                            };
                            let oids: Vec<Oid> = match f {
                                Value::Ref(o) => vec![*o],
                                Value::Set(items) | Value::List(items) => {
                                    items.iter().filter_map(|i| i.as_oid()).collect()
                                }
                                _ => Vec::new(),
                            };
                            links += oids.len() as u64;
                            referenced.extend(oids);
                        }
                        stats.set_ref(
                            class,
                            &attr.name,
                            RefStats {
                                target: target.to_string(),
                                fan: if cardinality == 0 {
                                    0.0
                                } else {
                                    links as f64 / cardinality as f64
                                },
                                totref: referenced.len() as u64,
                            },
                        );
                    }
                }
            }
        }
        // Table 9: B+-tree index statistics.
        for info in self.indexes() {
            if info.kind == IndexKind::BTree {
                let s = self.sm.open_btree(info.file).stats()?;
                stats.set_index(&info.class, &info.attribute, s);
            }
        }
        self.inner.write().stats = stats.clone();
        self.bump_epoch();
        Ok(stats)
    }
}

/// Deep-equality resolution through the catalog's extents.
impl Resolver for Catalog {
    fn resolve(&self, oid: Oid) -> Option<Value> {
        self.get_object(oid).ok().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vehicle_catalog() -> Catalog {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Catalog::create(sm).unwrap();
        cat.define_class(
            ClassBuilder::class("Company")
                .attribute("name", TypeDescriptor::string())
                .attribute("location", TypeDescriptor::string()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("id", TypeDescriptor::integer())
                .attribute("weight", TypeDescriptor::integer())
                .attribute("manufacturer", TypeDescriptor::reference("Company"))
                .method(MethodSig::new(
                    "lbweight",
                    TypeDescriptor::integer(),
                    vec![],
                )),
        )
        .unwrap();
        cat.define_class(ClassBuilder::class("Automobile").inherits("Vehicle"))
            .unwrap();
        cat.define_class(ClassBuilder::class("JapaneseAuto").inherits("Automobile"))
            .unwrap();
        cat
    }

    #[test]
    fn type_id_name_roundtrip() {
        let cat = vehicle_catalog();
        let id = cat.type_id("Vehicle").unwrap();
        assert_eq!(cat.type_name(id).unwrap(), "Vehicle");
        assert!(cat.type_id("Nope").is_err());
    }

    #[test]
    fn object_crud_with_normalization() {
        let cat = vehicle_catalog();
        let oid = cat
            .new_object(
                "Vehicle",
                // Fields out of order and one missing (manufacturer → Null).
                Value::tuple(vec![
                    ("weight", Value::Integer(1500)),
                    ("id", Value::Integer(1)),
                ]),
            )
            .unwrap();
        let (class, v) = cat.get_object(oid).unwrap();
        assert_eq!(class, "Vehicle");
        assert_eq!(v.field("id"), Some(&Value::Integer(1)));
        assert_eq!(v.field("manufacturer"), Some(&Value::Null));

        cat.update_object(
            oid,
            Value::tuple(vec![
                ("id", Value::Integer(1)),
                ("weight", Value::Integer(1600)),
            ]),
        )
        .unwrap();
        let (_, v) = cat.get_object(oid).unwrap();
        assert_eq!(v.field("weight"), Some(&Value::Integer(1600)));

        cat.delete_object(oid).unwrap();
        assert!(cat.get_object(oid).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let cat = vehicle_catalog();
        let err = cat
            .new_object("Vehicle", Value::tuple(vec![("id", Value::string("one"))]))
            .unwrap_err();
        assert!(matches!(err, CatalogError::TypeMismatch { .. }));
        let err = cat
            .new_object("Vehicle", Value::tuple(vec![("bogus", Value::Integer(1))]))
            .unwrap_err();
        assert!(matches!(err, CatalogError::TypeMismatch { .. }));
    }

    #[test]
    fn subclass_instances_report_dynamic_type() {
        let cat = vehicle_catalog();
        let oid = cat
            .new_object(
                "JapaneseAuto",
                Value::tuple(vec![("id", Value::Integer(7))]),
            )
            .unwrap();
        let (class, _) = cat.get_object(oid).unwrap();
        assert_eq!(class, "JapaneseAuto");
    }

    #[test]
    fn extent_every_and_minus() {
        let cat = vehicle_catalog();
        cat.new_object("Vehicle", Value::tuple(vec![("id", Value::Integer(1))]))
            .unwrap();
        cat.new_object("Automobile", Value::tuple(vec![("id", Value::Integer(2))]))
            .unwrap();
        cat.new_object(
            "JapaneseAuto",
            Value::tuple(vec![("id", Value::Integer(3))]),
        )
        .unwrap();

        assert_eq!(cat.extent("Vehicle").unwrap().len(), 1);
        assert_eq!(cat.extent_every("Vehicle", &[]).unwrap().len(), 3);
        // The paper's query: EVERY Automobile - JapaneseAuto.
        let minus = cat
            .extent_every("Automobile", &["JapaneseAuto".to_string()])
            .unwrap();
        assert_eq!(minus.len(), 1);
        assert_eq!(minus[0].1.field("id"), Some(&Value::Integer(2)));
    }

    #[test]
    fn btree_index_lookup_and_maintenance() {
        let cat = vehicle_catalog();
        cat.create_index("Vehicle", "weight", IndexKind::BTree, false)
            .unwrap();
        let oids: Vec<_> = (0..50)
            .map(|i| {
                cat.new_object(
                    "Vehicle",
                    Value::tuple(vec![
                        ("id", Value::Integer(i)),
                        ("weight", Value::Integer(1000 + (i % 5) * 100)),
                    ]),
                )
                .unwrap()
            })
            .collect();
        let hits = cat
            .index_lookup("Vehicle", "weight", &Value::Integer(1200))
            .unwrap();
        assert_eq!(hits.len(), 10);
        // Range probe 1000..=1100.
        let range = cat
            .index_range(
                "Vehicle",
                "weight",
                Some((&Value::Integer(1000), true)),
                Some((&Value::Integer(1100), true)),
            )
            .unwrap();
        assert_eq!(range.len(), 20);
        // Update moves the entry.
        cat.update_object(
            oids[0],
            Value::tuple(vec![
                ("id", Value::Integer(0)),
                ("weight", Value::Integer(9999)),
            ]),
        )
        .unwrap();
        assert_eq!(
            cat.index_lookup("Vehicle", "weight", &Value::Integer(9999))
                .unwrap(),
            vec![oids[0]]
        );
        // Delete removes it.
        cat.delete_object(oids[0]).unwrap();
        assert!(cat
            .index_lookup("Vehicle", "weight", &Value::Integer(9999))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn hash_index_lookup() {
        let cat = vehicle_catalog();
        cat.create_index("Company", "name", IndexKind::Hash, false)
            .unwrap();
        let bmw = cat
            .new_object(
                "Company",
                Value::tuple(vec![("name", Value::string("BMW"))]),
            )
            .unwrap();
        cat.new_object(
            "Company",
            Value::tuple(vec![("name", Value::string("Toyota"))]),
        )
        .unwrap();
        assert_eq!(
            cat.index_lookup("Company", "name", &Value::string("BMW"))
                .unwrap(),
            vec![bmw]
        );
        // Hash indexes refuse range scans.
        assert!(cat
            .index_range("Company", "name", None, Some((&Value::string("M"), true)))
            .is_err());
    }

    #[test]
    fn index_built_from_existing_extent() {
        let cat = vehicle_catalog();
        for i in 0..20 {
            cat.new_object("Vehicle", Value::tuple(vec![("id", Value::Integer(i))]))
                .unwrap();
        }
        cat.create_index("Vehicle", "id", IndexKind::BTree, true)
            .unwrap();
        assert_eq!(
            cat.index_lookup("Vehicle", "id", &Value::Integer(7))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn binary_join_index_on_reference() {
        let cat = vehicle_catalog();
        let bmw = cat
            .new_object(
                "Company",
                Value::tuple(vec![("name", Value::string("BMW"))]),
            )
            .unwrap();
        cat.create_index("Vehicle", "manufacturer", IndexKind::BTree, false)
            .unwrap();
        let car = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(1)),
                    ("manufacturer", Value::Ref(bmw)),
                ]),
            )
            .unwrap();
        assert_eq!(
            cat.index_lookup("Vehicle", "manufacturer", &Value::Ref(bmw))
                .unwrap(),
            vec![car]
        );
    }

    #[test]
    fn schema_evolution_add_drop_rename() {
        let cat = vehicle_catalog();
        let oid = cat
            .new_object("Vehicle", Value::tuple(vec![("id", Value::Integer(1))]))
            .unwrap();
        cat.add_attribute("Vehicle", "color", TypeDescriptor::string())
            .unwrap();
        // Existing object reads the new attribute as Null.
        let (_, v) = cat.get_object(oid).unwrap();
        assert_eq!(
            v.field("color"),
            None,
            "stored value predates the attribute"
        );
        let norm = cat.normalize("Vehicle", v).unwrap();
        assert_eq!(norm.field("color"), Some(&Value::Null));
        // Subclasses see it too.
        assert!(cat
            .effective_attributes("JapaneseAuto")
            .unwrap()
            .iter()
            .any(|a| a.name == "color"));
        cat.rename_attribute("Vehicle", "color", "paint").unwrap();
        assert!(cat.class("Vehicle").unwrap().attribute("paint").is_some());
        cat.drop_attribute("Vehicle", "paint").unwrap();
        assert!(cat.class("Vehicle").unwrap().attribute("paint").is_none());
        // Duplicate-vs-inherited is rejected.
        assert!(matches!(
            cat.add_attribute("Automobile", "id", TypeDescriptor::integer()),
            Err(CatalogError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn drop_class_guards_subclasses() {
        let cat = vehicle_catalog();
        assert!(cat.drop_class("Vehicle").is_err(), "has subclasses");
        cat.drop_class("JapaneseAuto").unwrap();
        cat.drop_class("Automobile").unwrap();
        cat.drop_class("Vehicle").unwrap();
        assert!(cat.class("Vehicle").is_err());
    }

    #[test]
    fn persistence_roundtrip_via_root() {
        let sm = Arc::new(StorageManager::in_memory());
        let root;
        {
            let cat = Catalog::create(sm.clone()).unwrap();
            cat.define_class(
                ClassBuilder::class("Employee")
                    .attribute("ssno", TypeDescriptor::integer())
                    .attribute("name", TypeDescriptor::string()),
            )
            .unwrap();
            root = cat.root();
        }
        let cat = Catalog::open(sm, root).unwrap();
        let def = cat.class("Employee").unwrap();
        assert_eq!(def.attributes.len(), 2);
        // New definitions get fresh, non-colliding type ids.
        let d2 = cat.define_class(ClassBuilder::class("Dept")).unwrap();
        assert!(d2.type_id > def.type_id);
    }

    #[test]
    fn value_types_have_no_extent() {
        let cat = vehicle_catalog();
        // A *type* (copy semantics, Section 2): no extent, no instances in
        // any extent scan, but usable as an attribute type.
        cat.define_class(
            ClassBuilder::value_type("Money").attribute("amount", TypeDescriptor::float()),
        )
        .unwrap();
        let err = cat
            .new_object("Money", Value::tuple(vec![("amount", Value::Float(1.0))]))
            .unwrap_err();
        assert!(matches!(err, CatalogError::NoExtent(_)));
        assert!(cat.extent("Money").is_err());
        // It still has a type id and participates in typeName lookups.
        let id = cat.type_id("Money").unwrap();
        assert_eq!(cat.type_name(id).unwrap(), "Money");
    }

    #[test]
    fn named_objects() {
        let cat = vehicle_catalog();
        let oid = cat
            .new_object(
                "Company",
                Value::tuple(vec![("name", Value::string("METU"))]),
            )
            .unwrap();
        cat.name_object("home", oid);
        assert_eq!(cat.named_object("home"), Some(oid));
        assert_eq!(cat.named_object("away"), None);
    }

    #[test]
    fn collect_stats_measures_extents() {
        let cat = vehicle_catalog();
        let bmw = cat
            .new_object(
                "Company",
                Value::tuple(vec![("name", Value::string("BMW"))]),
            )
            .unwrap();
        let toyota = cat
            .new_object(
                "Company",
                Value::tuple(vec![("name", Value::string("Toyota"))]),
            )
            .unwrap();
        for i in 0..10 {
            let m = if i % 2 == 0 { bmw } else { toyota };
            cat.new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(i)),
                    ("weight", Value::Integer(1000 + i * 10)),
                    ("manufacturer", Value::Ref(m)),
                ]),
            )
            .unwrap();
        }
        cat.create_index("Vehicle", "weight", IndexKind::BTree, false)
            .unwrap();
        let stats = cat.collect_stats().unwrap();
        let v = stats.class("Vehicle").unwrap();
        assert_eq!(v.cardinality, 10);
        assert!(v.nbpages >= 1);
        assert!(v.size > 0);
        let w = stats.attr("Vehicle", "weight").unwrap();
        assert_eq!(w.dist, 10);
        assert_eq!(w.min, Some(1000.0));
        assert_eq!(w.max, Some(1090.0));
        assert_eq!(w.notnull, 1.0);
        let r = stats.reference("Vehicle", "manufacturer").unwrap();
        assert_eq!(r.target, "Company");
        assert_eq!(r.fan, 1.0);
        assert_eq!(r.totref, 2);
        assert_eq!(stats.totlinks("Vehicle", "manufacturer"), Some(10.0));
        assert_eq!(stats.hitprb("Vehicle", "manufacturer"), Some(1.0));
        assert!(stats.index("Vehicle", "weight").is_some());
    }

    #[test]
    fn deep_equality_through_catalog() {
        let cat = vehicle_catalog();
        let a = cat
            .new_object("Company", Value::tuple(vec![("name", Value::string("X"))]))
            .unwrap();
        let b = cat
            .new_object("Company", Value::tuple(vec![("name", Value::string("X"))]))
            .unwrap();
        assert!(mood_datamodel::deep_eq(
            &Value::Ref(a),
            &Value::Ref(b),
            &cat
        ));
    }
}
