//! X5 — Function Manager costs (§2): native vs interpreted invocation,
//! first-call load, and the latency of adding a function while the server
//! is live ("the only cost is the preprocessing and compilation of the
//! added functions for once").

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mood_core::{MethodSig, Mood, TypeDescriptor, Value};

fn setup() -> (Mood, mood_core::Oid) {
    let db = Mood::in_memory();
    db.execute("CREATE CLASS Vehicle TUPLE (weight Integer)")
        .unwrap();
    db.execute("DEFINE METHOD Vehicle::lb_interp() RETURNS Float AS 'weight * 2.2075'")
        .unwrap();
    db.register_native_method(
        "Vehicle",
        MethodSig::new("lb_native", TypeDescriptor::float(), vec![]),
        Arc::new(|recv, _args, _res| {
            let w = recv.field("weight").and_then(|v| v.as_f64()).unwrap_or(0.0);
            Ok(Value::Float(w * 2.2075))
        }),
    )
    .unwrap();
    let mood_core::Answer::Created(Value::Ref(oid)) = db.execute("new Vehicle <1000>").unwrap()
    else {
        unreachable!()
    };
    (db, oid)
}

fn bench(c: &mut Criterion) {
    let (db, oid) = setup();

    // One-shot latency table: add-function and first-call load.
    println!("\n# X5: Function Manager one-shot latencies");
    let t = Instant::now();
    db.execute("DEFINE METHOD Vehicle::fresh() RETURNS Float AS '(weight * 3 + weight % 3) * 1.0'")
        .unwrap();
    println!(
        "  define+compile while live : {:>10.1} µs",
        t.elapsed().as_secs_f64() * 1e6
    );
    db.funcman().end_scope();
    let t = Instant::now();
    db.invoke(oid, "fresh", &[]).unwrap(); // includes the dld-style load
    let first = t.elapsed();
    let t = Instant::now();
    db.invoke(oid, "fresh", &[]).unwrap(); // warm
    let warm = t.elapsed();
    println!(
        "  first call (load + run)   : {:>10.1} µs",
        first.as_secs_f64() * 1e6
    );
    println!(
        "  warm call                 : {:>10.1} µs",
        warm.as_secs_f64() * 1e6
    );

    let mut group = c.benchmark_group("funcman");
    group
        .sample_size(60)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("invoke_native", |b| {
        b.iter(|| {
            db.invoke(oid, "lb_native", &[])
                .expect("native method runs")
        })
    });
    group.bench_function("invoke_interpreted", |b| {
        b.iter(|| {
            db.invoke(oid, "lb_interp", &[])
                .expect("interpreted method runs")
        })
    });
    group.bench_function("define_method_live", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.funcman()
                .define_source(
                    "Vehicle",
                    MethodSig::new("redefined", TypeDescriptor::float(), vec![]),
                    &format!("weight * {}.5", i % 7),
                )
                .expect("redefinition while live")
        })
    });
    group.bench_function("query_with_method_predicate", |b| {
        b.iter(|| {
            db.query("SELECT v FROM Vehicle v WHERE v.lb_interp() > 100.0")
                .expect("runs")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
