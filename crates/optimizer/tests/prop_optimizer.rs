//! Property tests for the optimizer's algorithms: DNF logical equivalence
//! on arbitrary Boolean trees, and the Appendix lemma (F/(1−s) attains the
//! exhaustive optimum) on random instances.

use proptest::prelude::*;

use mood_optimizer::{
    objective, optimal_order_exhaustive, order_paths, BoolExpr, Negate, PathCost,
};

// ---------------------------------------------------------------------
// DNF equivalence
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct V(usize, bool);

impl Negate for V {
    fn negate(&self) -> Self {
        V(self.0, !self.1)
    }
}

fn arb_expr() -> impl Strategy<Value = BoolExpr<V>> {
    let leaf = (0usize..5, any::<bool>()).prop_map(|(i, pos)| BoolExpr::Leaf(V(i, pos)));
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::Or),
            inner.prop_map(|e| BoolExpr::Not(Box::new(e))),
        ]
    })
}

fn eval(e: &BoolExpr<V>, assign: &[bool; 5]) -> bool {
    match e {
        BoolExpr::Leaf(V(i, pos)) => assign[*i] == *pos,
        BoolExpr::And(ps) => ps.iter().all(|p| eval(p, assign)),
        BoolExpr::Or(ps) => ps.iter().any(|p| eval(p, assign)),
        BoolExpr::Not(p) => !eval(p, assign),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn dnf_is_logically_equivalent(e in arb_expr()) {
        let dnf = e.to_dnf();
        for mask in 0u32..32 {
            let assign = [
                mask & 1 != 0,
                mask & 2 != 0,
                mask & 4 != 0,
                mask & 8 != 0,
                mask & 16 != 0,
            ];
            let direct = eval(&e, &assign);
            let via_dnf = dnf
                .iter()
                .any(|term| term.iter().all(|V(i, pos)| assign[*i] == *pos));
            prop_assert_eq!(direct, via_dnf, "assignment {:?}", assign);
        }
    }

    #[test]
    fn dnf_terms_contain_only_leaves_from_the_input(e in arb_expr()) {
        // Structural sanity: every literal in the DNF mentions one of the
        // five variables, and no term is empty unless the input was.
        for term in e.to_dnf() {
            prop_assert!(!term.is_empty());
            for V(i, _) in term {
                prop_assert!(i < 5);
            }
        }
    }

    // -------------------------------------------------------------------
    // Appendix lemma on random instances
    // -------------------------------------------------------------------

    #[test]
    fn rank_order_is_optimal(
        paths in proptest::collection::vec(
            (1.0f64..1000.0, 0.0001f64..0.9999),
            1..7,
        )
    ) {
        let paths: Vec<PathCost> = paths
            .into_iter()
            .map(|(cost, selectivity)| PathCost { cost, selectivity })
            .collect();
        let ranked = order_paths(&paths);
        let got = objective(&paths, &ranked);
        let (_, best) = optimal_order_exhaustive(&paths);
        prop_assert!(
            (got - best).abs() <= 1e-9 * best.max(1.0),
            "ranked {} vs optimal {} for {:?}",
            got,
            best,
            paths
        );
    }

    #[test]
    fn objective_is_permutation_invariant_total_when_selectivity_one(
        costs in proptest::collection::vec(1.0f64..100.0, 2..6)
    ) {
        // With every selectivity = 1, f is the plain sum regardless of
        // order.
        let paths: Vec<PathCost> =
            costs.iter().map(|&c| PathCost { cost: c, selectivity: 1.0 }).collect();
        let order: Vec<usize> = (0..paths.len()).collect();
        let rev: Vec<usize> = order.iter().rev().copied().collect();
        let a = objective(&paths, &order);
        let b = objective(&paths, &rev);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!((a - costs.iter().sum::<f64>()).abs() < 1e-9);
    }
}
