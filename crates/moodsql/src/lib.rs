//! # mood-sql — MOODSQL
//!
//! The SQL-like object-oriented query language of Section 3, executed
//! through the Section 7/8 optimizer: lexer ([`token`]), parser
//! ([`parser`]), binder ([`binder`], including the explicit-join → path
//! rewrite), plan executor ([`exec`]) and the Section 9.4 cursor mechanism
//! ([`cursor`]). [`Session`] is the statement-level entry point the kernel
//! facade (mood-core) wraps.

pub mod analyze;
pub mod ast;
pub mod binder;
pub(crate) mod compiled;
pub mod cursor;
pub mod error;
pub mod exec;
pub mod parser;
pub mod token;

pub use analyze::{
    misestimation, AnalyzeReport, NodeActual, NodeReport, StageActual, TermReport,
};
pub use ast::{
    CmpOp, CreateClass, Expr, FromItem, Lit, MethodDecl, PathRef, SelectStmt, Statement,
};
pub use binder::{classify, lower, Lowered, StmtKind};
pub use cursor::Cursor;
pub use error::{Result, SqlError};
pub use exec::{BoundObj, Executor, PreparedQuery, QueryResult, Row};
pub use parser::{parse, parse_expr};

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use mood_catalog::{Catalog, ClassBuilder, IndexKind, MethodSig};
use mood_datamodel::Value;
use mood_funcman::FunctionManager;
use mood_optimizer::OptimizerConfig;
use mood_storage::{AccessHint, MetricsRegistry};

/// Plan cache shard count: keeps lock contention low when a session is
/// shared behind a facade mutex and queried from many threads in turn.
const PLAN_CACHE_SHARDS: usize = 8;
/// Total cached plans across all shards.
const PLAN_CACHE_CAPACITY: usize = 128;

/// A bounded, sharded LRU of prepared plans keyed by normalized SQL text.
///
/// Entries carry the catalog epoch they were built under ([`PreparedQuery::
/// epoch`]); a lookup under a different epoch removes the entry (counted as
/// an invalidation) and reports a miss, so no stale plan ever executes.
/// DML does not bump the epoch — plans reference schema, statistics and
/// indexes, never row contents — while DDL, index builds and statistics
/// refreshes all do.
struct PlanCache {
    shards: Vec<Mutex<CacheShard>>,
    per_shard: usize,
}

#[derive(Default)]
struct CacheShard {
    map: HashMap<String, CacheEntry>,
    /// Monotonic use counter; entry with the smallest stamp is the LRU.
    tick: u64,
}

struct CacheEntry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

/// A cache consultation's outcome.
enum Lookup {
    /// Valid entry found; parse/bind/optimize were all skipped.
    Hit(Arc<PreparedQuery>),
    /// Nothing valid cached; the statement was prepared and inserted.
    Miss(Arc<PreparedQuery>),
    /// The statement cannot be prepared (nested-loop fallback shape).
    Uncachable,
}

impl PlanCache {
    fn new() -> PlanCache {
        PlanCache {
            shards: (0..PLAN_CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            per_shard: PLAN_CACHE_CAPACITY.div_ceil(PLAN_CACHE_SHARDS),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<CacheShard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// A valid entry under the current epoch, or `None`. A stale entry is
    /// removed here and counted as an invalidation (the caller then counts
    /// the re-prepare as a miss, so invalidations ⊆ misses).
    fn get(&self, key: &str, epoch: u64, registry: &MetricsRegistry) -> Option<Arc<PreparedQuery>> {
        let mut shard = self.shard(key).lock().expect("plan cache lock");
        shard.tick += 1;
        let tick = shard.tick;
        let stale = match shard.map.get_mut(key) {
            Some(entry) if entry.prepared.epoch == epoch => {
                entry.last_used = tick;
                registry.record_plan_cache_hit();
                return Some(entry.prepared.clone());
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            shard.map.remove(key);
            registry.record_plan_cache_invalidation();
        }
        None
    }

    fn insert(&self, key: String, pq: Arc<PreparedQuery>, registry: &MetricsRegistry) {
        let mut shard = self.shard(&key).lock().expect("plan cache lock");
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard && !shard.map.contains_key(&key) {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.map.remove(&victim);
                registry.record_plan_cache_eviction();
            }
        }
        shard.map.insert(
            key,
            CacheEntry {
                prepared: pq,
                last_used: tick,
            },
        );
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache lock");
            shard.map.clear();
        }
    }
}

/// Collapse whitespace runs to single spaces outside single-quoted string
/// literals and trim the ends. Case is preserved — MOODSQL identifiers and
/// string literals are case-sensitive, so only layout differences fold
/// onto one cache entry.
fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_str = false;
    let mut pending_space = false;
    for ch in sql.chars() {
        if in_str {
            out.push(ch);
            if ch == '\'' {
                in_str = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if ch == '\'' {
            in_str = true;
        }
        out.push(ch);
    }
    out
}

/// Split a normalized statement into its cache key and whether it is the
/// instrumented (`EXPLAIN ANALYZE`) form. The prefix is stripped from the
/// key so the instrumented and plain forms of a SELECT share one cached
/// plan.
fn split_analyze(norm: &str) -> (&str, bool) {
    const PREFIX: &str = "explain analyze ";
    if norm.len() > PREFIX.len() && norm[..PREFIX.len()].eq_ignore_ascii_case(PREFIX) {
        (&norm[PREFIX.len()..], true)
    } else {
        (norm, false)
    }
}

/// Cache key for a statement: normalized text with a leading `EXPLAIN
/// ANALYZE` stripped.
fn plan_cache_key(sql: &str) -> String {
    let norm = normalize_sql(sql);
    split_analyze(&norm).0.to_string()
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// SELECT results.
    Rows(QueryResult),
    /// EXPLAIN output (plan text in the paper's notation).
    Plan(String),
    /// A created object's reference.
    Created(Value),
    /// DDL/DML acknowledgements with an affected-count where meaningful.
    Done { affected: usize },
}

/// A MOODSQL session: parse + dispatch statements against a catalog and a
/// function manager.
pub struct Session {
    catalog: Arc<Catalog>,
    funcman: Arc<FunctionManager>,
    config: OptimizerConfig,
    tracer: mood_trace::Tracer,
    last_trace: Vec<String>,
    /// The open explicit transaction (`BEGIN` … `COMMIT`/`ROLLBACK`), if
    /// any. Bare DML statements outside one autocommit.
    txn: Option<mood_storage::TxnId>,
    /// Prepared plans keyed by normalized SQL text (see [`PlanCache`]).
    plan_cache: PlanCache,
    plan_cache_enabled: bool,
}

impl Session {
    pub fn new(catalog: Arc<Catalog>, funcman: Arc<FunctionManager>) -> Session {
        Session {
            catalog,
            funcman,
            config: OptimizerConfig::default(),
            tracer: mood_trace::Tracer::new(),
            last_trace: Vec::new(),
            txn: None,
            plan_cache: PlanCache::new(),
            plan_cache_enabled: true,
        }
    }

    pub fn with_config(mut self, config: OptimizerConfig) -> Session {
        self.set_config(config);
        self
    }

    /// Replace the optimizer configuration in place — unlike rebuilding the
    /// session, this keeps an open transaction (and the last trace) intact.
    /// Cached plans were built under the old configuration, so the plan
    /// cache is cleared (quietly: a config change is not an epoch
    /// invalidation).
    pub fn set_config(&mut self, config: OptimizerConfig) {
        self.config = config;
        self.plan_cache.clear();
    }

    /// Set the worker count used by the chunk-parallel execution path.
    ///
    /// `1` (the default) runs every operator sequentially; values above 1
    /// split row batches across scoped worker threads. Results are
    /// byte-identical either way.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.config = self.config.clone().with_parallelism(parallelism);
        self.plan_cache.clear();
    }

    /// Toggle the session plan cache. Disabling clears it, so re-enabling
    /// starts cold.
    pub fn set_plan_cache_enabled(&mut self, on: bool) {
        self.plan_cache_enabled = on;
        if !on {
            self.plan_cache.clear();
        }
    }

    /// Toggle compiled predicate/projection evaluation (on by default).
    /// Cached plans embed their compiled programs, so the cache is cleared.
    pub fn set_compiled_predicates(&mut self, on: bool) {
        self.config = self.config.clone().with_compiled_predicates(on);
        self.plan_cache.clear();
    }

    /// Drop every cached plan (counters untouched).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    /// The currently configured worker count.
    pub fn parallelism(&self) -> usize {
        self.config.execution.parallelism
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Execution-stage trace of the last SELECT (Figure 7.1/7.2 tests).
    pub fn last_trace(&self) -> &[String] {
        &self.last_trace
    }

    /// The session's query-lifecycle tracer. Attach subscribers (e.g.
    /// [`mood_trace::RingBuffer`]) to observe parse/bind/optimize/execute
    /// and per-operator spans.
    pub fn tracer(&self) -> &mood_trace::Tracer {
        &self.tracer
    }

    /// Parse and execute one statement. SELECT and EXPLAIN ANALYZE go
    /// through the session plan cache (keyed by the normalized statement
    /// text) unless it is disabled; everything else takes the ordinary
    /// statement path.
    pub fn execute(&mut self, sql: &str) -> Result<Answer> {
        // Warm fast path: a cached plan needs no AST, so the cache is
        // consulted on the normalized text before anything is parsed. Only
        // SELECT / EXPLAIN ANALYZE texts are ever inserted, so a hit fully
        // classifies the statement.
        if self.plan_cache_enabled {
            let norm = normalize_sql(sql);
            let (key, analyze) = split_analyze(&norm);
            let registry = self.catalog.storage().registry().clone();
            if let Some(pq) = self.plan_cache.get(key, self.catalog.epoch(), &registry) {
                let ex = Executor::new(&self.catalog, &self.funcman)
                    .with_config(self.config.clone())
                    .with_tracer(self.tracer.clone());
                let answer = if analyze {
                    Answer::Plan(ex.analyze_prepared(&pq)?.render())
                } else {
                    Answer::Rows(ex.run_prepared(&pq)?)
                };
                self.last_trace = ex.trace();
                return Ok(answer);
            }
        }
        let stmt = {
            let _span = self
                .tracer
                .span("parse", self.catalog.storage().metrics());
            parse(sql)?
        };
        if self.plan_cache_enabled {
            match &stmt {
                Statement::Select(s) => return self.run_select_cached(sql, s),
                Statement::ExplainAnalyze(s) => return self.run_analyze_cached(sql, s),
                _ => {}
            }
        }
        self.execute_statement(&stmt)
    }

    /// Consult the plan cache under the current catalog epoch; on a miss,
    /// prepare and insert. Counter discipline: hits + misses = cacheable
    /// lookups; a stale entry adds an invalidation to its miss; statements
    /// the preparer cannot absorb count nothing (they are not cacheable).
    fn lookup_or_prepare(&self, key: &str, stmt: &SelectStmt, ex: &Executor<'_>) -> Result<Lookup> {
        let registry = self.catalog.storage().registry().clone();
        let epoch = self.catalog.epoch();
        if let Some(pq) = self.plan_cache.get(key, epoch, &registry) {
            return Ok(Lookup::Hit(pq));
        }
        match ex.prepare(stmt)? {
            Some(pq) => {
                registry.record_plan_cache_miss();
                let pq = Arc::new(pq);
                self.plan_cache.insert(key.to_string(), pq.clone(), &registry);
                Ok(Lookup::Miss(pq))
            }
            None => Ok(Lookup::Uncachable),
        }
    }

    fn run_select_cached(&mut self, sql: &str, s: &SelectStmt) -> Result<Answer> {
        let key = plan_cache_key(sql);
        let ex = Executor::new(&self.catalog, &self.funcman)
            .with_config(self.config.clone())
            .with_tracer(self.tracer.clone());
        let rows = match self.lookup_or_prepare(&key, s, &ex)? {
            Lookup::Hit(pq) | Lookup::Miss(pq) => ex.run_prepared(&pq)?,
            Lookup::Uncachable => ex.run_select(s)?,
        };
        self.last_trace = ex.trace();
        Ok(Answer::Rows(rows))
    }

    fn run_analyze_cached(&mut self, sql: &str, s: &SelectStmt) -> Result<Answer> {
        let key = plan_cache_key(sql);
        let ex = Executor::new(&self.catalog, &self.funcman)
            .with_config(self.config.clone())
            .with_tracer(self.tracer.clone());
        let report = match self.lookup_or_prepare(&key, s, &ex)? {
            Lookup::Hit(pq) => ex.analyze_prepared(&pq)?,
            // A cold EXPLAIN ANALYZE reports the fresh path — including
            // the PLAN stage's page accounting — while the prepared plan
            // stays cached for the next execution.
            Lookup::Miss(_) | Lookup::Uncachable => ex.analyze(s)?,
        };
        self.last_trace = ex.trace();
        Ok(Answer::Plan(report.render()))
    }

    /// Execute a SELECT and wrap the result in a cursor.
    pub fn query(&mut self, sql: &str) -> Result<Cursor> {
        match self.execute(sql)? {
            Answer::Rows(r) => Ok(Cursor::new(r)),
            other => Err(SqlError::Exec(format!("not a query: {other:?}"))),
        }
    }

    /// Is an explicit transaction currently open on this session?
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Execute one statement under the transaction protocol:
    ///
    /// * `BEGIN`/`COMMIT`/`ROLLBACK` drive the storage manager's single
    ///   writer slot directly;
    /// * inside an explicit transaction, each DML statement runs under a
    ///   statement-level savepoint — a mid-statement error undoes just that
    ///   statement, the transaction survives;
    /// * outside one, DML and DDL autocommit (the statement is its own
    ///   transaction), and a failed DDL additionally reloads the catalog's
    ///   in-memory schema from the rolled-back pages;
    /// * DDL inside an explicit transaction is refused — it autocommits by
    ///   design, and page rollback alone cannot unwind the catalog's
    ///   in-memory maps mid-transaction;
    /// * pure reads bypass the machinery entirely.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<Answer> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(SqlError::Exec("transaction already in progress".into()));
                }
                self.txn = Some(self.catalog.storage().txn_begin());
                Ok(Answer::Done { affected: 0 })
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| SqlError::Exec("no transaction in progress".into()))?;
                self.catalog
                    .storage()
                    .txn_commit(txn)
                    .map_err(|e| SqlError::Exec(format!("commit failed (rolled back): {e}")))?;
                Ok(Answer::Done { affected: 0 })
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| SqlError::Exec("no transaction in progress".into()))?;
                self.catalog
                    .storage()
                    .txn_rollback(txn)
                    .map_err(|e| SqlError::Exec(format!("rollback failed: {e}")))?;
                Ok(Answer::Done { affected: 0 })
            }
            _ => match binder::classify(stmt) {
                StmtKind::Query => self.run_statement(stmt),
                kind => {
                    let sm = self.catalog.storage().clone();
                    // A degraded engine (persistent WAL or write-back
                    // failure) refuses all writes until healed.
                    sm.health()
                        .check_writable()
                        .map_err(|e| SqlError::Exec(e.to_string()))?;
                    if self.txn.is_some() {
                        if kind == StmtKind::Ddl {
                            return Err(SqlError::Exec(
                                "DDL statements autocommit and are not allowed inside an \
                                 explicit transaction"
                                    .into(),
                            ));
                        }
                        let owner = self.txn.unwrap();
                        sm.stmt_begin();
                        match Self::lock_dml_class(&sm, owner, stmt)
                            .and_then(|()| self.run_statement(stmt))
                        {
                            Ok(a) => {
                                sm.stmt_end();
                                Ok(a)
                            }
                            Err(e) => {
                                let _ = sm.stmt_rollback();
                                Err(e)
                            }
                        }
                    } else {
                        let txn = sm.txn_begin();
                        match Self::lock_dml_class(&sm, txn, stmt)
                            .and_then(|()| self.run_statement(stmt))
                        {
                            Ok(a) => match sm.txn_commit(txn) {
                                Ok(()) => Ok(a),
                                Err(e) => {
                                    self.resync_catalog(kind);
                                    Err(SqlError::Exec(format!(
                                        "commit failed (statement rolled back): {e}"
                                    )))
                                }
                            },
                            Err(e) => {
                                let _ = sm.txn_rollback(txn);
                                self.resync_catalog(kind);
                                Err(e)
                            }
                        }
                    }
                }
            },
        }
    }

    /// Take a class-level exclusive lock before a DML statement touches
    /// pages. Lock owners are transaction ids, so locks persist across the
    /// statements of an explicit transaction and are released by the storage
    /// manager at commit/rollback. A deadlock detected here surfaces as an
    /// error on the victim's statement — inside an explicit transaction that
    /// rolls back just the statement (savepoint), and the transaction
    /// survives to retry or commit its earlier work.
    fn lock_dml_class(
        sm: &mood_storage::StorageManager,
        owner: mood_storage::OwnerId,
        stmt: &Statement,
    ) -> Result<()> {
        let class = match stmt {
            Statement::NewObject { class, .. }
            | Statement::Delete { class, .. }
            | Statement::Update { class, .. } => class,
            _ => return Ok(()),
        };
        sm.locks()
            .acquire(
                owner,
                &format!("class:{class}"),
                mood_storage::LockMode::Exclusive,
            )
            .map_err(|e| SqlError::Exec(e.to_string()))
    }

    /// After a rolled-back DDL autocommit, the pages are back to their old
    /// contents but the catalog's in-memory maps may have moved: rebuild
    /// them from storage.
    fn resync_catalog(&self, kind: StmtKind) {
        if kind == StmtKind::Ddl {
            let _ = self.catalog.reload_schema();
        }
    }

    /// Execute the statement body (no transaction bookkeeping — see
    /// [`Session::execute_statement`]).
    fn run_statement(&mut self, stmt: &Statement) -> Result<Answer> {
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(SqlError::Exec(
                "transaction statements cannot be nested".into(),
            )),
            Statement::Select(s) => {
                let ex = Executor::new(&self.catalog, &self.funcman)
                    .with_config(self.config.clone())
                    .with_tracer(self.tracer.clone());
                let rows = ex.run_select(s)?;
                self.last_trace = ex.trace();
                Ok(Answer::Rows(rows))
            }
            Statement::Explain(s) => {
                let ex =
                    Executor::new(&self.catalog, &self.funcman).with_config(self.config.clone());
                Ok(Answer::Plan(ex.explain(s)?))
            }
            Statement::ExplainAnalyze(s) => {
                let ex = Executor::new(&self.catalog, &self.funcman)
                    .with_config(self.config.clone())
                    .with_tracer(self.tracer.clone());
                let report = ex.analyze(s)?;
                self.last_trace = ex.trace();
                Ok(Answer::Plan(report.render()))
            }
            Statement::ShowMetrics => {
                let snap = self.catalog.storage().registry().snapshot();
                Ok(Answer::Rows(QueryResult {
                    columns: vec!["metric".into(), "value".into()],
                    rows: snap
                        .rows()
                        .into_iter()
                        .map(|(k, v)| vec![Value::String(k), Value::String(v)])
                        .collect(),
                }))
            }
            Statement::CreateClass(c) => {
                let mut builder = ClassBuilder::class(&c.name);
                for (attr, ty) in &c.attributes {
                    builder = builder.attribute(attr.clone(), ty.clone());
                }
                for sup in &c.inherits {
                    builder = builder.inherits(sup.clone());
                }
                for m in &c.methods {
                    builder = builder.method(MethodSig {
                        name: m.name.clone(),
                        return_type: m.returns.clone(),
                        params: m.params.clone(),
                    });
                }
                self.catalog.define_class(builder)?;
                Ok(Answer::Done { affected: 0 })
            }
            Statement::DropClass(name) => {
                self.catalog.drop_class(name)?;
                Ok(Answer::Done { affected: 0 })
            }
            Statement::NewObject { class, values } => {
                // Positional values map onto the effective attributes in
                // declaration order (the MoodView creation protocol).
                let attrs = self.catalog.effective_attributes(class)?;
                if values.len() > attrs.len() {
                    return Err(SqlError::Exec(format!(
                        "class {class} has {} attribute(s), {} value(s) given",
                        attrs.len(),
                        values.len()
                    )));
                }
                let fields: Vec<(String, Value)> = attrs
                    .iter()
                    .zip(
                        values
                            .iter()
                            .map(lit_to_value)
                            .chain(std::iter::repeat(Value::Null)),
                    )
                    .map(|(a, v)| (a.name.clone(), v))
                    .collect();
                let oid = self.catalog.new_object(class, Value::Tuple(fields))?;
                Ok(Answer::Created(Value::Ref(oid)))
            }
            Statement::CreateIndex {
                class,
                attribute,
                unique,
                hash,
            } => {
                if attribute.contains('.') {
                    if *hash {
                        return Err(SqlError::Exec(
                            "path indexes are B+-trees (range-capable); HASH not supported".into(),
                        ));
                    }
                    let path: Vec<String> = attribute.split('.').map(str::to_string).collect();
                    self.catalog.create_path_index(class, &path)?;
                } else {
                    let kind = if *hash {
                        IndexKind::Hash
                    } else {
                        IndexKind::BTree
                    };
                    self.catalog.create_index(class, attribute, kind, *unique)?;
                }
                Ok(Answer::Done { affected: 0 })
            }
            Statement::DefineMethod {
                class,
                name,
                params,
                returns,
                body,
            } => {
                let sig = MethodSig {
                    name: name.clone(),
                    return_type: returns.clone(),
                    params: params.clone(),
                };
                self.funcman.define_source(class, sig, body)?;
                Ok(Answer::Done { affected: 0 })
            }
            Statement::DropMethod { class, name } => {
                self.funcman.delete_method(class, name)?;
                Ok(Answer::Done { affected: 0 })
            }
            Statement::Delete {
                class,
                var,
                where_clause,
            } => {
                let ex =
                    Executor::new(&self.catalog, &self.funcman).with_config(self.config.clone());
                // Stream the scan, collecting only matching OIDs; the
                // deletes run after the scan finishes.
                let mut doomed = Vec::new();
                let mut first_err: Option<SqlError> = None;
                self.catalog
                    .extent_with(class, AccessHint::Sequential, &mut |oid, value| {
                        let mut row = Row::new();
                        row.insert(
                            var.clone(),
                            BoundObj {
                                oid: Some(oid),
                                value,
                            },
                        );
                        match where_clause {
                            Some(w) => match ex.eval_pred(w, &row) {
                                Ok(true) => doomed.push(oid),
                                Ok(false) => {}
                                Err(e) => {
                                    first_err = Some(e);
                                    return false;
                                }
                            },
                            None => doomed.push(oid),
                        }
                        true
                    })?;
                if let Some(e) = first_err {
                    return Err(e);
                }
                for oid in &doomed {
                    self.catalog.delete_object(*oid)?;
                }
                Ok(Answer::Done {
                    affected: doomed.len(),
                })
            }
            Statement::Update {
                class,
                var,
                assignments,
                where_clause,
            } => {
                let ex =
                    Executor::new(&self.catalog, &self.funcman).with_config(self.config.clone());
                // Validate target attributes up front.
                let attrs = self.catalog.effective_attributes(class)?;
                for (a, _) in assignments {
                    if !attrs.iter().any(|x| &x.name == a) {
                        return Err(SqlError::Bind(format!(
                            "class {class} has no attribute {a}"
                        )));
                    }
                }
                let extent = self.catalog.extent(class)?;
                let mut affected = 0;
                for (oid, value) in extent {
                    let mut row = Row::new();
                    row.insert(
                        var.clone(),
                        BoundObj {
                            oid: Some(oid),
                            value: value.clone(),
                        },
                    );
                    let hit = match where_clause {
                        Some(w) => ex.eval_pred(w, &row)?,
                        None => true,
                    };
                    if !hit {
                        continue;
                    }
                    let mut new_value = value;
                    for (a, e) in assignments {
                        let v = ex.eval_expr(e, &row)?;
                        new_value.set_field(a, v);
                    }
                    self.catalog.update_object(oid, new_value)?;
                    affected += 1;
                }
                Ok(Answer::Done { affected })
            }
        }
    }
}

fn lit_to_value(l: &Lit) -> Value {
    match l {
        Lit::Int(i) => {
            if let Ok(v) = i32::try_from(*i) {
                Value::Integer(v)
            } else {
                Value::LongInteger(*i)
            }
        }
        Lit::Float(x) => Value::Float(*x),
        Lit::Str(s) => Value::String(s.clone()),
        Lit::Bool(b) => Value::Boolean(*b),
        Lit::Null => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::StorageManager;

    /// A session with the paper's Section 3.1 schema and a small database.
    fn session() -> Session {
        let sm = Arc::new(StorageManager::in_memory());
        let catalog = Arc::new(Catalog::create(sm).unwrap());
        let funcman = Arc::new(FunctionManager::new(catalog.clone()));
        let mut s = Session::new(catalog, funcman);
        for ddl in [
            "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
            "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
             transmission String(32))",
            "CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer)",
            "CREATE CLASS Company TUPLE (name String(32), location String(32), \
             president REFERENCE (Employee))",
            "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
             drivetrain REFERENCE (VehicleDriveTrain), manufacturer REFERENCE (Company)) \
             METHODS: lbweight () Float,",
            "CREATE CLASS Automobile INHERITS FROM Vehicle",
            "CREATE CLASS JapaneseAuto INHERITS FROM Automobile",
        ] {
            s.execute(ddl).unwrap();
        }
        s
    }

    fn oid_of(a: &Answer) -> String {
        let Answer::Created(Value::Ref(oid)) = a else {
            panic!("not a ref: {a:?}")
        };
        oid.to_string()
    }

    /// Populate engines/drivetrains/companies/cars; returns #cars.
    fn populate(s: &mut Session) -> usize {
        // Engines: cylinders 2,4,6,8 cycling.
        let mut engines = Vec::new();
        for i in 0..8 {
            let a = s
                .execute(&format!(
                    "new VehicleEngine <{}, {}>",
                    1000 + i * 100,
                    2 + (i % 4) * 2
                ))
                .unwrap();
            let Answer::Created(v) = a else { panic!() };
            engines.push(v);
        }
        // Drivetrains referencing engines — built through the catalog
        // because `new` takes literals only.
        let catalog = s.catalog().clone();
        let mut trains = Vec::new();
        for (i, e) in engines.iter().enumerate() {
            let oid = catalog
                .new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![
                        ("engine", e.clone()),
                        (
                            "transmission",
                            Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                        ),
                    ]),
                )
                .unwrap();
            trains.push(Value::Ref(oid));
        }
        let bmw = catalog
            .new_object(
                "Company",
                Value::tuple(vec![
                    ("name", Value::string("BMW")),
                    ("location", Value::string("Munich")),
                ]),
            )
            .unwrap();
        let toyota = catalog
            .new_object(
                "Company",
                Value::tuple(vec![
                    ("name", Value::string("Toyota")),
                    ("location", Value::string("Aichi")),
                ]),
            )
            .unwrap();
        let mut n = 0;
        for i in 0..16 {
            let (class, company) = if i % 4 == 0 {
                ("JapaneseAuto", toyota)
            } else if i % 2 == 0 {
                ("Automobile", bmw)
            } else {
                ("Vehicle", bmw)
            };
            catalog
                .new_object(
                    class,
                    Value::tuple(vec![
                        ("id", Value::Integer(i)),
                        ("weight", Value::Integer(900 + i * 50)),
                        ("drivetrain", trains[i as usize % trains.len()].clone()),
                        ("manufacturer", Value::Ref(company)),
                    ]),
                )
                .unwrap();
            n += 1;
        }
        catalog.collect_stats().unwrap();
        n
    }

    #[test]
    fn ddl_new_and_simple_select() {
        let mut s = session();
        let a = s
            .execute("new Employee <1, 'Budak Arpinar', 1969>")
            .unwrap();
        assert!(oid_of(&a).contains(':'));
        let Answer::Rows(r) = s
            .execute("SELECT e.name FROM Employee e WHERE e.ssno = 1")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::string("Budak Arpinar")]]);
    }

    #[test]
    fn immediate_selection_and_projection() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute("SELECT v.id, v.weight FROM Vehicle v WHERE v.weight >= 1500 ORDER BY v.id")
            .unwrap()
        else {
            panic!()
        };
        // weights 900..1650 step 50; >= 1500 → ids 12..15, but only the
        // Vehicle extent itself (no EVERY): odd ids 13, 15.
        assert_eq!(r.columns, vec!["v.id", "v.weight"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Integer(13), Value::Integer(1550)],
                vec![Value::Integer(15), Value::Integer(1650)],
            ]
        );
    }

    #[test]
    fn every_and_minus_semantics() {
        let mut s = session();
        populate(&mut s);
        let count = |s: &mut Session, q: &str| -> usize {
            let Answer::Rows(r) = s.execute(q).unwrap() else {
                panic!()
            };
            r.len()
        };
        assert_eq!(count(&mut s, "SELECT v FROM Vehicle v"), 8);
        assert_eq!(count(&mut s, "SELECT v FROM EVERY Vehicle v"), 16);
        assert_eq!(count(&mut s, "SELECT v FROM EVERY Automobile v"), 8);
        assert_eq!(
            count(&mut s, "SELECT v FROM EVERY Automobile - JapaneseAuto v"),
            4
        );
    }

    #[test]
    fn path_expression_query() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute(
                "SELECT v.id FROM EVERY Vehicle v \
                 WHERE v.drivetrain.engine.cylinders = 2 ORDER BY v.id",
            )
            .unwrap()
        else {
            panic!()
        };
        // Engines with 2 cylinders: engine indexes 0 and 4 → drivetrains
        // 0,4 → cars with i % 8 ∈ {0,4} → ids 0,4,8,12.
        let ids: Vec<i32> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Integer(i) => *i,
                other => panic!("{other}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 4, 8, 12]);
    }

    #[test]
    fn paper_section_3_1_query_executes() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute(
                "SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v \
                 WHERE c.drivetrain.transmission = 'AUTOMATIC' AND \
                 c.drivetrain.engine = v AND v.cylinders > 4",
            )
            .unwrap()
        else {
            panic!()
        };
        // Automobiles minus JapaneseAuto: ids 2,6,10,14 → drivetrains
        // 2,6 (i%8). Automatic: drivetrain index even → 2,6? trains with
        // i%2==0 are AUTOMATIC → drivetrains 2 and 6 both even → yes.
        // Cylinders of engines 2,6: 2+(2%4)*2=6; 2+(6%4)*2=6 > 4 ✓ → all 4.
        assert_eq!(r.len(), 4);
        // Every result is a reference to an object.
        assert!(r.rows.iter().all(|row| matches!(row[0], Value::Ref(_))));
    }

    #[test]
    fn disjunction_unions_and_terms() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute(
                "SELECT v.id FROM Vehicle v WHERE v.weight = 950 OR v.weight = 1050 \
                 ORDER BY v.id",
            )
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn group_by_having_count() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute(
                "SELECT v.drivetrain.transmission, COUNT(*) FROM EVERY Vehicle v \
                 GROUP BY v.drivetrain.transmission HAVING COUNT(*) > 1 \
                 ORDER BY v.drivetrain.transmission",
            )
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::string("AUTOMATIC"));
        assert_eq!(r.rows[0][1], Value::Integer(8));
        assert_eq!(r.rows[1][1], Value::Integer(8));
    }

    #[test]
    fn method_call_in_where_and_projection() {
        let mut s = session();
        populate(&mut s);
        s.execute("DEFINE METHOD Vehicle::lbweight() RETURNS Float AS 'weight * 2.2075'")
            .unwrap();
        let Answer::Rows(r) = s
            .execute(
                "SELECT v.id, v.lbweight() FROM Vehicle v WHERE v.lbweight() > 3500 \
                 ORDER BY v.id",
            )
            .unwrap()
        else {
            panic!()
        };
        // weight*2.2075 > 3500 → weight > 1585.5 → weights 1650 (id 15).
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Integer(15));
        let Value::Float(lb) = r.rows[0][1] else {
            panic!()
        };
        assert!((lb - 1650.0 * 2.2075).abs() < 1e-9);
    }

    #[test]
    fn explain_returns_plan_text() {
        let mut s = session();
        populate(&mut s);
        let Answer::Plan(p) = s
            .execute("EXPLAIN SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2")
            .unwrap()
        else {
            panic!()
        };
        assert!(p.contains("JOIN("), "{p}");
        assert!(p.contains("BIND(Vehicle, v)"), "{p}");
        assert!(p.contains("PathSelInfo"), "{p}");
    }

    #[test]
    fn execution_trace_follows_figure_7_1() {
        let mut s = session();
        populate(&mut s);
        s.execute(
            "SELECT v.drivetrain.transmission, COUNT(*) FROM EVERY Vehicle v \
             WHERE v.weight > 0 AND v.drivetrain.engine.cylinders > 0 \
             GROUP BY v.drivetrain.transmission HAVING COUNT(*) > 0 \
             ORDER BY v.drivetrain.transmission",
        )
        .unwrap();
        let trace = s.last_trace().to_vec();
        let pos = |name: &str| trace.iter().position(|t| t == name);
        let from = pos("FROM").expect("FROM");
        let select = pos("WHERE:SELECT").expect("WHERE:SELECT");
        let join = pos("WHERE:JOIN").expect("WHERE:JOIN");
        let group = pos("GROUP BY").expect("GROUP BY");
        let having = pos("HAVING").expect("HAVING");
        let project = pos("PROJECT").expect("PROJECT");
        let order = pos("ORDER BY").expect("ORDER BY");
        // Figure 7.1: FROM → WHERE → GROUP BY → HAVING → SELECT → ORDER BY,
        // and Figure 7.2 inside WHERE: SELECT before JOIN.
        assert!(from < select, "{trace:?}");
        assert!(select < join, "{trace:?}");
        assert!(join < group, "{trace:?}");
        assert!(group < having, "{trace:?}");
        assert!(having < project, "{trace:?}");
        assert!(project <= order, "{trace:?}");
    }

    #[test]
    fn union_runs_after_and_terms_figure_7_2() {
        let mut s = session();
        populate(&mut s);
        s.execute(
            "SELECT v.id FROM EVERY Vehicle v WHERE \
             v.drivetrain.engine.cylinders = 2 OR v.weight > 1500",
        )
        .unwrap();
        let trace = s.last_trace().to_vec();
        let union = trace.iter().position(|t| t == "WHERE:UNION").expect("union ran");
        let last_select = trace.iter().rposition(|t| t == "WHERE:SELECT").expect("selects ran");
        let last_join = trace.iter().rposition(|t| t == "WHERE:JOIN").expect("joins ran");
        // Figure 7.2: UNION is performed after evaluating the AND-terms.
        assert!(union > last_select, "{trace:?}");
        assert!(union > last_join, "{trace:?}");
    }

    #[test]
    fn delete_where() {
        let mut s = session();
        populate(&mut s);
        let Answer::Done { affected } = s
            .execute("DELETE FROM Vehicle v WHERE v.weight < 1000")
            .unwrap()
        else {
            panic!()
        };
        assert!(affected > 0);
        let Answer::Rows(r) = s.execute("SELECT v FROM Vehicle v").unwrap() else {
            panic!()
        };
        assert_eq!(r.len(), 8 - affected);
    }

    #[test]
    fn index_accelerated_query_same_answer() {
        let mut s = session();
        populate(&mut s);
        let q = "SELECT v.id FROM Vehicle v WHERE v.weight = 1250 ORDER BY v.id";
        let Answer::Rows(before) = s.execute(q).unwrap() else {
            panic!()
        };
        s.execute("CREATE INDEX ON Vehicle(weight)").unwrap();
        s.catalog().collect_stats().unwrap();
        let Answer::Rows(after) = s.execute(q).unwrap() else {
            panic!()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn distinct_dedupes() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute("SELECT DISTINCT v.drivetrain.transmission FROM EVERY Vehicle v")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn between_works() {
        let mut s = session();
        populate(&mut s);
        let Answer::Rows(r) = s
            .execute("SELECT v.id FROM Vehicle v WHERE v.weight BETWEEN 1000 AND 1200")
            .unwrap()
        else {
            panic!()
        };
        // Vehicle extent: odd ids 1..15, weights 950+... ids 3 (1050),
        // 5 (1150): weight = 900 + id*50 ∈ [1000,1200] → ids 3,5.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn errors_surface_cleanly() {
        let mut s = session();
        assert!(s.execute("SELECT v FROM Nothing v").is_err());
        assert!(s
            .execute("SELECT v FROM Vehicle v WHERE v.nope = 1")
            .is_err());
        assert!(s.execute("totally not sql").is_err());
        // Error in one statement doesn't poison the session.
        assert!(s.execute("SELECT v FROM Vehicle v").is_ok());
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;
    use mood_storage::StorageManager;

    fn s() -> Session {
        let sm = Arc::new(StorageManager::in_memory());
        let catalog = Arc::new(Catalog::create(sm).unwrap());
        let funcman = Arc::new(FunctionManager::new(catalog.clone()));
        let mut s = Session::new(catalog, funcman);
        s.execute("CREATE CLASS Account TUPLE (id Integer, balance Integer, note String)")
            .unwrap();
        for i in 0..10 {
            s.execute(&format!("new Account <{i}, {}, 'x'>", i * 100))
                .unwrap();
        }
        s
    }

    #[test]
    fn update_with_where_and_expression() {
        let mut s = s();
        let Answer::Done { affected } = s
            .execute("UPDATE Account a SET balance = a.balance + 50 WHERE a.id < 3")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(affected, 3);
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 2")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(250)]]);
        // Untouched rows keep their balance.
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 5")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(500)]]);
    }

    #[test]
    fn update_multiple_assignments_and_strings() {
        let mut s = s();
        s.execute("UPDATE Account a SET balance = 0, note = 'frozen' WHERE a.id = 7")
            .unwrap();
        let Answer::Rows(r) = s
            .execute("SELECT a.balance, a.note FROM Account a WHERE a.id = 7")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            r.rows,
            vec![vec![Value::Integer(0), Value::string("frozen")]]
        );
    }

    #[test]
    fn update_without_where_touches_all() {
        let mut s = s();
        let Answer::Done { affected } = s.execute("UPDATE Account a SET note = 'bulk'").unwrap()
        else {
            panic!()
        };
        assert_eq!(affected, 10);
    }

    #[test]
    fn update_unknown_attribute_rejected() {
        let mut s = s();
        assert!(s.execute("UPDATE Account a SET bogus = 1").is_err());
    }

    #[test]
    fn begin_commit_keeps_effects() {
        let mut s = s();
        s.execute("BEGIN TRANSACTION").unwrap();
        assert!(s.in_transaction());
        s.execute("new Account <100, 5000, 'txn'>").unwrap();
        s.execute("UPDATE Account a SET balance = 1 WHERE a.id = 0")
            .unwrap();
        s.execute("COMMIT").unwrap();
        assert!(!s.in_transaction());
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 100")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(5000)]]);
    }

    #[test]
    fn rollback_undoes_a_multi_statement_transaction() {
        let mut s = s();
        s.execute("BEGIN").unwrap();
        s.execute("new Account <100, 5000, 'doomed'>").unwrap();
        s.execute("UPDATE Account a SET balance = 0").unwrap();
        s.execute("DELETE FROM Account a WHERE a.id < 5").unwrap();
        s.execute("ROLLBACK").unwrap();
        // All three statements' effects are gone.
        let Answer::Rows(r) = s.execute("SELECT a FROM Account a").unwrap() else {
            panic!()
        };
        assert_eq!(r.len(), 10, "insert + delete undone");
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 7")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(700)]], "update undone");
    }

    #[test]
    fn reads_inside_a_transaction_see_its_writes() {
        let mut s = s();
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE Account a SET balance = 42 WHERE a.id = 3")
            .unwrap();
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 3")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(42)]]);
        s.execute("ROLLBACK").unwrap();
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 3")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(300)]]);
    }

    #[test]
    fn transaction_statement_misuse_is_rejected() {
        let mut s = s();
        assert!(s.execute("COMMIT").is_err(), "no transaction open");
        assert!(s.execute("ROLLBACK").is_err());
        s.execute("BEGIN").unwrap();
        assert!(s.execute("BEGIN").is_err(), "no nested transactions");
        // DDL autocommits; inside an explicit transaction it is refused.
        assert!(s
            .execute("CREATE CLASS Temp TUPLE (x Integer)")
            .is_err());
        assert!(s.execute("CREATE INDEX ON Account(balance)").is_err());
        s.execute("COMMIT").unwrap();
        // Outside the transaction the same DDL is fine.
        s.execute("CREATE CLASS Temp TUPLE (x Integer)").unwrap();
    }

    #[test]
    fn failed_statement_rolls_back_alone_inside_transaction() {
        let mut s = s();
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE Account a SET note = 'kept' WHERE a.id = 0")
            .unwrap();
        // Division by zero fires on the row with balance 200 — after the
        // rows with balances 0 and 100 were already updated. The statement
        // savepoint must undo those partial effects.
        assert!(s
            .execute("UPDATE Account a SET balance = 1000 / (a.balance - 200)")
            .is_err());
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 0 OR a.id = 1 ORDER BY a.id")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            r.rows,
            vec![vec![Value::Integer(0)], vec![Value::Integer(100)]],
            "partial statement effects undone"
        );
        // The transaction itself survives and can still commit statement 1.
        s.execute("COMMIT").unwrap();
        let Answer::Rows(r) = s
            .execute("SELECT a.note FROM Account a WHERE a.id = 0")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::string("kept")]]);
    }

    #[test]
    fn failed_autocommit_statement_leaves_no_trace() {
        let mut s = s();
        assert!(s
            .execute("UPDATE Account a SET balance = 1000 / (a.balance - 200)")
            .is_err());
        let Answer::Rows(r) = s
            .execute("SELECT a.balance FROM Account a WHERE a.id = 0 OR a.id = 1 ORDER BY a.id")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            r.rows,
            vec![vec![Value::Integer(0)], vec![Value::Integer(100)]],
            "autocommit rollback undid the partial update"
        );
    }

    #[test]
    fn update_maintains_indexes() {
        let mut s = s();
        s.execute("CREATE INDEX ON Account(balance)").unwrap();
        s.execute("UPDATE Account a SET balance = 9999 WHERE a.id = 4")
            .unwrap();
        s.catalog().collect_stats().unwrap();
        let Answer::Rows(r) = s
            .execute("SELECT a.id FROM Account a WHERE a.balance = 9999")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.rows, vec![vec![Value::Integer(4)]]);
        let Answer::Rows(r) = s
            .execute("SELECT a.id FROM Account a WHERE a.balance = 400")
            .unwrap()
        else {
            panic!()
        };
        assert!(r.rows.is_empty(), "old index entry removed");
    }
}
