//! General and collection operators (Section 3.2): `ObjId`, `TypeId`,
//! `Deref`, `isA`, `Bind`, `Select`, `IndSel`.

use mood_catalog::{Catalog, TypeId};
use mood_datamodel::Value;
use mood_storage::exec::{run_chunked, ExecutionConfig};
use mood_storage::{AccessHint, Oid};

use crate::collection::{Collection, Obj};
use crate::error::{AlgebraError, Result};

/// A predicate over one object.
pub type Predicate<'a> = &'a dyn Fn(&Obj) -> Result<bool>;

/// A predicate usable from worker threads (same contract as [`Predicate`],
/// plus `Sync` so chunks can evaluate it concurrently).
pub type SyncPredicate<'a> = &'a (dyn Fn(&Obj) -> Result<bool> + Sync);

/// `ObjId(o)` — the object identifier of `o`.
pub fn obj_id(o: &Obj) -> Option<Oid> {
    o.oid
}

/// `TypeId(o)` — the type identifier of `o` ("every object in MOOD has a
/// type associated with it"). Stored objects resolve through the catalog;
/// transient tuples have no registered type.
pub fn type_id(catalog: &Catalog, o: &Obj) -> Result<Option<TypeId>> {
    match o.oid {
        Some(oid) => {
            let (class, _) = catalog.get_object(oid)?;
            Ok(Some(catalog.type_id(&class)?))
        }
        None => Ok(None),
    }
}

/// `Deref(oid)` — the object with identifier `oid`.
pub fn deref(catalog: &Catalog, oid: Oid) -> Result<Obj> {
    let (_, value) = catalog.get_object(oid)?;
    Ok(Obj::stored(oid, value))
}

/// `isA(path)` — the class name of the last attribute of a path expression
/// starting with a class name, e.g. `isA("Vehicle.drivetrain.engine") =
/// "VehicleEngine"`.
pub fn is_a(catalog: &Catalog, path: &str) -> Result<String> {
    let mut segments = path.split('.');
    let mut class = segments
        .next()
        .ok_or_else(|| AlgebraError::NotApplicable {
            operator: "isA",
            detail: "empty path".into(),
        })?
        .to_string();
    catalog.class(&class)?; // the head must be a class name
    for attr in segments {
        let attrs = catalog.effective_attributes(&class)?;
        let a = attrs.iter().find(|a| a.name == attr).ok_or_else(|| {
            AlgebraError::Catalog(mood_catalog::CatalogError::UnknownAttribute {
                class: class.clone(),
                attribute: attr.to_string(),
            })
        })?;
        match a.ty.referenced_class() {
            Some(target) => class = target.to_string(),
            None => {
                return Err(AlgebraError::NotApplicable {
                    operator: "isA",
                    detail: format!("{class}.{attr} is not a reference attribute"),
                })
            }
        }
    }
    Ok(class)
}

/// `Bind(arg, aName)` — the naming operator: gives `aName` to an object
/// (named objects) or, for the common query-plan usage `BIND(Class, var)`,
/// materializes the class extent under a range variable (the plan printer
/// in the optimizer crate renders that form).
pub fn bind(catalog: &Catalog, arg: &Collection, name: &str) -> Result<Collection> {
    if let Collection::NamedObject(obj) = arg {
        if let Some(oid) = obj.oid {
            catalog.name_object(name, oid);
        }
    }
    Ok(arg.clone())
}

/// Materialize a class extent as a collection — the evaluation of
/// `BIND(Class, v)` in the paper's access plans. `every` includes subclass
/// extents; `minus` excludes classes (the `-` FROM-clause operator).
pub fn bind_class(
    catalog: &Catalog,
    class: &str,
    every: bool,
    minus: &[String],
) -> Result<Collection> {
    // Stream the extent straight into the collection (no intermediate
    // (oid, value) vector); the heap scan underneath runs with the
    // Sequential hint, so it gets readahead and scan-resistant frames.
    let mut objs = Vec::new();
    let mut push = |oid: Oid, v: Value| {
        objs.push(Obj::stored(oid, v));
        true
    };
    if every {
        catalog.extent_every_with(class, minus, AccessHint::Sequential, &mut push)?;
    } else {
        catalog.extent_with(class, AccessHint::Sequential, &mut push)?;
    }
    Ok(Collection::Extent(objs))
}

/// `Select(arg, P)` — keep the elements satisfying `P` (Table 1 return
/// types). Set/list elements are dereferenced to evaluate the predicate.
pub fn select(catalog: &Catalog, arg: &Collection, p: Predicate<'_>) -> Result<Collection> {
    Ok(match arg {
        Collection::Extent(objs) => {
            let mut out = Vec::new();
            for o in objs {
                if p(o)? {
                    out.push(o.clone());
                }
            }
            Collection::Extent(out)
        }
        Collection::Set(oids) | Collection::List(oids) => {
            let mut out = Vec::new();
            for &oid in oids {
                let o = deref(catalog, oid)?;
                if p(&o)? {
                    out.push(oid);
                }
            }
            if matches!(arg, Collection::Set(_)) {
                Collection::set_from(out)
            } else {
                Collection::List(out)
            }
        }
        Collection::NamedObject(obj) => {
            if p(obj)? {
                Collection::NamedObject(obj.clone())
            } else {
                Collection::Empty
            }
        }
        Collection::Empty => Collection::Empty,
    })
}

/// Chunk-parallel [`select`]: the input collection is split into contiguous
/// chunks filtered on worker threads and concatenated in chunk order, so the
/// survivors appear in exactly the sequential order (set results go through
/// the same `set_from` normalization as the sequential operator).
pub fn select_par(
    catalog: &Catalog,
    arg: &Collection,
    p: SyncPredicate<'_>,
    exec: ExecutionConfig,
) -> Result<Collection> {
    if !exec.is_parallel() {
        return select(catalog, arg, &|o| p(o));
    }
    Ok(match arg {
        Collection::Extent(objs) => {
            let out = run_chunked(exec.parallelism, objs, |_, chunk| {
                let mut keep = Vec::new();
                for o in chunk {
                    if p(o)? {
                        keep.push(o.clone());
                    }
                }
                Ok::<_, AlgebraError>(keep)
            })?;
            Collection::Extent(out)
        }
        Collection::Set(oids) | Collection::List(oids) => {
            let out = run_chunked(exec.parallelism, oids, |_, chunk| {
                let mut keep = Vec::new();
                for &oid in chunk {
                    let o = deref(catalog, oid)?;
                    if p(&o)? {
                        keep.push(oid);
                    }
                }
                Ok::<_, AlgebraError>(keep)
            })?;
            if matches!(arg, Collection::Set(_)) {
                Collection::set_from(out)
            } else {
                Collection::List(out)
            }
        }
        other => select(catalog, other, &|o| p(o))?,
    })
}

/// Dereference through the catalog for compiled path traversal.
struct CatalogResolver<'a> {
    catalog: &'a Catalog,
}

impl mood_datamodel::Resolver for CatalogResolver<'_> {
    fn resolve(&self, oid: Oid) -> Option<Value> {
        self.catalog.get_object(oid).ok().map(|(_, v)| v)
    }
}

fn compiled_matches(
    catalog: &Catalog,
    p: &mood_funcman::CompiledPredicate,
    regs: &mut mood_funcman::Registers,
    o: &Obj,
) -> Result<bool> {
    let resolver = CatalogResolver { catalog };
    let ctx = mood_funcman::EvalCtx {
        self_value: &o.value,
        args: &[],
        resolver: Some(&resolver),
        dispatcher: None,
    };
    Ok(p.matches(regs, &ctx)?)
}

/// [`select`] with a compiled register-program predicate (the Function
/// Manager's compile-once discipline applied to scans): per-element
/// evaluation reuses one scratch [`Registers`] instead of re-walking an
/// expression tree, and path traversal dereferences through the catalog.
///
/// [`Registers`]: mood_funcman::Registers
pub fn select_compiled(
    catalog: &Catalog,
    arg: &Collection,
    p: &mood_funcman::CompiledPredicate,
) -> Result<Collection> {
    let mut regs = mood_funcman::Registers::default();
    Ok(match arg {
        Collection::Extent(objs) => {
            let mut out = Vec::new();
            for o in objs {
                if compiled_matches(catalog, p, &mut regs, o)? {
                    out.push(o.clone());
                }
            }
            Collection::Extent(out)
        }
        Collection::Set(oids) | Collection::List(oids) => {
            let mut out = Vec::new();
            for &oid in oids {
                let o = deref(catalog, oid)?;
                if compiled_matches(catalog, p, &mut regs, &o)? {
                    out.push(oid);
                }
            }
            if matches!(arg, Collection::Set(_)) {
                Collection::set_from(out)
            } else {
                Collection::List(out)
            }
        }
        Collection::NamedObject(obj) => {
            if compiled_matches(catalog, p, &mut regs, obj)? {
                Collection::NamedObject(obj.clone())
            } else {
                Collection::Empty
            }
        }
        Collection::Empty => Collection::Empty,
    })
}

/// Chunk-parallel [`select_compiled`]: programs are immutable and `Sync`,
/// so workers share the program and each keeps its own scratch registers
/// (one allocation per chunk, not per element). Chunk order concatenation
/// preserves the sequential output order exactly.
pub fn select_compiled_par(
    catalog: &Catalog,
    arg: &Collection,
    p: &mood_funcman::CompiledPredicate,
    exec: ExecutionConfig,
) -> Result<Collection> {
    if !exec.is_parallel() {
        return select_compiled(catalog, arg, p);
    }
    Ok(match arg {
        Collection::Extent(objs) => {
            let out = run_chunked(exec.parallelism, objs, |_, chunk| {
                let mut regs = mood_funcman::Registers::default();
                let mut keep = Vec::new();
                for o in chunk {
                    if compiled_matches(catalog, p, &mut regs, o)? {
                        keep.push(o.clone());
                    }
                }
                Ok::<_, AlgebraError>(keep)
            })?;
            Collection::Extent(out)
        }
        Collection::Set(oids) | Collection::List(oids) => {
            let out = run_chunked(exec.parallelism, oids, |_, chunk| {
                let mut regs = mood_funcman::Registers::default();
                let mut keep = Vec::new();
                for &oid in chunk {
                    let o = deref(catalog, oid)?;
                    if compiled_matches(catalog, p, &mut regs, &o)? {
                        keep.push(oid);
                    }
                }
                Ok::<_, AlgebraError>(keep)
            })?;
            if matches!(arg, Collection::Set(_)) {
                Collection::set_from(out)
            } else {
                Collection::List(out)
            }
        }
        other => select_compiled(catalog, other, p)?,
    })
}

/// Index type selector for `IndSel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexType {
    BTree,
    Hash,
}

/// `IndSel(arg, index_type, P)` — index-assisted selection on an extent:
/// returns a *set of object identifiers* (the paper's stated return type).
/// `P` here is the simple predicate ⟨attribute, θ, constant⟩ an index can
/// serve: equality for both index types, ranges for B+-trees.
pub fn ind_sel(
    catalog: &Catalog,
    class: &str,
    _index_type: IndexType,
    attribute: &str,
    theta: mood_cost::Theta,
    constant: &Value,
) -> Result<Collection> {
    use mood_cost::Theta;
    let oids = match theta {
        Theta::Eq => catalog.index_lookup(class, attribute, constant)?,
        Theta::Lt => catalog.index_range(class, attribute, None, Some((constant, false)))?,
        Theta::Le => catalog.index_range(class, attribute, None, Some((constant, true)))?,
        Theta::Gt => catalog.index_range(class, attribute, Some((constant, false)), None)?,
        Theta::Ge => catalog.index_range(class, attribute, Some((constant, true)), None)?,
        Theta::Ne => {
            return Err(AlgebraError::NotApplicable {
                operator: "IndSel",
                detail: "<> cannot use an index".into(),
            })
        }
    };
    Ok(Collection::set_from(oids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Kind;
    use mood_catalog::{ClassBuilder, IndexKind};
    use mood_datamodel::TypeDescriptor;
    use mood_storage::StorageManager;
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, Vec<Oid>) {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("VehicleEngine")
                .attribute("size", TypeDescriptor::integer())
                .attribute("cylinders", TypeDescriptor::integer()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("id", TypeDescriptor::integer())
                .attribute("engine", TypeDescriptor::reference("VehicleEngine")),
        )
        .unwrap();
        let mut oids = Vec::new();
        for i in 0..10 {
            oids.push(
                cat.new_object(
                    "VehicleEngine",
                    Value::tuple(vec![
                        ("size", Value::Integer(1000 + i * 100)),
                        ("cylinders", Value::Integer(2 + (i % 4) * 2)),
                    ]),
                )
                .unwrap(),
            );
        }
        (cat, oids)
    }

    #[test]
    fn deref_and_obj_id_roundtrip() {
        let (cat, oids) = setup();
        let o = deref(&cat, oids[3]).unwrap();
        assert_eq!(obj_id(&o), Some(oids[3]));
        assert_eq!(o.value.field("size"), Some(&Value::Integer(1300)));
    }

    #[test]
    fn type_id_of_stored_and_transient() {
        let (cat, oids) = setup();
        let o = deref(&cat, oids[0]).unwrap();
        let tid = type_id(&cat, &o).unwrap().unwrap();
        assert_eq!(cat.type_name(tid).unwrap(), "VehicleEngine");
        assert_eq!(
            type_id(&cat, &Obj::transient(Value::Integer(1))).unwrap(),
            None
        );
    }

    #[test]
    fn is_a_walks_reference_path() {
        let (cat, _) = setup();
        assert_eq!(is_a(&cat, "Vehicle").unwrap(), "Vehicle");
        assert_eq!(is_a(&cat, "Vehicle.engine").unwrap(), "VehicleEngine");
        assert!(
            is_a(&cat, "Vehicle.engine.cylinders").is_err(),
            "atomic tail"
        );
        assert!(is_a(&cat, "Nope").is_err());
    }

    #[test]
    fn select_on_extent_filters() {
        let (cat, _) = setup();
        let extent = bind_class(&cat, "VehicleEngine", false, &[]).unwrap();
        let big = select(&cat, &extent, &|o: &Obj| {
            Ok(o.value
                .field("size")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                >= 1500.0)
        })
        .unwrap();
        assert_eq!(big.kind(), Some(Kind::Extent));
        assert_eq!(big.len(), 5);
    }

    #[test]
    fn select_on_set_derefs_and_keeps_kind() {
        let (cat, oids) = setup();
        let set = Collection::set_from(oids.clone());
        let even = select(&cat, &set, &|o: &Obj| {
            Ok(matches!(o.value.field("cylinders"), Some(Value::Integer(c)) if *c == 4))
        })
        .unwrap();
        assert_eq!(even.kind(), Some(Kind::Set));
        assert!(!even.is_empty());
    }

    #[test]
    fn select_on_named_object() {
        let (cat, oids) = setup();
        let named = Collection::NamedObject(deref(&cat, oids[0]).unwrap());
        let kept = select(&cat, &named, &|_| Ok(true)).unwrap();
        assert_eq!(kept.kind(), Some(Kind::NamedObject));
        let dropped = select(&cat, &named, &|_| Ok(false)).unwrap();
        assert_eq!(dropped, Collection::Empty);
    }

    #[test]
    fn bind_names_objects() {
        let (cat, oids) = setup();
        let named = Collection::NamedObject(deref(&cat, oids[2]).unwrap());
        bind(&cat, &named, "flagship").unwrap();
        assert_eq!(cat.named_object("flagship"), Some(oids[2]));
    }

    #[test]
    fn ind_sel_equality_and_range() {
        let (cat, _) = setup();
        cat.create_index("VehicleEngine", "cylinders", IndexKind::BTree, false)
            .unwrap();
        let eq = ind_sel(
            &cat,
            "VehicleEngine",
            IndexType::BTree,
            "cylinders",
            mood_cost::Theta::Eq,
            &Value::Integer(4),
        )
        .unwrap();
        assert_eq!(eq.kind(), Some(Kind::Set));
        assert!(eq.len() >= 2);
        let gt = ind_sel(
            &cat,
            "VehicleEngine",
            IndexType::BTree,
            "cylinders",
            mood_cost::Theta::Gt,
            &Value::Integer(4),
        )
        .unwrap();
        for oid in gt.oids() {
            let o = deref(&cat, oid).unwrap();
            assert!(matches!(o.value.field("cylinders"), Some(Value::Integer(c)) if *c > 4));
        }
        // <> cannot use an index.
        assert!(ind_sel(
            &cat,
            "VehicleEngine",
            IndexType::BTree,
            "cylinders",
            mood_cost::Theta::Ne,
            &Value::Integer(4),
        )
        .is_err());
    }

    #[test]
    fn bind_class_every_includes_subclasses() {
        let (cat, _) = setup();
        cat.define_class(ClassBuilder::class("ElectricEngine").inherits("VehicleEngine"))
            .unwrap();
        cat.new_object(
            "ElectricEngine",
            Value::tuple(vec![("size", Value::Integer(1))]),
        )
        .unwrap();
        assert_eq!(
            bind_class(&cat, "VehicleEngine", false, &[]).unwrap().len(),
            10
        );
        assert_eq!(
            bind_class(&cat, "VehicleEngine", true, &[]).unwrap().len(),
            11
        );
        let minus =
            bind_class(&cat, "VehicleEngine", true, &["ElectricEngine".to_string()]).unwrap();
        assert_eq!(minus.len(), 10);
    }
}
