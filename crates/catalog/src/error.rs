//! Catalog error type.

use std::fmt;

/// Errors raised by catalog and extent operations.
#[derive(Debug)]
pub enum CatalogError {
    /// The named class/type does not exist.
    UnknownClass(String),
    /// A class/type with this name already exists.
    DuplicateClass(String),
    /// The named attribute does not exist on the class.
    UnknownAttribute { class: String, attribute: String },
    /// An attribute with this name already exists (own or inherited).
    DuplicateAttribute { class: String, attribute: String },
    /// Two superclasses contribute conflicting definitions.
    InheritanceConflict { class: String, attribute: String },
    /// The inheritance graph would contain a cycle.
    InheritanceCycle(String),
    /// A value does not conform to the class's type.
    TypeMismatch { class: String, detail: String },
    /// The class is a value type (no extent) but an extent operation was
    /// attempted.
    NoExtent(String),
    /// Method signature not found.
    UnknownMethod { class: String, signature: String },
    /// A non-atomic attribute was used where an atomic one is required
    /// (e.g. as an index key).
    NotAtomic { class: String, attribute: String },
    /// An index on this (class, attribute) already exists.
    DuplicateIndex { class: String, attribute: String },
    /// No index on this (class, attribute).
    UnknownIndex { class: String, attribute: String },
    /// Underlying storage failure.
    Storage(mood_storage::StorageError),
    /// Stored catalog bytes were unreadable.
    Corrupt(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownClass(c) => write!(f, "unknown class {c}"),
            CatalogError::DuplicateClass(c) => write!(f, "class {c} already exists"),
            CatalogError::UnknownAttribute { class, attribute } => {
                write!(f, "class {class} has no attribute {attribute}")
            }
            CatalogError::DuplicateAttribute { class, attribute } => {
                write!(f, "class {class} already has attribute {attribute}")
            }
            CatalogError::InheritanceConflict { class, attribute } => {
                write!(
                    f,
                    "class {class} inherits conflicting definitions of {attribute}"
                )
            }
            CatalogError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through {c}")
            }
            CatalogError::TypeMismatch { class, detail } => {
                write!(f, "value does not conform to class {class}: {detail}")
            }
            CatalogError::NoExtent(c) => write!(f, "type {c} has no extent"),
            CatalogError::UnknownMethod { class, signature } => {
                write!(f, "class {class} has no method {signature}")
            }
            CatalogError::NotAtomic { class, attribute } => {
                write!(f, "attribute {class}.{attribute} is not atomic")
            }
            CatalogError::DuplicateIndex { class, attribute } => {
                write!(f, "index on {class}.{attribute} already exists")
            }
            CatalogError::UnknownIndex { class, attribute } => {
                write!(f, "no index on {class}.{attribute}")
            }
            CatalogError::Storage(e) => write!(f, "storage error: {e}"),
            CatalogError::Corrupt(msg) => write!(f, "catalog corruption: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mood_storage::StorageError> for CatalogError {
    fn from(e: mood_storage::StorageError) -> Self {
        CatalogError::Storage(e)
    }
}

impl From<mood_datamodel::CodecError> for CatalogError {
    fn from(e: mood_datamodel::CodecError) -> Self {
        CatalogError::Corrupt(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, CatalogError>;
