//! `reproduce` — regenerate every table and figure of the MOOD paper.
//!
//! ```sh
//! cargo run -p mood-bench --bin reproduce            # everything
//! cargo run -p mood-bench --bin reproduce -- 8.1     # one experiment
//! ```
//!
//! Sections map 1:1 to the per-experiment index in DESIGN.md; EXPERIMENTS.md
//! records the printed numbers against the paper's.

use mood_bench::{build_ref_db, measured_join_pages, RefDbSpec};
use mood_core::algebra::{
    as_extent_return, dupelim_return, join_return, select_return, setop_return, Kind,
};
use mood_core::cost::{
    best_join_method, c_approx, cardenas, fref, o_overlap, path_forward_cost, path_selectivity,
    yao, ClassInfo, JoinInputs, JoinMethod, PathHop, PathPredicate, DEFAULT_CPU_COST,
};
use mood_core::{DatabaseStats, Mood, OptimizerConfig, PhysicalParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("tables-1-7") {
        tables_1_to_7();
    }
    if want("tables-8-10") {
        tables_8_to_10();
    }
    if want("tables-13-15") {
        tables_13_to_15();
    }
    if want("8.1") {
        example_8_1();
    }
    if want("8.2") {
        example_8_2();
    }
    if want("table-17") {
        table_17();
    }
    if want("arch") {
        figure_arch();
    }
    if want("exec-order") {
        figure_exec_order();
    }
    if want("join-crossover") {
        join_crossover();
    }
    if want("approximations") {
        approximations();
    }
}

fn hr(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Tables 1–7: the algebra return-type rules, regenerated from the
/// implementation's pure rule functions.
fn tables_1_to_7() {
    hr("Tables 1–7 — MOOD algebra return types (regenerated from code)");
    let kinds = [Kind::Extent, Kind::Set, Kind::List, Kind::NamedObject];

    println!("\nTable 1. Select(arg, P):");
    for k in kinds {
        println!("  {k:<12} -> {}", select_return(k));
    }

    println!("\nTable 2. Join(arg1, arg2): (rows = arg1, cols = arg2)");
    print!("  {:<12}", "");
    for k2 in kinds {
        print!("{k2:<12}");
    }
    println!();
    for k1 in kinds {
        print!("  {k1:<12}");
        for k2 in kinds {
            print!("{:<12}", join_return(k1, k2).to_string());
        }
        println!();
    }

    println!("\nTable 3. DupElim(arg):");
    for k in kinds {
        match dupelim_return(k) {
            Some(desc) => println!("  {k:<12} -> {desc}"),
            None => println!("  {k:<12} -> not applicable"),
        }
    }

    println!("\nTable 4. Union/Intersection/Difference (set/list args only):");
    for k1 in [Kind::Set, Kind::List] {
        for k2 in [Kind::Set, Kind::List] {
            println!(
                "  {k1:<6} x {k2:<6} -> {}",
                setop_return(k1, k2).expect("valid")
            );
        }
    }

    println!("\nTable 5. asSet/asList element sources:");
    for k in kinds {
        println!(
            "  {k:<12} -> {}",
            mood_core::algebra::as_set_list_elements(k)
        );
    }

    println!("\nTable 6. asExtent(arg):");
    for k in kinds {
        match as_extent_return(k) {
            Some(d) => println!("  {k:<12} -> {d}"),
            None => println!("  {k:<12} -> not applicable"),
        }
    }

    println!("\nTable 7. Unnest argument kinds (all return an Extent):");
    for k in kinds {
        println!(
            "  {k:<12} accepted: {}",
            mood_core::algebra::unnest_accepts(k)
        );
    }
}

/// Tables 8–10: cost-model parameters, measured on a generated database.
fn tables_8_to_10() {
    hr("Tables 8–10 — cost model parameters (measured on a generated DB)");
    let (db, _, _) = build_ref_db(&RefDbSpec::default());
    let stats = db.catalog().stats();
    println!("\nTable 8 instance (class C referencing D, 2000/500 objects):");
    for class in ["C", "D"] {
        let s = stats.class(class).expect("collected");
        println!(
            "  |{class}| = {:<6} nbpages({class}) = {:<5} size({class}) = {} bytes",
            s.cardinality, s.nbpages, s.size
        );
    }
    let r = stats.reference("C", "d").expect("reference stats");
    println!(
        "  fan(d,C,D) = {:.3}  totref = {}  totlinks = {:.0}  hitprb = {:.3}",
        r.fan,
        r.totref,
        stats.totlinks("C", "d").expect("derived"),
        stats.hitprb("C", "d").expect("derived"),
    );

    // Table 9: build a B+-tree index and read its parameters back.
    db.execute("CREATE INDEX ON D(id)").unwrap();
    let stats = db.collect_stats().unwrap();
    let ix = stats.index("D", "id").expect("index stats");
    println!("\nTable 9 instance (B+-tree on D.id):");
    println!(
        "  v(I) = {}  level(I) = {}  leaves(I) = {}  keysize(I) = {}  unique(I) = {}",
        ix.order, ix.levels, ix.leaves, ix.keysize, ix.unique
    );

    println!("\nTable 10 — physical disk parameters (both presets):");
    for (name, p) in [
        ("salzberg_1988", PhysicalParams::salzberg_1988()),
        ("paper_calibrated", PhysicalParams::paper_calibrated()),
    ] {
        println!(
            "  {name:<18} B = {}  btt = {:.4} ms  ebt = {:.4} ms  r = {:.3} ms  s = {:.3} ms",
            p.block,
            p.btt * 1e3,
            p.ebt * 1e3,
            p.rot * 1e3,
            p.seek * 1e3
        );
    }
}

fn tables_13_to_15() {
    hr("Tables 13–15 — the example database statistics (injected verbatim)");
    let s = DatabaseStats::paper_example();
    println!("\nTable 13:");
    println!(
        "  {:<18} {:>8} {:>10} {:>8}",
        "Class", "|C|", "nbpages", "size"
    );
    for c in ["Vehicle", "VehicleDriveTrain", "VehicleEngine", "Company"] {
        let cs = s.class(c).expect("paper stats");
        println!(
            "  {:<18} {:>8} {:>10} {:>8}",
            c, cs.cardinality, cs.nbpages, cs.size
        );
    }
    println!("\nTable 14:");
    println!(
        "  {:<18} {:<10} {:>8} {:>6} {:>6}",
        "Class", "Attribute", "dist", "max", "min"
    );
    for (c, a) in [("VehicleEngine", "cylinders"), ("Company", "name")] {
        let at = s.attr(c, a).expect("paper stats");
        println!(
            "  {:<18} {:<10} {:>8} {:>6} {:>6}",
            c,
            a,
            at.dist,
            at.max.map(|x| x.to_string()).unwrap_or("-".into()),
            at.min.map(|x| x.to_string()).unwrap_or("-".into())
        );
    }
    println!("\nTable 15 (totlinks/hitprb derived):");
    println!(
        "  {:<18} {:<13} {:>4} {:>8} {:>9} {:>7}",
        "Class", "Attribute", "fan", "totref", "totlinks", "hitprb"
    );
    for (c, a) in [
        ("Vehicle", "drivetrain"),
        ("Vehicle", "manufacturer"),
        ("VehicleDriveTrain", "engine"),
    ] {
        let r = s.reference(c, a).expect("paper stats");
        println!(
            "  {:<18} {:<13} {:>4} {:>8} {:>9} {:>7}",
            c,
            a,
            r.fan,
            r.totref,
            s.totlinks(c, a).expect("derived"),
            s.hitprb(c, a).expect("derived")
        );
    }
}

fn paper_db() -> Mood {
    let db = Mood::in_memory();
    db.set_optimizer_config(OptimizerConfig::paper());
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Company TUPLE (name String(32), location String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), company REFERENCE (Company))",
    ] {
        db.execute(ddl).unwrap();
    }
    db.catalog().set_stats(DatabaseStats::paper_example());
    db
}

/// Table 16 + Example 8.1 — PathSelInfo and the generated plan.
fn example_8_1() {
    hr("Example 8.1 / Table 16 — path ordering and the access plan");
    let db = paper_db();
    let plan = db
        .explain(
            "SELECT v FROM Vehicle v WHERE v.company.name = 'BMW' \
             AND v.drivetrain.engine.cylinders = 2",
        )
        .unwrap();
    println!("{plan}");
    println!("paper Table 16 reference values:");
    println!("  P1 v.drivetrain.engine.cylinders=2 | 6.25e-2 | 771.825 | 823.280");
    println!("  P2 v.company.name='BMW'            | 5.00e-5 | 520.825 | 520.825");
    println!("  (P2's printed selectivity omits the hitprb factor its formula");
    println!("   requires — the formula value is 5.00e-6; see EXPERIMENTS.md.)");
}

/// Example 8.2 — the greedy join ordering's plan.
fn example_8_2() {
    hr("Example 8.2 — implicit join ordering (Algorithm 8.2)");
    let db = paper_db();
    let plan = db
        .explain("SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2")
        .unwrap();
    println!("{plan}");
    println!("paper's plan: T1 = JOIN(BIND(VehicleDriveTrain,d), SELECT(BIND(VehicleEngine,e),");
    println!("  e.cylinders=2), HASH_PARTITION, d.engine=e.self);");
    println!("  final = JOIN(BIND(Vehicle,v), T1, HASH_PARTITION, v.drivetrain=d.self)");
}

/// Table 17 — the initial cost/selectivity estimations for Example 8.2,
/// recomputed from the formulas (the printed table body is garbled in the
/// source text).
fn table_17() {
    hr("Table 17 — initial jc/js estimations for Example 8.2 (recomputed)");
    let p = PhysicalParams::paper_calibrated();
    let s = DatabaseStats::paper_example();
    let class = |n: &str| {
        let c = s.class(n).expect("paper stats");
        ClassInfo {
            cardinality: c.cardinality as f64,
            nbpages: c.nbpages as f64,
        }
    };
    let pairs = [
        ("Vehicle", "drivetrain", "VehicleDriveTrain", 1.0),
        ("VehicleDriveTrain", "engine", "VehicleEngine", 1.0 / 16.0),
    ];
    println!(
        "\n  {:<34} {:>12} {:>9} {:>12} {:<18}",
        "pair (C.A = D.self)", "jc (s)", "js", "jc/(1-js)", "method"
    );
    for (c, a, d, term_sel) in pairs {
        let r = s.reference(c, a).expect("paper stats");
        let hop = PathHop {
            fan: r.fan,
            totref: r.totref as f64,
            totlinks: s.totlinks(c, a).expect("derived"),
        };
        let j = JoinInputs {
            k_c: class(c).cardinality,
            k_d: class(d).cardinality,
            c: class(c),
            d: class(d),
            fan: hop.fan,
            totref: hop.totref,
            index: None,
            d_already_accessed: false,
            cpu_cost: DEFAULT_CPU_COST,
            c_in_memory: false,
            d_in_memory: false,
        };
        let (method, jc) = best_join_method(&p, &j);
        let js = o_overlap(
            hop.totref,
            fref(&[hop], 1.0),
            class(d).cardinality * term_sel * s.hitprb(c, a).expect("derived"),
        );
        let rank = if js >= 1.0 {
            f64::INFINITY
        } else {
            jc / (1.0 - js)
        };
        println!(
            "  {:<34} {:>12.3} {:>9.4} {:>12.3} {:<18}",
            format!("{c}.{a} = {d}.self"),
            jc,
            js,
            rank,
            method.plan_name()
        );
    }
    println!("\n  -> the minimum-rank pair is (VehicleDriveTrain, VehicleEngine),");
    println!("     merged first by Algorithm 8.2 — matching Example 8.2's T1.");
}

/// Figure 2.1/2.2 — the realized architecture.
fn figure_arch() {
    hr("Figures 2.1 / 2.2 — realized architecture and catalog layout");
    println!(
        r#"
  MoodView (mood-view: DAG browser, class cards, object graphs, query mgr)
       |  SQL (the Section 9.4 protocol)
  MOODSQL (mood-sql: lexer -> parser -> binder -> executor/cursors)
       |
  Optimizer (mood-optimizer: DNF, ImmSel/PathSel/OtherSelInfo,
             Alg. 8.1 F/(1-s), Alg. 8.2 greedy join ordering)
       |               \
  Object Algebra        Cost Model (mood-cost: selectivity,
  (mood-algebra:         SEQCOST/RNDCOST/INDCOST/RNGXCOST,
   Tables 1-7 ops,       ftc/btc/bjc/hhc)
   4 join methods)
       |
  Catalog (mood-catalog: MoodsType/MoodsAttribute/MoodsFunction on heap
           files — Figure 2.2 — class DAG, extents, indexes, statistics)
       |                       Function Manager (mood-funcman: signatures,
       |                       shared objects, dld-style lazy load, locking,
       |                       OperandDataType, Exception)
  ESM substrate (mood-storage: pages, buffer pool, heap files w/ forwarding,
                 B+-tree & hash indexes, lock manager, WAL, disk metrics)
"#
    );
    // Figure 2.2: show the actual catalog files of a live database.
    let db = Mood::in_memory();
    db.execute("CREATE CLASS Vehicle TUPLE (id Integer) METHODS: lbweight () Float,")
        .unwrap();
    let root = db.catalog().root();
    println!(
        "  live catalog files: MoodsType -> file {:?}, MoodsAttribute -> file {:?}, MoodsFunction -> file {:?}",
        root.types, root.attrs, root.funcs
    );
}

/// Figures 7.1/7.2 — the execution order, shown via the executor's trace.
fn figure_exec_order() {
    hr("Figures 7.1 / 7.2 — clause and operator execution order (traced)");
    let db = Mood::in_memory();
    for ddl in [
        "CREATE CLASS E TUPLE (k Integer, g Integer)",
        "CREATE CLASS F TUPLE (e REFERENCE (E), tag String)",
    ] {
        db.execute(ddl).unwrap();
    }
    let catalog = db.catalog();
    use mood_core::Value;
    for i in 0..20 {
        let e = catalog
            .new_object(
                "E",
                Value::tuple(vec![("k", Value::Integer(i)), ("g", Value::Integer(i % 3))]),
            )
            .unwrap();
        catalog
            .new_object(
                "F",
                Value::tuple(vec![("e", Value::Ref(e)), ("tag", Value::string("t"))]),
            )
            .unwrap();
    }
    db.collect_stats().unwrap();
    db.execute(
        "SELECT f.e.g, COUNT(*) FROM F f WHERE f.tag = 't' AND f.e.k > 2 \
         GROUP BY f.e.g HAVING COUNT(*) > 1 ORDER BY f.e.g",
    )
    .unwrap();
    println!("\n  execution trace: {}", db.last_trace().join(" -> "));
    println!("  Figure 7.1: FROM -> WHERE -> GROUP BY -> HAVING -> SELECT -> ORDER BY");
    println!("  Figure 7.2 (within WHERE): SELECT -> JOIN -> PROJECT -> UNION");
}

/// X1 — join-method crossover: measured pages vs model predictions.
fn join_crossover() {
    hr("X1 — join-method crossover (measured access pattern vs model)");
    let spec = RefDbSpec {
        n_c: 4000,
        n_d: 8000,
        pool_frames: 8,
        join_index: true,
        ..Default::default()
    };
    let (db, c_oids, _) = build_ref_db(&spec);
    let params = PhysicalParams::salzberg_1988();
    println!(
        "\n  {:>6} {:<20} {:>6} {:>6} {:>6} {:>14} {:>14}",
        "k_c", "method", "seq", "rnd", "idx", "measured(s)", "model(s)"
    );
    let mut winners_agree = 0;
    let mut sweeps = 0;
    for k_c in [10usize, 100, 500, 2000, 4000] {
        let mut best_measured: Option<(JoinMethod, f64)> = None;
        let mut best_model: Option<(JoinMethod, f64)> = None;
        for method in [
            JoinMethod::ForwardTraversal,
            JoinMethod::BackwardTraversal,
            JoinMethod::BinaryJoinIndex,
            JoinMethod::HashPartition,
        ] {
            let m = measured_join_pages(&db, &c_oids, k_c, method, &params);
            println!(
                "  {:>6} {:<20} {:>6} {:>6} {:>6} {:>14.4} {:>14.4}",
                k_c,
                method.plan_name(),
                m.seq_pages,
                m.rnd_pages,
                m.idx_pages,
                m.measured_model_seconds,
                m.predicted_seconds
            );
            if best_measured.is_none_or(|(_, c)| m.measured_model_seconds < c) {
                best_measured = Some((method, m.measured_model_seconds));
            }
            if best_model.is_none_or(|(_, c)| m.predicted_seconds < c) {
                best_model = Some((method, m.predicted_seconds));
            }
        }
        sweeps += 1;
        if best_measured.map(|x| x.0) == best_model.map(|x| x.0) {
            winners_agree += 1;
        }
        println!(
            "         -> measured winner {:?}, model winner {:?}",
            best_measured.expect("set").0,
            best_model.expect("set").0
        );
    }
    println!("\n  model picked the measured winner in {winners_agree}/{sweeps} sweeps");
}

/// X3 — the c(n,m,r)/o(t,x,y) approximations vs exact forms.
fn approximations() {
    hr("X3 — approximation quality: c(n,m,r) vs Cardenas vs Yao");
    println!("\n  m = 1000, n = 10000, sweeping r:");
    println!(
        "  {:>8} {:>12} {:>12} {:>12}",
        "r", "c_approx", "cardenas", "yao"
    );
    for r in [10.0, 100.0, 400.0, 700.0, 1500.0, 3000.0, 10_000.0] {
        println!(
            "  {:>8} {:>12.1} {:>12.1} {:>12.1}",
            r,
            c_approx(10_000.0, 1000.0, r),
            cardenas(1000.0, r),
            yao(10_000.0, 1000.0, r)
        );
    }
    println!("\n  path selectivity at the Table 16 operating point:");
    let p1 = PathPredicate {
        hops: vec![
            PathHop {
                fan: 1.0,
                totref: 10_000.0,
                totlinks: 20_000.0,
            },
            PathHop {
                fan: 1.0,
                totref: 10_000.0,
                totlinks: 10_000.0,
            },
        ],
        terminal_cardinality: 10_000.0,
        terminal_selectivity: 1.0 / 16.0,
        hitprb_last: 1.0,
    };
    println!("  f_s(P1) = {:.4}  (paper: 6.25e-2)", path_selectivity(&p1));
    let f1 = path_forward_cost(
        &PhysicalParams::paper_calibrated(),
        &[
            ClassInfo {
                cardinality: 20_000.0,
                nbpages: 2_000.0,
            },
            ClassInfo {
                cardinality: 10_000.0,
                nbpages: 750.0,
            },
            ClassInfo {
                cardinality: 10_000.0,
                nbpages: 5_000.0,
            },
        ],
        &p1.hops,
        20_000.0,
    );
    println!("  F(P1)   = {f1:.3}  (paper: 771.825, +0.45% residual documented)");
}
