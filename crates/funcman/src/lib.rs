//! # mood-funcman — the MOOD Function Manager
//!
//! Reproduces Section 2's division of labor between "an object-oriented SQL
//! interpreter and a C++ compiler": method bodies are compiled once when
//! added (never interpreted per call), loaded lazily per scope, locked
//! during redefinition, and their failures — including crashes — surface
//! through the kernel's `Exception` class.
//!
//! * [`operand`] — `OperandDataType`: run-time typed arithmetic/Boolean
//!   evaluation with type checking and coercion;
//! * [`exception`] — the `Exception` class and panic capture;
//! * [`expr`] — the method-body expression language ("compilation" =
//!   parse-at-definition);
//! * [`manager`] — signatures, shared objects, dynamic linking, invocation
//!   with late binding.

pub mod compile;
pub mod exception;
pub mod expr;
pub mod manager;
pub mod operand;

pub use compile::{
    compile_program, CompileOpts, CompiledPredicate, CompiledProjection, Mode, Program, Registers,
    StaticKind,
};
pub use exception::{catch, Exception, ExceptionKind};
pub use expr::{compile, eval, EvalCtx, Expr};
pub use manager::{FunctionManager, MethodBody, NativeFn};
pub use operand::{NumKind, OperandDataType};
