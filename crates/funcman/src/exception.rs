//! The kernel's `Exception` class.
//!
//! "All system errors, including signals that terminate processes are
//! handled by our Exception class. Thus although the functions are
//! compiled, their error messages are handled as if they are interpreted."
//! (Section 2.) The Rust analogue of a compiled method's crash is a panic;
//! [`catch`] converts panics into `Exception` values so a misbehaving method
//! body never takes the server down.

use std::fmt;

/// An exception raised during method execution or expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Exception {
    /// Machine-readable kind.
    pub kind: ExceptionKind,
    /// Human-readable message.
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionKind {
    /// Type error detected at run time (the interpreter's checks).
    TypeError,
    /// Division or modulo by zero.
    DivisionByZero,
    /// Arithmetic overflow in checked integer operations.
    Overflow,
    /// Unknown identifier (attribute or parameter) in a method body.
    UnknownIdentifier,
    /// Method-body compile (parse) error.
    CompileError,
    /// The method is not present in the class's shared object.
    MissingFunction,
    /// Wrong number or type of arguments at the call site.
    BadArguments,
    /// A compiled (native) function crashed — a "signal" in the paper's
    /// terms — and was converted to an exception.
    Signal,
    /// Errors bubbled up from the catalog/storage layers.
    System,
    /// Raised by Sql-mode compiled programs: the message carries the query
    /// engine's own error text verbatim, so MOODSQL can re-wrap it as an
    /// execution error identical to its interpreter's.
    Query,
}

impl Exception {
    pub fn new(kind: ExceptionKind, message: impl Into<String>) -> Self {
        Exception {
            kind,
            message: message.into(),
        }
    }

    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::TypeError, message)
    }

    pub fn division_by_zero() -> Self {
        Self::new(ExceptionKind::DivisionByZero, "division by zero")
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for Exception {}

/// Run `f`, converting any panic into [`ExceptionKind::Signal`]. This is
/// the "signals that terminate processes" handler: a native method that
/// would crash the server instead reports an exception.
pub fn catch<T>(
    f: impl FnOnce() -> Result<T, Exception> + std::panic::UnwindSafe,
) -> Result<T, Exception> {
    match std::panic::catch_unwind(f) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Err(Exception::new(ExceptionKind::Signal, msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_passes_through_ok() {
        assert_eq!(catch(|| Ok(42)), Ok(42));
    }

    #[test]
    fn catch_passes_through_exceptions() {
        let e = Exception::division_by_zero();
        assert_eq!(catch::<i32>(|| Err(e.clone())), Err(e));
    }

    #[test]
    fn catch_converts_panics_to_signal() {
        let r: Result<(), _> = catch(|| panic!("segfault in user method"));
        let err = r.unwrap_err();
        assert_eq!(err.kind, ExceptionKind::Signal);
        assert!(err.message.contains("segfault"));
    }

    #[test]
    fn display_includes_kind_and_message() {
        let e = Exception::type_error("cannot add String and Boolean");
        let s = e.to_string();
        assert!(s.contains("TypeError"));
        assert!(s.contains("cannot add"));
    }
}
