//! Binary (de)serialization of values and type descriptors.
//!
//! This is the stored representation of MOOD objects on ESM pages and of
//! catalog records. The format is self-describing (tag per node), so the
//! kernel's cursor mechanism can reconstruct name/type/value triplets for
//! MoodView without consulting the schema first — exactly the buffer-area
//! protocol Section 9.4 describes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mood_storage::Oid;

use crate::types::{BasicType, TypeDescriptor};
use crate::value::Value;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-value.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Invalid UTF-8 in a string.
    BadUtf8,
    /// A char payload that is not a Unicode scalar value.
    BadChar(u32),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "value bytes truncated"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in stored string"),
            CodecError::BadChar(c) => write!(f, "invalid char scalar {c}"),
        }
    }
}

impl std::error::Error for CodecError {}

const T_INTEGER: u8 = 1;
const T_FLOAT: u8 = 2;
const T_LONG: u8 = 3;
const T_STRING: u8 = 4;
const T_CHAR: u8 = 5;
const T_BOOL: u8 = 6;
const T_TUPLE: u8 = 7;
const T_SET: u8 = 8;
const T_LIST: u8 = 9;
const T_REF: u8 = 10;
const T_NULL: u8 = 11;

const D_BASIC: u8 = 20;
const D_TUPLE: u8 = 21;
const D_SET: u8 = 22;
const D_LIST: u8 = 23;
const D_REFERENCE: u8 = 24;

/// Serialize a value to bytes.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_value(&mut buf, v);
    buf.to_vec()
}

fn write_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn write_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Integer(i) => {
            buf.put_u8(T_INTEGER);
            buf.put_i32_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(T_FLOAT);
            buf.put_f64_le(*x);
        }
        Value::LongInteger(i) => {
            buf.put_u8(T_LONG);
            buf.put_i64_le(*i);
        }
        Value::String(s) => {
            buf.put_u8(T_STRING);
            write_str(buf, s);
        }
        Value::Char(c) => {
            buf.put_u8(T_CHAR);
            buf.put_u32_le(*c as u32);
        }
        Value::Boolean(b) => {
            buf.put_u8(T_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Tuple(fields) => {
            buf.put_u8(T_TUPLE);
            buf.put_u32_le(fields.len() as u32);
            for (n, fv) in fields {
                write_str(buf, n);
                write_value(buf, fv);
            }
        }
        Value::Set(items) => {
            buf.put_u8(T_SET);
            buf.put_u32_le(items.len() as u32);
            for it in items {
                write_value(buf, it);
            }
        }
        Value::List(items) => {
            buf.put_u8(T_LIST);
            buf.put_u32_le(items.len() as u32);
            for it in items {
                write_value(buf, it);
            }
        }
        Value::Ref(oid) => {
            buf.put_u8(T_REF);
            buf.put_slice(&oid.to_bytes());
        }
        Value::Null => buf.put_u8(T_NULL),
    }
}

/// Deserialize a value from bytes (must consume them exactly to round-trip;
/// trailing bytes are tolerated for embedded use).
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    read_value(&mut buf)
}

fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn read_str(buf: &mut Bytes) -> Result<String, CodecError> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
}

fn read_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        T_INTEGER => {
            need(buf, 4)?;
            Value::Integer(buf.get_i32_le())
        }
        T_FLOAT => {
            need(buf, 8)?;
            Value::Float(buf.get_f64_le())
        }
        T_LONG => {
            need(buf, 8)?;
            Value::LongInteger(buf.get_i64_le())
        }
        T_STRING => Value::String(read_str(buf)?),
        T_CHAR => {
            need(buf, 4)?;
            let c = buf.get_u32_le();
            Value::Char(char::from_u32(c).ok_or(CodecError::BadChar(c))?)
        }
        T_BOOL => {
            need(buf, 1)?;
            Value::Boolean(buf.get_u8() != 0)
        }
        T_TUPLE => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = read_str(buf)?;
                let v = read_value(buf)?;
                fields.push((name, v));
            }
            Value::Tuple(fields)
        }
        T_SET | T_LIST => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_value(buf)?);
            }
            if tag == T_SET {
                Value::Set(items)
            } else {
                Value::List(items)
            }
        }
        T_REF => {
            need(buf, Oid::ENCODED_LEN)?;
            let raw = buf.split_to(Oid::ENCODED_LEN);
            Value::Ref(Oid::from_bytes(&raw).ok_or(CodecError::Truncated)?)
        }
        T_NULL => Value::Null,
        t => return Err(CodecError::BadTag(t)),
    })
}

/// Serialize a type descriptor.
pub fn encode_type(t: &TypeDescriptor) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_type(&mut buf, t);
    buf.to_vec()
}

fn write_type(buf: &mut BytesMut, t: &TypeDescriptor) {
    match t {
        TypeDescriptor::Basic(b) => {
            buf.put_u8(D_BASIC);
            buf.put_u8(*b as u8);
        }
        TypeDescriptor::Tuple(fields) => {
            buf.put_u8(D_TUPLE);
            buf.put_u32_le(fields.len() as u32);
            for (n, ft) in fields {
                write_str(buf, n);
                write_type(buf, ft);
            }
        }
        TypeDescriptor::Set(inner) => {
            buf.put_u8(D_SET);
            write_type(buf, inner);
        }
        TypeDescriptor::List(inner) => {
            buf.put_u8(D_LIST);
            write_type(buf, inner);
        }
        TypeDescriptor::Reference(c) => {
            buf.put_u8(D_REFERENCE);
            write_str(buf, c);
        }
    }
}

/// Deserialize a type descriptor.
pub fn decode_type(bytes: &[u8]) -> Result<TypeDescriptor, CodecError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    read_type(&mut buf)
}

fn read_type(buf: &mut Bytes) -> Result<TypeDescriptor, CodecError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        D_BASIC => {
            need(buf, 1)?;
            let b = buf.get_u8();
            let basic = match b {
                0 => BasicType::Integer,
                1 => BasicType::Float,
                2 => BasicType::LongInteger,
                3 => BasicType::String,
                4 => BasicType::Char,
                5 => BasicType::Boolean,
                other => return Err(CodecError::BadTag(other)),
            };
            TypeDescriptor::Basic(basic)
        }
        D_TUPLE => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = read_str(buf)?;
                fields.push((name, read_type(buf)?));
            }
            TypeDescriptor::Tuple(fields)
        }
        D_SET => TypeDescriptor::Set(Box::new(read_type(buf)?)),
        D_LIST => TypeDescriptor::List(Box::new(read_type(buf)?)),
        D_REFERENCE => TypeDescriptor::Reference(read_str(buf)?),
        t => return Err(CodecError::BadTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::{FileId, PageId, SlotId};

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(2), PageId(n), SlotId(3), 7)
    }

    fn roundtrip(v: &Value) {
        let bytes = encode_value(v);
        let back = decode_value(&bytes).unwrap();
        assert_eq!(&back, v, "roundtrip of {v}");
    }

    #[test]
    fn atomic_values_roundtrip() {
        roundtrip(&Value::Integer(-42));
        roundtrip(&Value::Float(0.577_215_664));
        roundtrip(&Value::LongInteger(i64::MIN));
        roundtrip(&Value::String("Ankara Türkiye".into()));
        roundtrip(&Value::Char('ç'));
        roundtrip(&Value::Boolean(true));
        roundtrip(&Value::Null);
        roundtrip(&Value::Ref(oid(5)));
    }

    #[test]
    fn nested_value_roundtrip() {
        let v = Value::tuple(vec![
            ("id", Value::Integer(1)),
            (
                "engines",
                Value::Set(vec![Value::Ref(oid(1)), Value::Ref(oid(2))]),
            ),
            (
                "history",
                Value::List(vec![Value::tuple(vec![("year", Value::Integer(1994))])]),
            ),
            ("note", Value::Null),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn empty_collections_roundtrip() {
        roundtrip(&Value::Set(vec![]));
        roundtrip(&Value::List(vec![]));
        roundtrip(&Value::Tuple(vec![]));
    }

    #[test]
    fn truncated_bytes_error() {
        let bytes = encode_value(&Value::String("hello".into()));
        assert_eq!(decode_value(&bytes[..3]), Err(CodecError::Truncated));
        assert_eq!(decode_value(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tag_error() {
        assert_eq!(decode_value(&[200]), Err(CodecError::BadTag(200)));
    }

    #[test]
    fn type_descriptors_roundtrip() {
        let t = TypeDescriptor::tuple(vec![
            ("name", TypeDescriptor::string()),
            (
                "engines",
                TypeDescriptor::set_of(TypeDescriptor::reference("VehicleEngine")),
            ),
            ("scores", TypeDescriptor::list_of(TypeDescriptor::float())),
            ("flag", TypeDescriptor::boolean()),
        ]);
        let bytes = encode_type(&t);
        assert_eq!(decode_type(&bytes).unwrap(), t);
    }

    #[test]
    fn all_basic_types_roundtrip() {
        for b in BasicType::ALL {
            let t = TypeDescriptor::Basic(b);
            assert_eq!(decode_type(&encode_type(&t)).unwrap(), t);
        }
    }

    #[test]
    fn float_nan_payload_survives() {
        let bytes = encode_value(&Value::Float(f64::NAN));
        match decode_value(&bytes).unwrap() {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }
}
