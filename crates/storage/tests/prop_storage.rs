//! Property-based tests for the storage substrate: each structure is
//! checked against an in-memory model under randomized operation sequences.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use mood_storage::{BTree, BufferPool, DiskMetrics, HeapFile, MemDisk, Oid};

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemDisk::new()),
        frames,
        DiskMetrics::new(),
    ))
}

// ---------------------------------------------------------------------
// B+-tree vs BTreeMap
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u8),
    Delete(u16),
    Lookup(u16),
    Range(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Delete),
        any::<u16>().prop_map(TreeOp::Lookup),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

fn oid_for(k: u16, v: u8) -> Oid {
    Oid::new(
        mood_storage::FileId(1),
        mood_storage::PageId(k as u32),
        mood_storage::SlotId(v as u16),
        1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(tree_op(), 1..250)) {
        let tree = BTree::create(pool(64), false).unwrap();
        let mut model: BTreeMap<u16, u8> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    // Model one value per key: delete any existing entry
                    // first so tree and model stay aligned.
                    if let Some(old) = model.insert(k, v) {
                        tree.delete(&k.to_be_bytes(), oid_for(k, old)).unwrap();
                    }
                    tree.insert(&k.to_be_bytes(), oid_for(k, v)).unwrap();
                }
                TreeOp::Delete(k) => {
                    if let Some(old) = model.remove(&k) {
                        prop_assert!(tree.delete(&k.to_be_bytes(), oid_for(k, old)).unwrap());
                    } else {
                        // Deleting an arbitrary (k, oid) pair that was never
                        // inserted must be a no-op.
                        prop_assert!(!tree.delete(&k.to_be_bytes(), oid_for(k, 0)).unwrap()
                            || model.contains_key(&k));
                    }
                }
                TreeOp::Lookup(k) => {
                    let got = tree.lookup(&k.to_be_bytes()).unwrap();
                    match model.get(&k) {
                        Some(&v) => prop_assert_eq!(got, vec![oid_for(k, v)]),
                        None => prop_assert!(got.is_empty()),
                    }
                }
                TreeOp::Range(lo, hi) => {
                    let mut got = Vec::new();
                    tree.range_scan(
                        Some(&lo.to_be_bytes()),
                        true,
                        Some(&hi.to_be_bytes()),
                        true,
                        |k, _| {
                            got.push(u16::from_be_bytes(k.try_into().unwrap()));
                            true
                        },
                    )
                    .unwrap();
                    let want: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len().unwrap(), model.len() as u64);
        }
        // Full scan is sorted and complete.
        let mut scanned = Vec::new();
        tree.range_scan(None, true, None, true, |k, _| {
            scanned.push(u16::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        let want: Vec<u16> = model.keys().copied().collect();
        prop_assert_eq!(scanned, want);
    }
}

// ---------------------------------------------------------------------
// Heap file vs HashMap (with tiny buffer pool to force eviction)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
    Get(usize),
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    let payload = proptest::collection::vec(any::<u8>(), 0..900);
    prop_oneof![
        payload.clone().prop_map(HeapOp::Insert),
        (any::<usize>(), payload).prop_map(|(i, p)| HeapOp::Update(i, p)),
        any::<usize>().prop_map(HeapOp::Delete),
        any::<usize>().prop_map(HeapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn heap_matches_model_under_eviction(ops in proptest::collection::vec(heap_op(), 1..150)) {
        let heap = HeapFile::create(pool(3)).unwrap();
        let mut live: Vec<(Oid, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Insert(p) => {
                    let oid = heap.insert(&p).unwrap();
                    live.push((oid, p));
                }
                HeapOp::Update(i, p) if !live.is_empty() => {
                    let i = i % live.len();
                    heap.update(live[i].0, &p).unwrap();
                    live[i].1 = p;
                }
                HeapOp::Delete(i) if !live.is_empty() => {
                    let i = i % live.len();
                    let (oid, _) = live.remove(i);
                    heap.delete(oid).unwrap();
                    prop_assert!(heap.get(oid).is_err(), "deleted OID dangles");
                }
                HeapOp::Get(i) if !live.is_empty() => {
                    let i = i % live.len();
                    prop_assert_eq!(&heap.get(live[i].0).unwrap(), &live[i].1);
                }
                _ => {}
            }
        }
        // Scan agreement: every live record exactly once under its OID.
        let mut scanned: Vec<(Oid, Vec<u8>)> = heap.scan().unwrap();
        scanned.sort_by_key(|(o, _)| *o);
        let mut want = live.clone();
        want.sort_by_key(|(o, _)| *o);
        prop_assert_eq!(scanned, want);
        prop_assert_eq!(heap.count().unwrap(), live.len() as u64);
    }
}

// ---------------------------------------------------------------------
// WAL: any prefix of committed transactions recovers consistently
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn wal_recovery_replays_exactly_committed(
        txns in proptest::collection::vec(
            (proptest::collection::vec((0u32..4, any::<u8>()), 1..5), any::<bool>()),
            1..10,
        )
    ) {
        use mood_storage::{MemLog, Page, PageId, Wal, Disk};
        let disk = MemDisk::new();
        let wal = Wal::new(Box::new(MemLog::new()));
        let f = disk.create_file().unwrap();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        // Model: last committed write per page.
        let mut expect: BTreeMap<u32, u8> = BTreeMap::new();
        for (writes, commit) in &txns {
            let t = wal.begin();
            for (page, byte) in writes {
                let mut p = Page::new();
                p.data[0] = *byte;
                wal.log_page_write(t, f, PageId(*page), &p).unwrap();
            }
            if *commit {
                wal.commit(t).unwrap();
                for (page, byte) in writes {
                    expect.insert(*page, *byte);
                }
            } else {
                wal.abort(t).unwrap();
            }
        }
        wal.recover(&disk).unwrap();
        for (page, byte) in expect {
            let mut p = Page::new();
            disk.read_page(f, PageId(page), &mut p).unwrap();
            prop_assert_eq!(p.data[0], byte, "page {} after recovery", page);
        }
    }
}
