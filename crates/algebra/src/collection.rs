//! The collection model of the MOOD algebra and the return-type rules of
//! Tables 1–7, encoded as pure functions so they are testable and printable
//! (the `reproduce` harness regenerates the tables by evaluating these).
//!
//! Objects are accessed through four kinds of collections (Section 3.2):
//! object identifiers in a *set*, object identifiers in a *list*, objects in
//! *extents*, and *named objects*.

use std::fmt;

use mood_datamodel::Value;
use mood_storage::Oid;

/// One element of an extent: a (possibly transient) object. Stored objects
/// carry their OID; transient tuples produced by `Project`/`Unnest` do not.
#[derive(Debug, Clone, PartialEq)]
pub struct Obj {
    pub oid: Option<Oid>,
    pub value: Value,
}

impl Obj {
    pub fn stored(oid: Oid, value: Value) -> Obj {
        Obj {
            oid: Some(oid),
            value,
        }
    }

    pub fn transient(value: Value) -> Obj {
        Obj { oid: None, value }
    }
}

/// A collection in the algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum Collection {
    /// An extent: the objects themselves (materialized with values).
    Extent(Vec<Obj>),
    /// A set of object identifiers (order-insensitive, duplicates removed
    /// by construction through [`Collection::set_from`]).
    Set(Vec<Oid>),
    /// A list of object identifiers (ordered, duplicates allowed).
    List(Vec<Oid>),
    /// A named object.
    NamedObject(Obj),
    /// The empty result of filtering away a named object (the tables leave
    /// this case implicit; we make it explicit and typed).
    Empty,
}

/// The *kind* of a collection — the row/column labels of Tables 1–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    Extent,
    Set,
    List,
    NamedObject,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Extent => "Extent",
            Kind::Set => "Set",
            Kind::List => "List",
            Kind::NamedObject => "Named Obj.",
        })
    }
}

impl Collection {
    pub fn kind(&self) -> Option<Kind> {
        Some(match self {
            Collection::Extent(_) => Kind::Extent,
            Collection::Set(_) => Kind::Set,
            Collection::List(_) => Kind::List,
            Collection::NamedObject(_) => Kind::NamedObject,
            Collection::Empty => return None,
        })
    }

    /// Build a set, deduplicating OIDs.
    pub fn set_from(mut oids: Vec<Oid>) -> Collection {
        oids.sort();
        oids.dedup();
        Collection::Set(oids)
    }

    pub fn len(&self) -> usize {
        match self {
            Collection::Extent(v) => v.len(),
            Collection::Set(v) | Collection::List(v) => v.len(),
            Collection::NamedObject(_) => 1,
            Collection::Empty => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The OIDs of the collection's elements (transient extent members have
    /// none and are skipped).
    pub fn oids(&self) -> Vec<Oid> {
        match self {
            Collection::Extent(v) => v.iter().filter_map(|o| o.oid).collect(),
            Collection::Set(v) | Collection::List(v) => v.clone(),
            Collection::NamedObject(o) => o.oid.into_iter().collect(),
            Collection::Empty => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Return-type rules (Tables 1–7) as pure functions.
// ---------------------------------------------------------------------

/// Table 1 — return type of `Select(arg, P)`. The Extent row reads
/// "Extent or Set"; the implementation materializes an Extent (the objects
/// were already in hand to evaluate P).
pub fn select_return(arg: Kind) -> Kind {
    arg
}

/// Table 2 — return type of `Join(arg1, arg2, …)`.
pub fn join_return(arg1: Kind, arg2: Kind) -> Kind {
    use Kind::*;
    match (arg1, arg2) {
        (Extent, _) | (_, Extent) => Extent,
        (Set, _) | (_, Set) => Set,
        (List, _) | (_, List) => List,
        (NamedObject, NamedObject) => NamedObject,
    }
}

/// Table 3 — `DupElim` applicability and result description.
pub fn dupelim_return(arg: Kind) -> Option<&'static str> {
    match arg {
        Kind::Set => None, // "not applicable": a set has no duplicates
        Kind::List => Some("list of ordered distinct object identifiers"),
        Kind::Extent => Some("Extent of the distinct object according to the deep equality check"),
        Kind::NamedObject => None,
    }
}

/// Table 4 — return type of `Union`/`Intersection`/`Difference`.
/// Arguments are sets or lists; list ∪ list keeps list-ness (for `Union`,
/// "if both arguments are lists, union corresponds to array concatenation").
pub fn setop_return(arg1: Kind, arg2: Kind) -> Option<Kind> {
    use Kind::*;
    match (arg1, arg2) {
        (Set, Set) | (Set, List) | (List, Set) => Some(Set),
        (List, List) => Some(List),
        _ => None,
    }
}

/// Table 5 — what the elements of `asSet(arg)` / `asList(arg)` are.
pub fn as_set_list_elements(arg: Kind) -> &'static str {
    match arg {
        Kind::Extent => "Object identifiers of the objects in the extent arg",
        Kind::Set => "Object identifiers of the set arg",
        Kind::List => "Object identifiers of the list arg",
        Kind::NamedObject => "Object identifiers of the named object",
    }
}

/// Table 6 — return of `asExtent(arg)` (sets and lists only).
pub fn as_extent_return(arg: Kind) -> Option<&'static str> {
    match arg {
        Kind::Set | Kind::List => {
            Some("extent of dereferenced objects of the elements of the collection")
        }
        _ => None,
    }
}

/// Table 7 — argument kinds `Unnest` accepts (all return an Extent).
pub fn unnest_accepts(arg: Kind) -> bool {
    matches!(
        arg,
        Kind::Extent | Kind::Set | Kind::List | Kind::NamedObject
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::{FileId, PageId, SlotId};

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(1), PageId(n), SlotId(0), 1)
    }

    #[test]
    fn table1_select_return_types() {
        assert_eq!(select_return(Kind::Extent), Kind::Extent);
        assert_eq!(select_return(Kind::Set), Kind::Set);
        assert_eq!(select_return(Kind::List), Kind::List);
        assert_eq!(select_return(Kind::NamedObject), Kind::NamedObject);
    }

    #[test]
    fn table2_join_return_types() {
        use Kind::*;
        // The full 4×4 grid of Table 2.
        let expect = [
            ((Extent, Extent), Extent),
            ((Extent, Set), Extent),
            ((Extent, List), Extent),
            ((Extent, NamedObject), Extent),
            ((Set, Extent), Extent),
            ((Set, Set), Set),
            ((Set, List), Set),
            ((Set, NamedObject), Set),
            ((List, Extent), Extent),
            ((List, Set), Set),
            ((List, List), List),
            ((List, NamedObject), List),
            ((NamedObject, Extent), Extent),
            ((NamedObject, Set), Set),
            ((NamedObject, List), List),
            ((NamedObject, NamedObject), NamedObject),
        ];
        for ((a, b), want) in expect {
            assert_eq!(join_return(a, b), want, "Join({a}, {b})");
        }
    }

    #[test]
    fn table3_dupelim() {
        assert_eq!(dupelim_return(Kind::Set), None);
        assert!(dupelim_return(Kind::List)
            .unwrap()
            .contains("ordered distinct"));
        assert!(dupelim_return(Kind::Extent)
            .unwrap()
            .contains("deep equality"));
    }

    #[test]
    fn table4_setops() {
        assert_eq!(setop_return(Kind::Set, Kind::Set), Some(Kind::Set));
        assert_eq!(setop_return(Kind::Set, Kind::List), Some(Kind::Set));
        assert_eq!(setop_return(Kind::List, Kind::Set), Some(Kind::Set));
        assert_eq!(setop_return(Kind::List, Kind::List), Some(Kind::List));
        assert_eq!(setop_return(Kind::Extent, Kind::Set), None);
    }

    #[test]
    fn table6_as_extent() {
        assert!(as_extent_return(Kind::Set).is_some());
        assert!(as_extent_return(Kind::List).is_some());
        assert!(as_extent_return(Kind::Extent).is_none());
        assert!(as_extent_return(Kind::NamedObject).is_none());
    }

    #[test]
    fn set_from_dedups() {
        let c = Collection::set_from(vec![oid(2), oid(1), oid(2), oid(1)]);
        assert_eq!(c, Collection::Set(vec![oid(1), oid(2)]));
    }

    #[test]
    fn lengths_and_oids() {
        let e = Collection::Extent(vec![
            Obj::stored(oid(1), Value::Integer(1)),
            Obj::transient(Value::Integer(2)),
        ]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.oids(), vec![oid(1)], "transient members have no OID");
        assert_eq!(Collection::Empty.len(), 0);
        assert!(Collection::Empty.is_empty());
        assert_eq!(
            Collection::NamedObject(Obj::stored(oid(3), Value::Null)).oids(),
            vec![oid(3)]
        );
    }

    #[test]
    fn kind_of_each_variant() {
        assert_eq!(Collection::Extent(vec![]).kind(), Some(Kind::Extent));
        assert_eq!(Collection::Set(vec![]).kind(), Some(Kind::Set));
        assert_eq!(Collection::List(vec![]).kind(), Some(Kind::List));
        assert_eq!(Collection::Empty.kind(), None);
    }
}
