//! Selectivity estimation — Section 4.1.
//!
//! Atomic selectivities assume uniformly distributed values (the paper's
//! stated assumption); path-expression selectivity composes the per-hop
//! `fan/totref/totlinks` statistics through `c(n,m,r)` (forward reference
//! count) and `o(t,x,y)` (overlap probability).

use crate::approx::{c_approx, o_overlap};

/// Comparison operators of a simple predicate ⟨P₁, θ, oprnd⟩.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Theta {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Theta {
    pub fn parse(s: &str) -> Option<Theta> {
        Some(match s {
            "=" | "==" => Theta::Eq,
            "<>" | "!=" => Theta::Ne,
            "<" => Theta::Lt,
            "<=" => Theta::Le,
            ">" => Theta::Gt,
            ">=" => Theta::Ge,
            _ => return None,
        })
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            Theta::Eq => "=",
            Theta::Ne => "<>",
            Theta::Lt => "<",
            Theta::Le => "<=",
            Theta::Gt => ">",
            Theta::Ge => ">=",
        }
    }
}

/// Domain statistics of an atomic attribute (from Table 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// `dist(A,C)`.
    pub dist: f64,
    /// `max(A,C)` (numeric domains).
    pub max: Option<f64>,
    /// `min(A,C)`.
    pub min: Option<f64>,
}

/// Selectivity of `s.A θ constant` under the uniform assumption:
///
/// * `=`  → `1/dist`
/// * `>`  → `(max − c)/(max − min)` (`<`, `<=`, `>=` analogous)
/// * `<>` → `1 − 1/dist`
///
/// Non-numeric domains fall back to `1/dist` for equality and ½ for
/// inequalities (no order statistics available).
pub fn atomic_selectivity(theta: Theta, constant: Option<f64>, dom: &Domain) -> f64 {
    let eq = if dom.dist > 0.0 { 1.0 / dom.dist } else { 1.0 };
    let range = match (dom.min, dom.max, constant) {
        (Some(min), Some(max), Some(c)) if max > min => Some(((max - min), (c - min), (max - c))),
        _ => None,
    };
    let sel = match theta {
        Theta::Eq => eq,
        Theta::Ne => 1.0 - eq,
        Theta::Gt | Theta::Ge => match range {
            Some((width, _, above)) => above / width,
            None => 0.5,
        },
        Theta::Lt | Theta::Le => match range {
            Some((width, below, _)) => below / width,
            None => 0.5,
        },
    };
    sel.clamp(0.0, 1.0)
}

/// Selectivity of `s.A BETWEEN c1 AND c2` → `(c2 − c1)/(max − min)`.
pub fn between_selectivity(c1: f64, c2: f64, dom: &Domain) -> f64 {
    match (dom.min, dom.max) {
        (Some(min), Some(max)) if max > min => ((c2 - c1) / (max - min)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

/// One hop of a path expression: attribute `A_i` of class `C_i` referencing
/// class `C_{i+1}` (shorthand parameters of Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathHop {
    /// `fan_i = fan(A_i, C_i, C_{i+1})`.
    pub fan: f64,
    /// `totref_i = totref(A_i, C_i, C_{i+1})`.
    pub totref: f64,
    /// `totlinks_i = totlinks(A_i, C_i, C_{i+1})`.
    pub totlinks: f64,
}

/// `fref(p.A_1…A_i, k)` — expected number of distinct `C_{i+1}` objects
/// reached by forward-traversing the hops starting from `k` objects of
/// `C_1`:
///
/// ```text
/// fref(ε, k)        = k
/// fref(p.A_1…A_i,k) = c(totlinks_i, totref_i, fref(p.A_1…A_{i−1},k)·fan_i)
/// ```
pub fn fref(hops: &[PathHop], k: f64) -> f64 {
    let mut reached = k;
    for hop in hops {
        reached = c_approx(hop.totlinks, hop.totref, reached * hop.fan);
    }
    reached
}

/// Inputs for the selectivity of a full path-expression predicate
/// `p.A_1.A_2…A_m θ c` (A_m atomic).
#[derive(Debug, Clone, PartialEq)]
pub struct PathPredicate {
    /// The reference hops `A_1 … A_{m−1}` in order.
    pub hops: Vec<PathHop>,
    /// `|C_m|` — cardinality of the terminal class.
    pub terminal_cardinality: f64,
    /// `f_s(A_m θ c)` — atomic selectivity of the terminal predicate.
    pub terminal_selectivity: f64,
    /// `hitprb(A_{m−1}, C_{m−1}, C_m)`.
    pub hitprb_last: f64,
}

/// The paper's path selectivity:
///
/// ```text
/// f_s = o( totref_{m−1},
///          fref(p.A_1…A_{m−1}, 1),
///          k_m · hitprb(A_{m−1}, C_{m−1}, C_m) )
/// with k_m = |C_m| · f_s(A_m)
/// ```
pub fn path_selectivity(p: &PathPredicate) -> f64 {
    let Some(last) = p.hops.last() else {
        // Degenerate path (no reference hops): plain atomic predicate.
        return p.terminal_selectivity;
    };
    let x = fref(&p.hops, 1.0);
    let k_m = p.terminal_cardinality * p.terminal_selectivity;
    o_overlap(last.totref, x, k_m * p.hitprb_last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_selectivity_is_one_over_dist() {
        let dom = Domain {
            dist: 16.0,
            max: Some(32.0),
            min: Some(2.0),
        };
        assert_eq!(atomic_selectivity(Theta::Eq, Some(2.0), &dom), 1.0 / 16.0);
        assert_eq!(atomic_selectivity(Theta::Ne, Some(2.0), &dom), 15.0 / 16.0);
    }

    #[test]
    fn range_selectivities_follow_the_formulas() {
        let dom = Domain {
            dist: 100.0,
            max: Some(100.0),
            min: Some(0.0),
        };
        // s.A > 75 → (100-75)/100.
        assert_eq!(atomic_selectivity(Theta::Gt, Some(75.0), &dom), 0.25);
        // s.A < 25 → (25-0)/100.
        assert_eq!(atomic_selectivity(Theta::Lt, Some(25.0), &dom), 0.25);
        // BETWEEN 10 and 60 → 50/100.
        assert_eq!(between_selectivity(10.0, 60.0, &dom), 0.5);
    }

    #[test]
    fn selectivities_clamp_to_unit_interval() {
        let dom = Domain {
            dist: 10.0,
            max: Some(10.0),
            min: Some(0.0),
        };
        assert_eq!(atomic_selectivity(Theta::Gt, Some(-5.0), &dom), 1.0);
        assert_eq!(atomic_selectivity(Theta::Gt, Some(50.0), &dom), 0.0);
        assert_eq!(between_selectivity(-10.0, 100.0, &dom), 1.0);
    }

    #[test]
    fn non_numeric_domains_fall_back() {
        let dom = Domain {
            dist: 200_000.0,
            max: None,
            min: None,
        };
        assert_eq!(atomic_selectivity(Theta::Eq, None, &dom), 1.0 / 200_000.0);
        assert_eq!(atomic_selectivity(Theta::Gt, None, &dom), 0.5);
    }

    #[test]
    fn theta_parse_roundtrip() {
        for s in ["=", "<>", "<", "<=", ">", ">="] {
            assert_eq!(Theta::parse(s).unwrap().symbol(), s);
        }
        assert_eq!(Theta::parse("=="), Some(Theta::Eq));
        assert_eq!(Theta::parse("~"), None);
    }

    fn drivetrain_hop() -> PathHop {
        PathHop {
            fan: 1.0,
            totref: 10_000.0,
            totlinks: 20_000.0,
        }
    }

    fn engine_hop() -> PathHop {
        PathHop {
            fan: 1.0,
            totref: 10_000.0,
            totlinks: 10_000.0,
        }
    }

    fn company_hop() -> PathHop {
        PathHop {
            fan: 1.0,
            totref: 20_000.0,
            totlinks: 20_000.0,
        }
    }

    #[test]
    fn fref_base_case_is_k() {
        assert_eq!(fref(&[], 17.0), 17.0);
    }

    #[test]
    fn fref_single_object_stays_single() {
        // Starting from one Vehicle, fan-1 hops reach one object each.
        assert_eq!(fref(&[drivetrain_hop(), engine_hop()], 1.0), 1.0);
        assert_eq!(fref(&[company_hop()], 1.0), 1.0);
    }

    #[test]
    fn fref_saturates_at_totref() {
        // From all 20000 Vehicles, drivetrain reaches r=20000 ≥ 2m=20000 →
        // m = totref = 10000 drivetrains.
        assert_eq!(fref(&[drivetrain_hop()], 20_000.0), 10_000.0);
        // Then all 10000 engines: second hop r=10000, m=10000 → (r+m)/3.
        let v = fref(&[drivetrain_hop(), engine_hop()], 20_000.0);
        assert!((v - 20_000.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_p1_selectivity_is_6_25e_2() {
        // P1: v.drivetrain.engine.cylinders = 2 over Tables 13–15.
        // k_m = 10000/16 = 625, hitprb(engine)=1, fref=1, totref=10000.
        let p = PathPredicate {
            hops: vec![drivetrain_hop(), engine_hop()],
            terminal_cardinality: 10_000.0,
            terminal_selectivity: 1.0 / 16.0,
            hitprb_last: 1.0,
        };
        let s = path_selectivity(&p);
        assert!((s - 6.25e-2).abs() < 2e-3, "Table 16 P1: got {s}");
    }

    #[test]
    fn paper_p2_selectivity_formula_vs_printed_value() {
        // P2: v.company.name = 'BMW'. k_m = 200000/200000 = 1,
        // hitprb(manufacturer) = 0.1, totref = 20000, fref = 1.
        //
        // The formula as printed gives o(20000, 1, 0.1) = 5.0e-6; the
        // paper's Table 16 prints 5.00e-5 — exactly the value *without* the
        // hitprb factor (o(20000,1,1) = 1/20000). We reproduce the formula
        // and flag the factor-of-hitprb discrepancy in EXPERIMENTS.md; the
        // ordering decision is identical under both.
        let p = PathPredicate {
            hops: vec![company_hop()],
            terminal_cardinality: 200_000.0,
            terminal_selectivity: 1.0 / 200_000.0,
            hitprb_last: 0.1,
        };
        let s = path_selectivity(&p);
        assert!((s - 5.0e-6).abs() < 1e-7, "formula value: got {s}");
        // The printed-variant check: drop hitprb.
        let printed = PathPredicate {
            hitprb_last: 1.0,
            ..p
        };
        let s2 = path_selectivity(&printed);
        assert!(
            (s2 - 5.0e-5).abs() < 1e-6,
            "Table 16 printed value: got {s2}"
        );
    }

    #[test]
    fn empty_path_is_plain_atomic() {
        let p = PathPredicate {
            hops: vec![],
            terminal_cardinality: 100.0,
            terminal_selectivity: 0.25,
            hitprb_last: 1.0,
        };
        assert_eq!(path_selectivity(&p), 0.25);
    }

    #[test]
    fn longer_paths_with_high_fan_reach_more() {
        let wide = PathHop {
            fan: 5.0,
            totref: 100_000.0,
            totlinks: 500_000.0,
        };
        assert!(fref(&[wide], 100.0) > fref(&[drivetrain_hop()], 100.0));
    }
}
