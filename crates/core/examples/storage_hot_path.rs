//! Drives the sharded-pool storage hot path through the public `Mood` API:
//! a big sequential extent sweep (readahead-batched), then point queries,
//! then `SHOW METRICS` with the pool contention counter.
//!
//! ```sh
//! cargo run -q --release -p mood-core --example storage_hot_path
//! ```

use mood_core::{Answer, Mood};

fn main() {
    // 64 frames -> 4 shards of 16, readahead window 8 — and a working set
    // several times larger, so the sweep really reads from disk.
    let db = Mood::in_memory_with_pool(64);
    db.execute("CREATE CLASS Part TUPLE (id Integer, weight Integer, name String)")
        .unwrap();
    let pad = "x".repeat(200);
    for i in 0..4000 {
        db.execute(&format!(
            "new Part <{i}, {}, 'part-{i:05}-{pad}'>",
            (i * 37) % 500
        ))
        .unwrap();
    }
    db.collect_stats().unwrap();

    // Full-extent sweep: sequential access with readahead batching.
    let before = db.metrics().snapshot();
    db.set_parallelism(4);
    let Answer::Rows(r) = db.execute("SELECT p.id FROM Part p WHERE p.weight > 50").unwrap() else {
        panic!("expected rows")
    };
    let sweep = db.metrics().snapshot().delta(&before);
    println!(
        "sweep: {} rows, seq_pages={} in {} batches, rnd_pages={}",
        r.len(),
        sweep.seq_pages,
        sweep.seq_batches,
        sweep.rnd_pages
    );
    assert!(r.len() > 3000, "predicate keeps most parts");
    assert!(sweep.seq_pages > 0, "extent sweep must read sequentially");
    assert!(
        sweep.seq_batches < sweep.seq_pages,
        "readahead must coalesce page reads into fewer batches \
         ({} batches for {} pages)",
        sweep.seq_batches,
        sweep.seq_pages
    );

    // Point query after the sweep still resolves from the buffer.
    let before = db.metrics().snapshot();
    let Answer::Rows(r) = db.execute("SELECT p.name FROM Part p WHERE p.id = 1234").unwrap() else {
        panic!("expected rows")
    };
    assert_eq!(r.len(), 1);
    let point = db.metrics().snapshot().delta(&before);
    println!(
        "point query: buffer hits={} misses={}",
        point.buffer_hits, point.buffer_misses
    );

    let Answer::Rows(m) = db.execute("SHOW METRICS").unwrap() else {
        panic!("SHOW METRICS must return rows")
    };
    let mut found_wait = false;
    for row in &m.rows {
        let k = row[0].to_string();
        if k.contains("buffer.") || k.contains("disk.seq") {
            println!("{k} = {}", row[1]);
        }
        found_wait |= k.contains("buffer.wait_ns");
    }
    assert!(found_wait, "buffer.wait_ns must be in SHOW METRICS");
    println!("ok");
}
