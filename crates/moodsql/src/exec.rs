//! Plan execution.
//!
//! The executor follows the optimizer's access plan (so join methods and
//! path orders actually determine the I/O pattern — what the benches
//! measure against the §6 cost model), evaluates predicates with run-time
//! type checking through `OperandDataType`, and applies the clause order of
//! Figure 7.1 (FROM → WHERE → GROUP BY/HAVING → projection → ORDER BY) with
//! the operator order of Figure 7.2 inside WHERE (SELECT → JOIN → PROJECT →
//! UNION). An execution trace records the stages for the conformance tests.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use mood_catalog::Catalog;
use mood_cost::JoinMethod;
use mood_datamodel::{encode_value, Value};
use mood_funcman::{FunctionManager, OperandDataType, Registers};
use mood_optimizer::{estimate_plan_set, optimize, NodeEstimate, OptimizerConfig, Plan, PlanSet};
use mood_storage::exec::run_chunked;
use mood_storage::{AccessHint, Oid};
use mood_trace::Tracer;

use crate::analyze::{
    op_kind, record_operator_totals, render_estimates, staged, AnalyzeRec, AnalyzeReport, StageRec,
    TermReport,
};
use crate::ast::{AggFunc, Expr, Lit, PathRef, SelectStmt};
use crate::binder::{lower, Lowered};
use crate::compiled::{compile_pred, compile_proj, PreparedPred, RowProg};
use crate::error::{Result, SqlError};
use crate::parser::parse_expr;

/// One variable binding set: range variable → bound object.
pub type Row = BTreeMap<String, BoundObj>;

/// A bound object (stored or transient).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundObj {
    pub oid: Option<Oid>,
    pub value: Value,
}

/// A query result: column labels plus value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Single-column convenience accessor.
    pub fn column(&self, idx: usize) -> Vec<&Value> {
        self.rows.iter().map(|r| &r[idx]).collect()
    }
}

/// A SELECT prepared once — bound, optimized, estimated, its predicates
/// parsed and (where possible) compiled to register programs — and
/// re-executable any number of times. The session's plan cache stores
/// these keyed by normalized SQL text; `epoch` is the catalog epoch the
/// plan was built under, so any DDL or statistics refresh invalidates it.
pub struct PreparedQuery {
    stmt: SelectStmt,
    lowered: Lowered,
    terms: Vec<(PlanSet, Vec<NodeEstimate>)>,
    /// Catalog epoch at preparation; a mismatch means the plan is stale.
    pub epoch: u64,
    /// Plan predicate text → pre-parsed (and maybe compiled) form.
    preds: HashMap<String, PreparedPred>,
    /// Compiled projection columns (ungrouped queries), index-aligned
    /// with the statement's projection list; `None` falls back per column.
    proj: Vec<Option<RowProg>>,
    /// Wall time spent preparing (EXPLAIN ANALYZE's compile/execute split).
    pub compile_nanos: u64,
}

/// Collect the predicate texts of every Select/IndSel node in a plan.
fn plan_predicates<'p>(plan: &'p Plan, out: &mut Vec<&'p str>) {
    match plan {
        Plan::Select { input, predicate } => {
            out.push(predicate);
            plan_predicates(input, out);
        }
        Plan::IndSel { predicate, .. } => out.push(predicate),
        Plan::Join { left, right, .. } => {
            plan_predicates(left, out);
            plan_predicates(right, out);
        }
        Plan::Union { inputs } => {
            for p in inputs {
                plan_predicates(p, out);
            }
        }
        Plan::Project { input, .. } | Plan::Sort { input, .. } | Plan::Partition { input, .. } => {
            plan_predicates(input, out)
        }
        Plan::Bind { .. } | Plan::Temp { .. } => {}
    }
}

/// The executor.
///
/// The trace lives behind a `Mutex` (not a `RefCell`) so `&Executor` is
/// `Sync` — parallel operator chunks evaluate predicates through a shared
/// executor reference on worker threads.
pub struct Executor<'a> {
    pub catalog: &'a Catalog,
    pub funcman: &'a FunctionManager,
    pub config: OptimizerConfig,
    trace: std::sync::Mutex<Vec<String>>,
    tracer: Tracer,
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog, funcman: &'a FunctionManager) -> Executor<'a> {
        Executor {
            catalog,
            funcman,
            config: OptimizerConfig::default(),
            trace: std::sync::Mutex::new(Vec::new()),
            tracer: Tracer::new(),
        }
    }

    pub fn with_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Share a tracer: lifecycle and per-operator spans go to its
    /// subscribers.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The stage trace of the last query (Figure 7.1/7.2 conformance).
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().expect("trace lock").clone()
    }

    fn mark(&self, stage: impl Into<String>) {
        self.trace.lock().expect("trace lock").push(stage.into());
    }

    /// Filter rows by a predicate, in parallel when the execution config
    /// asks for it. Chunks are concatenated in input order, so survivors
    /// appear exactly as the sequential loop would emit them; the error
    /// from the earliest failing row wins either way.
    ///
    /// With a compiled form the register program evaluates each row
    /// (scratch registers are reused per worker, not per row); semantics
    /// are identical to the interpreter by construction.
    fn filter_rows(
        &self,
        rows: Vec<Row>,
        expr: &Expr,
        compiled: Option<&crate::compiled::RowPred>,
    ) -> Result<Vec<Row>> {
        let par = self.config.execution.parallelism;
        if par <= 1 {
            let mut kept = Vec::new();
            if let Some(pred) = compiled {
                let mut regs = Registers::default();
                for row in rows {
                    if pred.matches(self.catalog, &row, &mut regs)? {
                        kept.push(row);
                    }
                }
            } else {
                for row in rows {
                    if self.eval_pred(expr, &row)? {
                        kept.push(row);
                    }
                }
            }
            return Ok(kept);
        }
        run_chunked(par, &rows, |_, chunk| {
            let mut kept = Vec::new();
            if let Some(pred) = compiled {
                let mut regs = Registers::default();
                for row in chunk {
                    if pred.matches(self.catalog, row, &mut regs)? {
                        kept.push(row.clone());
                    }
                }
            } else {
                for row in chunk {
                    if self.eval_pred(expr, row)? {
                        kept.push(row.clone());
                    }
                }
            }
            Ok::<_, SqlError>(kept)
        })
    }

    /// Optimize only: the plan text (the `EXPLAIN` statement), with the
    /// cost model's per-node estimates in a comment block.
    pub fn explain(&self, stmt: &SelectStmt) -> Result<String> {
        let lowered = lower(self.catalog, stmt)?;
        let stats = self.catalog.stats();
        let optimized = optimize(&lowered.spec, &stats, &self.config);
        let mut out = String::new();
        for term in &optimized.terms {
            if !term.path_sel_info.is_empty() {
                out.push_str("-- PathSelInfo (predicate, selectivity, F, F/(1-s)):\n");
                for row in &term.path_sel_info {
                    out.push_str(&format!(
                        "--   {} | {:.3e} | {:.3} | {:.3}\n",
                        row.predicate, row.selectivity, row.forward_cost, row.rank
                    ));
                }
            }
            let est = estimate_plan_set(&term.plan, &stats, &self.config);
            out.push_str(&render_estimates(&term.plan, &est));
            out.push_str(&term.plan.to_string());
            out.push('\n');
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // SELECT execution
    // ------------------------------------------------------------------

    pub fn run_select(&self, stmt: &SelectStmt) -> Result<QueryResult> {
        self.trace.lock().expect("trace lock").clear();
        let metrics = self.catalog.storage().metrics().clone();
        let lowered = {
            let _span = self.tracer.span("bind", &metrics);
            lower(self.catalog, stmt)?
        };
        let mut exec_span = self.tracer.span("execute", &metrics);
        self.mark("FROM");
        let rows = if lowered.unabsorbed.is_empty() {
            self.run_optimized(stmt, &lowered)?
        } else {
            self.run_nested_loop(stmt, &lowered)?
        };
        let result = self.finish_select(stmt, rows, None, None)?;
        exec_span.set_rows(result.len() as u64);
        Ok(result)
    }

    /// Execute with full instrumentation: the `EXPLAIN ANALYZE` statement.
    ///
    /// Every plan node runs inside a recording window (rows, inclusive
    /// counter delta, wall time), every coordinator stage inside a stage
    /// window, so the report's exclusive deltas plus stage deltas sum
    /// exactly to the statement's total counter delta.
    pub fn analyze(&self, stmt: &SelectStmt) -> Result<AnalyzeReport> {
        self.trace.lock().expect("trace lock").clear();
        let metrics = self.catalog.storage().metrics().clone();
        let registry = self.catalog.storage().registry().clone();
        let stages = StageRec::new(metrics.clone());
        let start = Instant::now();
        let before = metrics.snapshot();
        // PLAN: bind + statistics + optimize + per-node estimates.
        let (lowered, planned) = stages.window(
            "PLAN",
            |_: &_| 0,
            || {
                let lowered = {
                    let _span = self.tracer.span("bind", &metrics);
                    lower(self.catalog, stmt)?
                };
                if self.catalog.stats().class(&lowered.root.class).is_none() {
                    self.catalog.collect_stats()?;
                }
                let stats = self.catalog.stats();
                let _span = self.tracer.span("optimize", &metrics);
                let optimized = optimize(&lowered.spec, &stats, &self.config);
                let planned: Vec<(PlanSet, _)> = optimized
                    .terms
                    .iter()
                    .map(|t| {
                        (
                            t.plan.clone(),
                            estimate_plan_set(&t.plan, &stats, &self.config),
                        )
                    })
                    .collect();
                Ok((lowered, planned))
            },
        )?;
        let mut exec_span = self.tracer.span("execute", &metrics);
        self.mark("FROM");
        let mut terms: Vec<TermReport> = Vec::new();
        let mut all_rows: Vec<Row> = Vec::new();
        if lowered.unabsorbed.is_empty() {
            for (plan, est) in planned {
                let rec = AnalyzeRec::new(metrics.clone());
                let rows = self.exec_term(&plan, &lowered, Some(&rec), None)?;
                all_rows.extend(rows);
                let actuals = rec.into_nodes();
                record_operator_totals(&registry, &plan, &actuals);
                terms.push(TermReport::build(plan, est, actuals));
            }
            if terms.len() > 1 {
                self.mark("WHERE:UNION");
                all_rows = stages.window(
                    "WHERE:UNION",
                    |r: &Vec<Row>| r.len() as u64,
                    || {
                        let mut rows = all_rows;
                        dedupe_bindings(&mut rows);
                        Ok(rows)
                    },
                )?;
            }
        } else {
            // Nested-loop fallback: no per-operator plan, but the FROM
            // stage window keeps the page accounting complete.
            all_rows = stages.window(
                "FROM",
                |r: &Vec<Row>| r.len() as u64,
                || self.run_nested_loop(stmt, &lowered),
            )?;
        }
        let result = self.finish_select(stmt, all_rows, Some(&stages), None)?;
        exec_span.set_rows(result.len() as u64);
        drop(exec_span);
        let stages = stages.into_stages();
        let compile_nanos = stages
            .iter()
            .find(|s| s.name == "PLAN")
            .map(|s| s.nanos)
            .unwrap_or(0);
        Ok(AnalyzeReport {
            total: metrics.snapshot().delta(&before),
            elapsed_nanos: start.elapsed().as_nanos() as u64,
            result,
            terms,
            stages,
            cached: false,
            epoch: self.catalog.epoch(),
            compile_nanos,
        })
    }

    /// Execute a prepared (cached) plan with full instrumentation. The
    /// PLAN stage is absent — bind/optimize already happened at prepare
    /// time — so the report states `cached` and a zero compile cost.
    pub fn analyze_prepared(&self, pq: &PreparedQuery) -> Result<AnalyzeReport> {
        self.trace.lock().expect("trace lock").clear();
        let metrics = self.catalog.storage().metrics().clone();
        let registry = self.catalog.storage().registry().clone();
        let stages = StageRec::new(metrics.clone());
        let start = Instant::now();
        let before = metrics.snapshot();
        let mut exec_span = self.tracer.span("execute", &metrics);
        self.mark("FROM");
        let mut terms: Vec<TermReport> = Vec::new();
        let mut all_rows: Vec<Row> = Vec::new();
        for (plan, est) in &pq.terms {
            let rec = AnalyzeRec::new(metrics.clone());
            let rows = self.exec_term(plan, &pq.lowered, Some(&rec), Some(&pq.preds))?;
            all_rows.extend(rows);
            let actuals = rec.into_nodes();
            record_operator_totals(&registry, plan, &actuals);
            terms.push(TermReport::build(plan.clone(), est.clone(), actuals));
        }
        if terms.len() > 1 {
            self.mark("WHERE:UNION");
            all_rows = stages.window(
                "WHERE:UNION",
                |r: &Vec<Row>| r.len() as u64,
                || {
                    let mut rows = all_rows;
                    dedupe_bindings(&mut rows);
                    Ok(rows)
                },
            )?;
        }
        let result = self.finish_select(&pq.stmt, all_rows, Some(&stages), Some(&pq.proj))?;
        exec_span.set_rows(result.len() as u64);
        drop(exec_span);
        Ok(AnalyzeReport {
            total: metrics.snapshot().delta(&before),
            elapsed_nanos: start.elapsed().as_nanos() as u64,
            result,
            terms,
            stages: stages.into_stages(),
            cached: true,
            epoch: pq.epoch,
            compile_nanos: 0,
        })
    }

    /// GROUP BY / HAVING / projection / ORDER BY / DISTINCT in the Figure
    /// 7.1 clause order, optionally inside stage recording windows.
    fn finish_select(
        &self,
        stmt: &SelectStmt,
        mut rows: Vec<Row>,
        stages: Option<&StageRec>,
        proj: Option<&[Option<RowProg>]>,
    ) -> Result<QueryResult> {
        let grouped = !stmt.group_by.is_empty()
            || stmt
                .projection
                .iter()
                .any(|e| matches!(e, Expr::Agg { .. }));
        let mut result = if grouped {
            self.mark("GROUP BY");
            let groups = staged(
                stages,
                "GROUP BY",
                |g: &Vec<Vec<Row>>| g.len() as u64,
                || self.group_rows(&rows, &stmt.group_by),
            )?;
            let groups = if let Some(h) = &stmt.having {
                self.mark("HAVING");
                staged(
                    stages,
                    "HAVING",
                    |g: &Vec<Vec<Row>>| g.len() as u64,
                    || {
                        let mut kept = Vec::new();
                        for g in groups {
                            if self.eval_group_pred(h, &g)? {
                                kept.push(g);
                            }
                        }
                        Ok(kept)
                    },
                )?
            } else {
                groups
            };
            self.mark("PROJECT");
            staged(
                stages,
                "PROJECT",
                |r: &QueryResult| r.len() as u64,
                || {
                    let columns: Vec<String> = stmt.projection.iter().map(Expr::render).collect();
                    let mut out_rows = Vec::new();
                    for g in &groups {
                        let mut out = Vec::new();
                        for p in &stmt.projection {
                            out.push(self.eval_group_expr(p, g)?);
                        }
                        out_rows.push(out);
                    }
                    Ok(QueryResult {
                        columns,
                        rows: out_rows,
                    })
                },
            )?
        } else {
            // ORDER BY applies to the bound rows pre-projection.
            if !stmt.order_by.is_empty() {
                self.mark("ORDER BY");
                let n = rows.len() as u64;
                staged(stages, "ORDER BY", move |_: &()| n, || {
                    self.sort_rows(&mut rows, &stmt.order_by)
                })?;
            }
            self.mark("PROJECT");
            staged(
                stages,
                "PROJECT",
                |r: &QueryResult| r.len() as u64,
                || {
                    let columns: Vec<String> = stmt.projection.iter().map(Expr::render).collect();
                    let mut regs = Registers::default();
                    let mut out_rows = Vec::new();
                    for row in &rows {
                        let mut out = Vec::new();
                        for (i, p) in stmt.projection.iter().enumerate() {
                            let compiled =
                                proj.and_then(|cols| cols.get(i)).and_then(|c| c.as_ref());
                            out.push(match compiled {
                                Some(c) => c.eval(self.catalog, row, &mut regs)?,
                                None => self.eval_expr(p, row)?,
                            });
                        }
                        out_rows.push(out);
                    }
                    Ok(QueryResult {
                        columns,
                        rows: out_rows,
                    })
                },
            )?
        };
        // Grouped ORDER BY sorts output rows by matching columns.
        if grouped && !stmt.order_by.is_empty() {
            self.mark("ORDER BY");
            let n = result.len() as u64;
            staged(stages, "ORDER BY", move |_: &()| n, || {
                let keys: Vec<usize> = stmt
                    .order_by
                    .iter()
                    .filter_map(|(p, _)| result.columns.iter().position(|c| *c == p.render()))
                    .collect();
                let dirs: Vec<bool> = stmt.order_by.iter().map(|(_, asc)| *asc).collect();
                result.rows.sort_by(|a, b| {
                    for (ki, &col) in keys.iter().enumerate() {
                        let ord = a[col].compare(&b[col]).unwrap_or(std::cmp::Ordering::Equal);
                        let ord = if dirs.get(ki).copied().unwrap_or(true) {
                            ord
                        } else {
                            ord.reverse()
                        };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(())
            })?;
        }
        if stmt.distinct {
            staged(stages, "DISTINCT", |n: &u64| *n, || {
                let mut seen = HashSet::new();
                result.rows.retain(|r| {
                    let key: Vec<u8> = r.iter().flat_map(encode_value).collect();
                    seen.insert(key)
                });
                Ok(result.rows.len() as u64)
            })?;
        }
        Ok(result)
    }

    fn run_optimized(&self, _stmt: &SelectStmt, lowered: &Lowered) -> Result<Vec<Row>> {
        // Ensure statistics exist for the root class; first use collects.
        if self.catalog.stats().class(&lowered.root.class).is_none() {
            self.catalog.collect_stats()?;
        }
        let metrics = self.catalog.storage().metrics().clone();
        let registry = self.catalog.storage().registry().clone();
        let optimized = {
            let _span = self.tracer.span("optimize", &metrics);
            optimize(&lowered.spec, &self.catalog.stats(), &self.config)
        };
        let mut all_rows: Vec<Row> = Vec::new();
        for term in &optimized.terms {
            // Ordinary SELECTs record per-node actuals too: the registry's
            // per-operator lifetime totals come from every execution.
            let rec = AnalyzeRec::new(metrics.clone());
            let rows = self.exec_term(&term.plan, lowered, Some(&rec), None)?;
            all_rows.extend(rows);
            record_operator_totals(&registry, &term.plan, &rec.into_nodes());
        }
        if optimized.terms.len() > 1 {
            self.mark("WHERE:UNION");
            dedupe_bindings(&mut all_rows);
        }
        Ok(all_rows)
    }

    // ------------------------------------------------------------------
    // Prepared execution (plan cache)
    // ------------------------------------------------------------------

    /// Bind, optimize, estimate, and pre-compile a SELECT once, producing
    /// a plan the session cache can re-execute without touching the parser
    /// or optimizer. Returns `None` for statements the optimizer's
    /// single-root model cannot absorb (the nested-loop fallback path) —
    /// those are executed uncached.
    ///
    /// Every Select/IndSel predicate in the plan is pre-parsed, and
    /// lowered to a register program when the compiling bridge covers it;
    /// ungrouped projection columns likewise. `epoch` is read after any
    /// first-use statistics collection (which bumps it), so a cached entry
    /// stays valid until the next DDL or statistics refresh.
    pub fn prepare(&self, stmt: &SelectStmt) -> Result<Option<PreparedQuery>> {
        let metrics = self.catalog.storage().metrics().clone();
        let registry = self.catalog.storage().registry().clone();
        let start = Instant::now();
        let lowered = {
            let _span = self.tracer.span("bind", &metrics);
            lower(self.catalog, stmt)?
        };
        if !lowered.unabsorbed.is_empty() {
            return Ok(None);
        }
        if self.catalog.stats().class(&lowered.root.class).is_none() {
            self.catalog.collect_stats()?;
        }
        let stats = self.catalog.stats();
        let optimized = {
            let _span = self.tracer.span("optimize", &metrics);
            optimize(&lowered.spec, &stats, &self.config)
        };
        let epoch = self.catalog.epoch();
        let terms: Vec<(PlanSet, Vec<NodeEstimate>)> = optimized
            .terms
            .iter()
            .map(|t| {
                (
                    t.plan.clone(),
                    estimate_plan_set(&t.plan, &stats, &self.config),
                )
            })
            .collect();
        let var_class: HashMap<String, String> = stmt
            .from
            .iter()
            .map(|f| (f.var.clone(), f.class.clone()))
            .collect();
        let mut preds: HashMap<String, PreparedPred> = HashMap::new();
        for (set, _) in &terms {
            for plan in set.temps.iter().map(|(_, p)| p).chain([&set.root]) {
                let mut texts = Vec::new();
                plan_predicates(plan, &mut texts);
                for text in texts {
                    if preds.contains_key(text) {
                        continue;
                    }
                    let stripped = text.strip_prefix("__join__ ").unwrap_or(text);
                    let expr = parse_expr(stripped)?;
                    let compiled = if self.config.compiled_predicates {
                        compile_pred(self.catalog, &var_class, &expr)
                    } else {
                        None
                    };
                    preds.insert(text.to_string(), PreparedPred { expr, compiled });
                }
            }
        }
        let grouped = !stmt.group_by.is_empty()
            || stmt
                .projection
                .iter()
                .any(|e| matches!(e, Expr::Agg { .. }));
        let proj: Vec<Option<RowProg>> = if grouped || !self.config.compiled_predicates {
            Vec::new()
        } else {
            stmt.projection
                .iter()
                .map(|e| compile_proj(self.catalog, &var_class, e))
                .collect()
        };
        let compile_nanos = start.elapsed().as_nanos() as u64;
        registry.record_compile_ns(compile_nanos);
        Ok(Some(PreparedQuery {
            stmt: stmt.clone(),
            lowered,
            terms,
            epoch,
            preds,
            proj,
            compile_nanos,
        }))
    }

    /// Execute a prepared plan: no parse, no bind, no optimize. Trace
    /// marks and per-operator registry totals are identical to an
    /// uncached run of the same plan.
    pub fn run_prepared(&self, pq: &PreparedQuery) -> Result<QueryResult> {
        self.trace.lock().expect("trace lock").clear();
        let metrics = self.catalog.storage().metrics().clone();
        let registry = self.catalog.storage().registry().clone();
        let mut exec_span = self.tracer.span("execute", &metrics);
        self.mark("FROM");
        let mut all_rows: Vec<Row> = Vec::new();
        for (plan, _) in &pq.terms {
            let rec = AnalyzeRec::new(metrics.clone());
            let rows = self.exec_term(plan, &pq.lowered, Some(&rec), Some(&pq.preds))?;
            all_rows.extend(rows);
            record_operator_totals(&registry, plan, &rec.into_nodes());
        }
        if pq.terms.len() > 1 {
            self.mark("WHERE:UNION");
            dedupe_bindings(&mut all_rows);
        }
        let result = self.finish_select(&pq.stmt, all_rows, None, Some(&pq.proj))?;
        exec_span.set_rows(result.len() as u64);
        Ok(result)
    }

    /// Execute one term's plan set: temps in creation order, then the root.
    /// Node ids follow the shared pre-order scheme over `[temps…, root]`.
    fn exec_term(
        &self,
        set: &PlanSet,
        lowered: &Lowered,
        rec: Option<&AnalyzeRec>,
        preds: Option<&HashMap<String, PreparedPred>>,
    ) -> Result<Vec<Row>> {
        let mut temps: HashMap<String, Vec<Row>> = HashMap::new();
        let mut offset = 0usize;
        for (name, plan) in &set.temps {
            let rows = self.exec_plan_at(plan, offset, lowered, &temps, rec, preds)?;
            offset += plan.subtree_size();
            temps.insert(name.clone(), rows);
        }
        self.exec_plan_at(&set.root, offset, lowered, &temps, rec, preds)
    }

    /// Fallback for queries the optimizer's single-root model cannot
    /// absorb: nested-loop product over the FROM extents plus a residual
    /// WHERE filter.
    fn run_nested_loop(&self, stmt: &SelectStmt, lowered: &Lowered) -> Result<Vec<Row>> {
        let mut rows: Vec<Row> = vec![Row::new()];
        for item in &stmt.from {
            let extent = if item.every {
                self.catalog.extent_every(&item.class, &item.minus)?
            } else {
                self.catalog.extent(&item.class)?
            };
            let mut next = Vec::with_capacity(rows.len() * extent.len());
            for row in &rows {
                for (oid, value) in &extent {
                    let mut r = row.clone();
                    r.insert(
                        item.var.clone(),
                        BoundObj {
                            oid: Some(*oid),
                            value: value.clone(),
                        },
                    );
                    next.push(r);
                }
            }
            rows = next;
        }
        let _ = lowered;
        if let Some(w) = &stmt.where_clause {
            self.mark("WHERE:SELECT");
            rows = self.filter_rows(rows, w, None)?;
        }
        Ok(rows)
    }

    // ------------------------------------------------------------------
    // Plan interpretation
    // ------------------------------------------------------------------

    /// Execute the node at pre-order id `nid`, recording rows, the
    /// inclusive counter delta, and wall time when instrumented.
    ///
    /// Snapshots are taken on this (coordinating) thread: chunk-parallel
    /// operators join their workers before returning, so the window still
    /// covers every page they touch.
    #[allow(clippy::too_many_arguments)]
    fn exec_plan_at(
        &self,
        plan: &Plan,
        nid: usize,
        lowered: &Lowered,
        temps: &HashMap<String, Vec<Row>>,
        rec: Option<&AnalyzeRec>,
        preds: Option<&HashMap<String, PreparedPred>>,
    ) -> Result<Vec<Row>> {
        if rec.is_none() && !self.tracer.enabled() {
            return self.exec_plan_node(plan, nid, lowered, temps, rec, preds);
        }
        let metrics = self.catalog.storage().metrics();
        let mut span = self.tracer.span(format!("op:{}", op_kind(plan)), metrics);
        let start = Instant::now();
        let before = rec.map(|r| r.metrics.snapshot());
        let rows = self.exec_plan_node(plan, nid, lowered, temps, rec, preds)?;
        span.set_rows(rows.len() as u64);
        if let (Some(r), Some(before)) = (rec, before) {
            r.record(
                nid,
                rows.len() as u64,
                r.metrics.snapshot().delta(&before),
                start.elapsed().as_nanos() as u64,
            );
        }
        Ok(rows)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_plan_node(
        &self,
        plan: &Plan,
        nid: usize,
        lowered: &Lowered,
        temps: &HashMap<String, Vec<Row>>,
        rec: Option<&AnalyzeRec>,
        preds: Option<&HashMap<String, PreparedPred>>,
    ) -> Result<Vec<Row>> {
        match plan {
            Plan::Bind { class, var } => {
                // Stream the extent scan straight into rows (no
                // intermediate (oid, value) vector).
                let mut rows = Vec::new();
                let mut push = |oid: Oid, value| {
                    let mut row = Row::new();
                    row.insert(
                        var.clone(),
                        BoundObj {
                            oid: Some(oid),
                            value,
                        },
                    );
                    rows.push(row);
                    true
                };
                if var == &lowered.root.var && lowered.root.every {
                    self.catalog.extent_every_with(
                        class,
                        &lowered.root.minus,
                        AccessHint::Sequential,
                        &mut push,
                    )?;
                } else {
                    self.catalog
                        .extent_with(class, AccessHint::Sequential, &mut push)?;
                }
                Ok(rows)
            }
            Plan::Temp { name } => temps
                .get(name)
                .cloned()
                .ok_or_else(|| SqlError::Exec(format!("unknown temporary {name}"))),
            Plan::IndSel {
                class,
                var,
                predicate,
                ..
            } => {
                self.mark("WHERE:SELECT");
                let prepared = preds.and_then(|m| m.get(predicate.as_str()));
                let parsed;
                let expr = match prepared {
                    Some(p) => &p.expr,
                    None => {
                        parsed = parse_expr(predicate)?;
                        &parsed
                    }
                };
                let conjuncts = flatten_and(expr);
                let mut oid_set: Option<HashSet<Oid>> = None;
                for p in &conjuncts {
                    let oids = self.index_probe(class, p)?;
                    oid_set = Some(match oid_set {
                        None => oids.into_iter().collect(),
                        Some(prev) => oids.into_iter().filter(|o| prev.contains(o)).collect(),
                    });
                }
                let compiled = prepared.and_then(|p| p.compiled.as_ref());
                let mut regs = Registers::default();
                let mut rows = Vec::new();
                for oid in oid_set.unwrap_or_default() {
                    let Ok((_, value)) = self.catalog.get_object(oid) else {
                        continue; // stale index entry (rebuild-on-demand)
                    };
                    let mut row = Row::new();
                    row.insert(
                        var.clone(),
                        BoundObj {
                            oid: Some(oid),
                            value,
                        },
                    );
                    // Re-verify: path indexes are rebuilt on demand, so an
                    // entry may be stale; evaluating the predicate on the
                    // fetched object guarantees correct answers regardless.
                    let keep = match compiled {
                        Some(c) => c.matches(self.catalog, &row, &mut regs)?,
                        None => self.eval_pred(expr, &row)?,
                    };
                    if keep {
                        rows.push(row);
                    }
                }
                rows.sort_by_key(|r| r.get(var).and_then(|b| b.oid));
                Ok(rows)
            }
            Plan::Select { input, predicate } => {
                let rows = self.exec_plan_at(input, nid + 1, lowered, temps, rec, preds)?;
                self.mark("WHERE:SELECT");
                match preds.and_then(|m| m.get(predicate.as_str())) {
                    Some(p) => self.filter_rows(rows, &p.expr, p.compiled.as_ref()),
                    None => {
                        let text = predicate.strip_prefix("__join__ ").unwrap_or(predicate);
                        let expr = parse_expr(text)?;
                        self.filter_rows(rows, &expr, None)
                    }
                }
            }
            Plan::Join {
                left,
                right,
                method,
                condition,
            } => {
                let left_rows = self.exec_plan_at(left, nid + 1, lowered, temps, rec, preds)?;
                let right_nid = nid + 1 + left.subtree_size();
                let out = self.exec_join(
                    left_rows, right, right_nid, *method, condition, lowered, temps, rec, preds,
                )?;
                self.mark("WHERE:JOIN");
                Ok(out)
            }
            Plan::Union { inputs } => {
                let mut all = Vec::new();
                let mut kid = nid + 1;
                for p in inputs {
                    all.extend(self.exec_plan_at(p, kid, lowered, temps, rec, preds)?);
                    kid += p.subtree_size();
                }
                self.mark("WHERE:UNION");
                Ok(all)
            }
            other => Err(SqlError::Exec(format!(
                "plan node {other:?} is handled at the statement level"
            ))),
        }
    }

    fn index_probe(&self, class: &str, p: &Expr) -> Result<Vec<Oid>> {
        let Expr::Compare { op, left, right } = p else {
            return Err(SqlError::Exec(format!(
                "INDSEL predicate not a comparison: {p:?}"
            )));
        };
        let (Expr::Path(path), Expr::Literal(lit)) = (&**left, &**right) else {
            return Err(SqlError::Exec("INDSEL predicate shape".into()));
        };
        if path.segments.is_empty() {
            return Err(SqlError::Exec(
                "INDSEL predicate must target an attribute".into(),
            ));
        }
        // Dotted join handles both plain attributes and whole-path indexes.
        let attr = &path.segments.join(".");
        let key = lit_value(lit);
        Ok(match op {
            crate::ast::CmpOp::Eq => self.catalog.index_lookup(class, attr, &key)?,
            crate::ast::CmpOp::Lt => {
                self.catalog
                    .index_range(class, attr, None, Some((&key, false)))?
            }
            crate::ast::CmpOp::Le => {
                self.catalog
                    .index_range(class, attr, None, Some((&key, true)))?
            }
            crate::ast::CmpOp::Gt => {
                self.catalog
                    .index_range(class, attr, Some((&key, false)), None)?
            }
            crate::ast::CmpOp::Ge => {
                self.catalog
                    .index_range(class, attr, Some((&key, true)), None)?
            }
            crate::ast::CmpOp::Ne => {
                return Err(SqlError::Exec("<> cannot be index-served".into()))
            }
        })
    }

    /// Execute one implicit join following the plan's method.
    ///
    /// `right_nid` is the right child's pre-order id. When the right side
    /// stays unmaterialized (a Class fetched per probe), no actuals are
    /// recorded for it and its pages land in the join's exclusive delta;
    /// upfront materialization (backward traversal / BJI) gets its own
    /// recording window so the child still reports rows and pages.
    #[allow(clippy::too_many_arguments)]
    fn exec_join(
        &self,
        left_rows: Vec<Row>,
        right: &Plan,
        right_nid: usize,
        method: JoinMethod,
        condition: &str,
        lowered: &Lowered,
        temps: &HashMap<String, Vec<Row>>,
        rec: Option<&AnalyzeRec>,
        preds: Option<&HashMap<String, PreparedPred>>,
    ) -> Result<Vec<Row>> {
        // Condition shape: "x.attr = y.self".
        let (lhs, rhs) = condition
            .split_once(" = ")
            .ok_or_else(|| SqlError::Exec(format!("unsupported join condition: {condition}")))?;
        let (x_var, attr) = lhs
            .split_once('.')
            .ok_or_else(|| SqlError::Exec(format!("bad join lhs: {lhs}")))?;
        let y_var = rhs
            .strip_suffix(".self")
            .ok_or_else(|| SqlError::Exec(format!("bad join rhs: {rhs}")))?;

        // Describe the right side.
        let right_side = match right {
            Plan::Bind { class, .. } => RightSideImpl::Class {
                class: class.clone(),
                filter: None,
            },
            Plan::Select { input, predicate } => {
                if let Plan::Bind { class, .. } = &**input {
                    let filter = match preds.and_then(|m| m.get(predicate.as_str())) {
                        Some(p) => p.expr.clone(),
                        None => parse_expr(
                            predicate.strip_prefix("__join__ ").unwrap_or(predicate),
                        )?,
                    };
                    RightSideImpl::Class {
                        class: class.clone(),
                        filter: Some(filter),
                    }
                } else {
                    let rows = self.exec_plan_at(right, right_nid, lowered, temps, rec, preds)?;
                    RightSideImpl::Rows(key_rows_by(&rows, y_var))
                }
            }
            other => {
                let rows = self.exec_plan_at(other, right_nid, lowered, temps, rec, preds)?;
                RightSideImpl::Rows(key_rows_by(&rows, y_var))
            }
        };

        // For backward traversal and the binary join index the right side
        // is materialized up front (the scan/probe source).
        let right_side = match (method, right_side) {
            (
                JoinMethod::BackwardTraversal | JoinMethod::BinaryJoinIndex,
                RightSideImpl::Class { class, filter },
            ) => {
                let start = Instant::now();
                let before = rec.map(|r| r.metrics.snapshot());
                let mut map: HashMap<Oid, Vec<Row>> = HashMap::new();
                let mut first_err: Option<SqlError> = None;
                self.catalog
                    .extent_with(&class, AccessHint::Sequential, &mut |oid, value| {
                        let mut row = Row::new();
                        row.insert(
                            y_var.to_string(),
                            BoundObj {
                                oid: Some(oid),
                                value,
                            },
                        );
                        if let Some(f) = &filter {
                            match self.eval_pred(f, &row) {
                                Ok(false) => return true,
                                Ok(true) => {}
                                Err(e) => {
                                    first_err = Some(e);
                                    return false;
                                }
                            }
                        }
                        map.entry(oid).or_default().push(row);
                        true
                    })?;
                if let Some(e) = first_err {
                    return Err(e);
                }
                if let (Some(r), Some(before)) = (rec, before) {
                    let rows: u64 = map.values().map(|v| v.len() as u64).sum();
                    r.record(
                        right_nid,
                        rows,
                        r.metrics.snapshot().delta(&before),
                        start.elapsed().as_nanos() as u64,
                    );
                }
                RightSideImpl::Rows(map)
            }
            (_, rs) => rs,
        };

        let mut out = Vec::new();
        match method {
            JoinMethod::BinaryJoinIndex => {
                let RightSideImpl::Rows(map) = &right_side else {
                    unreachable!()
                };
                // Left class from the first bound object.
                let left_class = left_rows
                    .iter()
                    .find_map(|r| r.get(x_var).and_then(|b| b.oid))
                    .map(|oid| self.catalog.get_object(oid).map(|(c, _)| c))
                    .transpose()?;
                let Some(left_class) = left_class else {
                    return Ok(out);
                };
                let mut left_by_oid: HashMap<Oid, Vec<&Row>> = HashMap::new();
                for r in &left_rows {
                    if let Some(oid) = r.get(x_var).and_then(|b| b.oid) {
                        left_by_oid.entry(oid).or_default().push(r);
                    }
                }
                let mut keys: Vec<&Oid> = map.keys().collect();
                keys.sort();
                for y_oid in keys {
                    for l_oid in
                        self.catalog
                            .index_lookup(&left_class, attr, &Value::Ref(*y_oid))?
                    {
                        if let Some(lrows) = left_by_oid.get(&l_oid) {
                            for l in lrows {
                                for r in &map[y_oid] {
                                    let mut merged = (*l).clone();
                                    merged.extend(r.clone());
                                    out.push(merged);
                                }
                            }
                        }
                    }
                }
                out.sort_by_key(|r| r.get(x_var).and_then(|b| b.oid));
            }
            JoinMethod::HashPartition => {
                // Partition: group left rows by referenced OID; fetch each
                // distinct target once.
                let mut partitions: BTreeMap<Oid, Vec<usize>> = BTreeMap::new();
                for (i, row) in left_rows.iter().enumerate() {
                    for oid in self.row_refs(row, x_var, attr)? {
                        partitions.entry(oid).or_default().push(i);
                    }
                }
                for (oid, members) in partitions {
                    let matches = right_side.resolve(self, oid, y_var)?;
                    for r in matches {
                        for &i in &members {
                            let mut merged = left_rows[i].clone();
                            merged.extend(r.clone());
                            out.push(merged);
                        }
                    }
                }
                out.sort_by_key(|r| r.get(x_var).and_then(|b| b.oid));
            }
            JoinMethod::ForwardTraversal | JoinMethod::BackwardTraversal => {
                for row in &left_rows {
                    for oid in self.row_refs(row, x_var, attr)? {
                        let matches = right_side.resolve(self, oid, y_var)?;
                        for r in matches {
                            let mut merged = row.clone();
                            merged.extend(r);
                            out.push(merged);
                        }
                    }
                }
            }
        }
        return Ok(out);

        fn key_rows_by(rows: &[Row], var: &str) -> HashMap<Oid, Vec<Row>> {
            let mut map: HashMap<Oid, Vec<Row>> = HashMap::new();
            for r in rows {
                if let Some(oid) = r.get(var).and_then(|b| b.oid) {
                    map.entry(oid).or_default().push(r.clone());
                }
            }
            map
        }
    }

    /// The reference OIDs of `row[var].attr`.
    fn row_refs(&self, row: &Row, var: &str, attr: &str) -> Result<Vec<Oid>> {
        let Some(bound) = row.get(var) else {
            return Ok(Vec::new());
        };
        Ok(match bound.value.field(attr) {
            Some(Value::Ref(oid)) => vec![*oid],
            Some(Value::Set(items)) | Some(Value::List(items)) => {
                items.iter().filter_map(|i| i.as_oid()).collect()
            }
            _ => Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    /// Evaluate an expression against a row.
    pub fn eval_expr(&self, e: &Expr, row: &Row) -> Result<Value> {
        Ok(match e {
            Expr::Literal(l) => lit_value(l),
            Expr::Path(p) => self.eval_path(p, row)?,
            Expr::MethodCall { base, method, args } => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_expr(a, row)?);
                }
                // Resolve the receiver: the path must end at a stored
                // object (a Ref or the variable itself).
                let receiver_oid = if base.segments.is_empty() {
                    row.get(&base.var).and_then(|b| b.oid)
                } else {
                    self.eval_path(base, row)?.as_oid()
                };
                let Some(oid) = receiver_oid else {
                    return Err(SqlError::Exec(format!(
                        "method {method}() needs a stored receiver ({} unresolved)",
                        base.render()
                    )));
                };
                self.funcman.invoke(oid, method, &arg_vals)?
            }
            Expr::Agg { .. } => {
                return Err(SqlError::Exec("aggregate outside GROUP BY context".into()))
            }
            Expr::Compare { op, left, right } => {
                let l = self.eval_expr(left, row)?;
                let r = self.eval_expr(right, row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match l.compare(&r) {
                    Some(ord) => Value::Boolean(match op {
                        crate::ast::CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                        crate::ast::CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                        crate::ast::CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        crate::ast::CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        crate::ast::CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        crate::ast::CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    }),
                    None => return Err(SqlError::Exec(format!("cannot compare {l} with {r}"))),
                }
            }
            Expr::Between { expr, lo, hi } => {
                let v = self.eval_expr(expr, row)?;
                let lo = self.eval_expr(lo, row)?;
                let hi = self.eval_expr(hi, row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let ge = v.compare(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.compare(&hi).map(|o| o != std::cmp::Ordering::Greater);
                match (ge, le) {
                    (Some(a), Some(b)) => Value::Boolean(a && b),
                    _ => return Err(SqlError::Exec("BETWEEN on incomparable values".into())),
                }
            }
            Expr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match self.eval_expr(p, row)? {
                        Value::Boolean(false) => return Ok(Value::Boolean(false)),
                        Value::Boolean(true) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(SqlError::Exec(format!("AND over non-Boolean {other}")))
                        }
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(true)
                }
            }
            Expr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match self.eval_expr(p, row)? {
                        Value::Boolean(true) => return Ok(Value::Boolean(true)),
                        Value::Boolean(false) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(SqlError::Exec(format!("OR over non-Boolean {other}")))
                        }
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(false)
                }
            }
            Expr::Not(inner) => match self.eval_expr(inner, row)? {
                Value::Boolean(b) => Value::Boolean(!b),
                Value::Null => Value::Null,
                other => return Err(SqlError::Exec(format!("NOT over non-Boolean {other}"))),
            },
            Expr::Arith { op, left, right } => {
                let l = OperandDataType::from_value(&self.eval_expr(left, row)?)?;
                let r = OperandDataType::from_value(&self.eval_expr(right, row)?)?;
                let out = match op {
                    '+' => l.add(&r)?,
                    '-' => l.sub(&r)?,
                    '*' => l.mul(&r)?,
                    '/' => l.div(&r)?,
                    '%' => l.rem(&r)?,
                    other => return Err(SqlError::Exec(format!("unknown operator {other}"))),
                };
                out.into_value()
            }
        })
    }

    /// Evaluate a path against a row, dereferencing through the catalog.
    fn eval_path(&self, p: &PathRef, row: &Row) -> Result<Value> {
        let Some(bound) = row.get(&p.var) else {
            return Err(SqlError::Exec(format!("unbound range variable {}", p.var)));
        };
        if p.segments.is_empty() {
            return Ok(match bound.oid {
                Some(oid) => Value::Ref(oid),
                None => bound.value.clone(),
            });
        }
        let mut cur = bound.value.clone();
        for seg in &p.segments {
            loop {
                match cur {
                    Value::Ref(oid) => {
                        let (_, v) = self.catalog.get_object(oid)?;
                        cur = v;
                    }
                    Value::Null => return Ok(Value::Null),
                    _ => break,
                }
            }
            cur = match cur.field(seg) {
                Some(v) => v.clone(),
                // Schema evolution: objects stored before an attribute was
                // added read it as NULL (the binder already validated that
                // the attribute exists in the schema).
                None => match &cur {
                    Value::Tuple(_) => Value::Null,
                    other => {
                        return Err(SqlError::Exec(format!(
                            "no attribute {seg} on {} (path {}, value {other})",
                            p.var,
                            p.render()
                        )))
                    }
                },
            };
        }
        Ok(cur)
    }

    /// Predicate evaluation: Null (unknown) filters out, per SQL.
    pub fn eval_pred(&self, e: &Expr, row: &Row) -> Result<bool> {
        Ok(matches!(self.eval_expr(e, row)?, Value::Boolean(true)))
    }

    // ------------------------------------------------------------------
    // Grouping and aggregates
    // ------------------------------------------------------------------

    fn group_rows(&self, rows: &[Row], group_by: &[PathRef]) -> Result<Vec<Vec<Row>>> {
        if group_by.is_empty() {
            return Ok(vec![rows.to_vec()]);
        }
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut groups: Vec<Vec<Row>> = Vec::new();
        for row in rows {
            let mut key = Vec::new();
            for g in group_by {
                key.extend(encode_value(&self.eval_path(g, row)?));
                key.push(0xFE);
            }
            match keys.iter().position(|k| *k == key) {
                Some(i) => groups[i].push(row.clone()),
                None => {
                    keys.push(key);
                    groups.push(vec![row.clone()]);
                }
            }
        }
        Ok(groups)
    }

    fn eval_group_expr(&self, e: &Expr, group: &[Row]) -> Result<Value> {
        match e {
            Expr::Agg { func, arg } => self.eval_agg(*func, arg.as_deref(), group),
            other => {
                let Some(first) = group.first() else {
                    return Ok(Value::Null);
                };
                self.eval_expr(other, first)
            }
        }
    }

    fn eval_group_pred(&self, e: &Expr, group: &[Row]) -> Result<bool> {
        // HAVING predicates may mix aggregates and group keys: evaluate
        // comparisons with group-aware operands.
        match e {
            Expr::And(parts) => {
                for p in parts {
                    if !self.eval_group_pred(p, group)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Expr::Or(parts) => {
                for p in parts {
                    if self.eval_group_pred(p, group)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Expr::Not(inner) => Ok(!self.eval_group_pred(inner, group)?),
            Expr::Compare { op, left, right } => {
                let l = self.eval_group_expr(left, group)?;
                let r = self.eval_group_expr(right, group)?;
                if l.is_null() || r.is_null() {
                    return Ok(false);
                }
                let Some(ord) = l.compare(&r) else {
                    return Err(SqlError::Exec(format!("cannot compare {l} with {r}")));
                };
                Ok(match op {
                    crate::ast::CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    crate::ast::CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    crate::ast::CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    crate::ast::CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    crate::ast::CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    crate::ast::CmpOp::Ge => ord != std::cmp::Ordering::Less,
                })
            }
            other => {
                let Some(first) = group.first() else {
                    return Ok(false);
                };
                self.eval_pred(other, first)
            }
        }
    }

    fn eval_agg(&self, func: AggFunc, arg: Option<&Expr>, group: &[Row]) -> Result<Value> {
        if func == AggFunc::Count && arg.is_none() {
            return Ok(Value::Integer(group.len() as i32));
        }
        let arg =
            arg.ok_or_else(|| SqlError::Exec(format!("{}() requires an argument", func.name())))?;
        let mut nums = Vec::new();
        let mut count = 0usize;
        for row in group {
            let v = self.eval_expr(arg, row)?;
            if v.is_null() {
                continue;
            }
            count += 1;
            if let Some(x) = v.as_f64() {
                nums.push(x);
            } else if func != AggFunc::Count {
                return Err(SqlError::Exec(format!(
                    "{}() over non-numeric value {v}",
                    func.name()
                )));
            }
        }
        Ok(match func {
            AggFunc::Count => Value::Integer(count as i32),
            AggFunc::Sum => Value::Float(nums.iter().sum()),
            AggFunc::Avg => {
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Min => nums
                .iter()
                .copied()
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))))
                .map(Value::Float)
                .unwrap_or(Value::Null),
            AggFunc::Max => nums
                .iter()
                .copied()
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))
                .map(Value::Float)
                .unwrap_or(Value::Null),
        })
    }

    fn sort_rows(&self, rows: &mut [Row], order_by: &[(PathRef, bool)]) -> Result<()> {
        // Precompute keys (evaluation may deref; do it once per row).
        let mut keyed: Vec<(usize, Vec<Value>)> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let mut keys = Vec::new();
            for (p, _) in order_by {
                keys.push(self.eval_path(p, row)?);
            }
            keyed.push((i, keys));
        }
        keyed.sort_by(|(_, a), (_, b)| {
            for (k, (_, asc)) in order_by.iter().enumerate() {
                let ord = a[k].compare(&b[k]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let permuted: Vec<Row> = keyed.iter().map(|(i, _)| rows[*i].clone()).collect();
        rows.clone_from_slice(&permuted);
        Ok(())
    }
}

/// The two right-side shapes of `exec_join`.
enum RightSideImpl {
    /// Unmaterialized class with an optional residual filter.
    Class { class: String, filter: Option<Expr> },
    /// Materialized rows keyed by the right variable's OID.
    Rows(HashMap<Oid, Vec<Row>>),
}

impl RightSideImpl {
    fn resolve(&self, ex: &Executor<'_>, oid: Oid, y_var: &str) -> Result<Vec<Row>> {
        match self {
            RightSideImpl::Rows(map) => Ok(map.get(&oid).cloned().unwrap_or_default()),
            RightSideImpl::Class { class, filter } => {
                let Ok((obj_class, value)) = ex.catalog.get_object(oid) else {
                    return Ok(Vec::new()); // dangling reference: no pair
                };
                if !ex.catalog.is_subclass(&obj_class, class) {
                    return Ok(Vec::new());
                }
                let mut row = Row::new();
                row.insert(
                    y_var.to_string(),
                    BoundObj {
                        oid: Some(oid),
                        value,
                    },
                );
                if let Some(f) = filter {
                    if !ex.eval_pred(f, &row)? {
                        return Ok(Vec::new());
                    }
                }
                Ok(vec![row])
            }
        }
    }
}

/// Set semantics over variable bindings: dedupe by OID signature.
fn dedupe_bindings(rows: &mut Vec<Row>) {
    let mut seen = HashSet::new();
    rows.retain(|row| {
        let sig: Vec<(String, Option<Oid>)> = row.iter().map(|(k, v)| (k.clone(), v.oid)).collect();
        seen.insert(format!("{sig:?}"))
    });
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(i) => {
            if let Ok(v) = i32::try_from(*i) {
                Value::Integer(v)
            } else {
                Value::LongInteger(*i)
            }
        }
        Lit::Float(x) => Value::Float(*x),
        Lit::Str(s) => Value::String(s.clone()),
        Lit::Bool(b) => Value::Boolean(*b),
        Lit::Null => Value::Null,
    }
}

fn flatten_and(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::And(parts) => parts.iter().flat_map(flatten_and).collect(),
        other => vec![other],
    }
}
