//! Transactions and crash recovery through the public `Mood` API:
//! an explicit commit, an explicit rollback, and a simulated crash
//! (drop without checkpoint) that recovery repairs on reopen.

use mood_core::{Mood, Value};

fn balance(db: &Mood, id: i32) -> Option<i32> {
    let mut cur = db
        .query(&format!("SELECT a.balance FROM Account a WHERE a.id = {id}"))
        .unwrap();
    cur.next().map(|row| match row[0] {
        Value::Integer(n) => n,
        ref other => panic!("unexpected balance value {other:?}"),
    })
}

fn main() {
    let dir = std::env::temp_dir().join(format!("mood-txn-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    {
        let db = Mood::open(&dir).unwrap();
        db.execute("CREATE CLASS Account TUPLE (id Integer, balance Integer)")
            .unwrap();
        db.execute("new Account <1, 100>").unwrap();
        db.execute("new Account <2, 100>").unwrap();

        // A committed transfer...
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE Account a SET balance = a.balance - 30 WHERE a.id = 1")
            .unwrap();
        db.execute("UPDATE Account a SET balance = a.balance + 30 WHERE a.id = 2")
            .unwrap();
        db.execute("COMMIT").unwrap();
        println!(
            "after commit:   id1={:?} id2={:?}",
            balance(&db, 1),
            balance(&db, 2)
        );
        assert_eq!((balance(&db, 1), balance(&db, 2)), (Some(70), Some(130)));

        // ...and a rolled-back one: nothing of it survives.
        db.execute("BEGIN TRANSACTION").unwrap();
        db.execute("UPDATE Account a SET balance = 0 WHERE a.id = 1")
            .unwrap();
        db.execute("new Account <99, 1>").unwrap();
        println!("in txn:         id1={:?} id99={:?}", balance(&db, 1), balance(&db, 99));
        db.execute("ROLLBACK").unwrap();
        println!(
            "after rollback: id1={:?} id99={:?}",
            balance(&db, 1),
            balance(&db, 99)
        );
        assert_eq!((balance(&db, 1), balance(&db, 99)), (Some(70), None));

        // Crash: drop the database without a checkpoint. The committed
        // pages live only in the WAL at this point.
    }

    let db = Mood::open(&dir).unwrap();
    println!(
        "after crash:    id1={:?} id2={:?} id99={:?}",
        balance(&db, 1),
        balance(&db, 2),
        balance(&db, 99)
    );
    assert_eq!(
        (balance(&db, 1), balance(&db, 2), balance(&db, 99)),
        (Some(70), Some(130), None)
    );
    println!("recovery replayed the committed transfer; the rollback left no trace");

    let _ = std::fs::remove_dir_all(&dir);
}
