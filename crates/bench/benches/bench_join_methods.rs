//! X1 — the four implicit-join methods (§6) across k_c: wall-clock
//! criterion timings plus a one-shot measured-pages vs model-cost table.
//!
//! Paper-shape expectation: forward traversal wins for small k_c (few
//! pointers chased); the scan-based methods win for large k_c; the binary
//! join index sits between; backward traversal pays the full D scan.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mood_bench::{build_ref_db, measured_join_pages, RefDbSpec};
use mood_core::algebra::{join, Collection, JoinMethod, JoinRhs, Obj};
use mood_core::PhysicalParams;

fn bench(c: &mut Criterion) {
    let spec = RefDbSpec {
        n_c: 4000,
        n_d: 8000,
        pool_frames: 8,
        join_index: true,
        ..Default::default()
    };
    let (db, c_oids, _) = build_ref_db(&spec);
    let params = PhysicalParams::salzberg_1988();

    // One-shot table: measured access pattern vs §6 prediction.
    println!("\n# X1: measured pages vs model (n_c=4000, n_d=8000, pool=8)");
    println!(
        "{:>6} {:<20} {:>6} {:>6} {:>6} {:>12} {:>12}",
        "k_c", "method", "seq", "rnd", "idx", "measured(s)", "model(s)"
    );
    for k_c in [10usize, 200, 1000, 4000] {
        for method in JoinMethod::ALL {
            let m = measured_join_pages(&db, &c_oids, k_c, method, &params);
            println!(
                "{:>6} {:<20} {:>6} {:>6} {:>6} {:>12.4} {:>12.4}",
                k_c,
                method.plan_name(),
                m.seq_pages,
                m.rnd_pages,
                m.idx_pages,
                m.measured_model_seconds,
                m.predicted_seconds
            );
        }
    }

    let mut group = c.benchmark_group("join_methods");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let catalog = db.catalog();
    for k_c in [10usize, 1000, 4000] {
        let subset: Vec<Obj> = c_oids[..k_c]
            .iter()
            .map(|&oid| {
                let (_, v) = catalog.get_object(oid).unwrap();
                Obj::stored(oid, v)
            })
            .collect();
        let left = Collection::Extent(subset);
        for method in JoinMethod::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.plan_name(), k_c),
                &left,
                |b, left| {
                    b.iter(|| {
                        join(catalog, left, "d", JoinRhs::Class("D"), method)
                            .expect("join runs")
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
