//! # mood-cost — the MOOD cost model
//!
//! Sections 4–6 of the paper: selectivity of atomic and path-expression
//! predicates, costs of the basic file operations, and costs of the four
//! implicit-join strategies. Everything is a pure function of the Table
//! 8–10 statistics, so the optimizer crate can cost plans without touching
//! storage, and benches can compare model predictions against measured page
//! counts.
//!
//! * [`approx`] — `c(n,m,r)`, `o(t,x,y)`, plus exact Yao/Cardenas forms;
//! * [`selectivity`] — §4.1 atomic and path selectivities;
//! * [`fileops`] — §5 `SEQCOST` / `RNDCOST` / `INDCOST` / `RNGXCOST`;
//! * [`joincost`] — §6 `ftc` / `btc` / `bjc` / `hhc` and path forward cost.

pub mod approx;
pub mod fileops;
pub mod joincost;
pub mod selectivity;

pub use approx::{c_approx, cardenas, o_overlap, yao};
pub use fileops::{
    indcost, pages_touched, rndcost, rngxcost, seqcost, seqcost_batched, IndexParams,
};
pub use joincost::{
    backward_traversal_cost, best_join_method, binary_join_index_cost, forward_traversal_cost,
    forward_traversal_cost_in_memory, hash_partition_cost, hash_partition_cost_in_memory,
    join_cost, path_forward_cost, ClassInfo, JoinInputs, JoinMethod, DEFAULT_CPU_COST,
};
pub use mood_storage::PhysicalParams;
pub use selectivity::{
    atomic_selectivity, between_selectivity, fref, path_selectivity, Domain, PathHop,
    PathPredicate, Theta,
};
