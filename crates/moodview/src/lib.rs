//! # mood-view — headless MoodView
//!
//! The paper's MoodView (Section 9) is an X/Motif GUI; the reproduction
//! keeps every database-facing behavior and renders to text:
//!
//! * [`dag`] — the DAG placement algorithm "that minimizes crossovers" for
//!   the class-hierarchy browser (Sugiyama layering + barycenter ordering),
//!   with ASCII and Graphviz DOT renderers;
//! * [`browse`] — the class-presentation card (Figure 9.2), the generic
//!   object-graph presentation with reference walking and cycle detection
//!   (Figure 9.3), and the kernel's name/type/value cursor-buffer protocol
//!   (Section 9.4);
//! * [`query_manager`] — the SQL query manager with session history
//!   (Section 9.3), talking to the kernel exclusively through MOODSQL.

pub mod browse;
pub mod dag;
pub mod query_manager;

pub use browse::{
    hierarchy_layout, object_triplets, render_class_card, render_hierarchy, render_hierarchy_dot,
    render_method_card, render_object, update_attribute, AttributeTriplet,
};
pub use dag::{place, render_ascii, render_dot, Layout, PlacedNode};
pub use query_manager::{HistoryEntry, QueryManager};
