//! Compiled predicate and projection evaluation: register programs.
//!
//! The paper's Function Manager compiles method bodies once at definition
//! time and re-executes the compiled form per call (Section 2). This module
//! is the reproduction-era analogue for the *query* hot path: an [`Expr`]
//! tree is lowered once into a flat register program — constants live in a
//! preallocated pool (no per-row `String` clones), attribute accesses carry
//! resolved slot offsets (verified against the field name, so schema
//! evolution stays correct), And/Or short-circuit through forward jumps,
//! and provably ill-typed comparisons are rejected at compile time so the
//! caller can fall back to the interpreter instead of failing per row.
//!
//! Two semantic modes cover the two evaluators in the system:
//!
//! * [`Mode::Sql`] mirrors MOODSQL's `Executor::eval_expr` exactly —
//!   comparisons through `Value::compare` with Null propagation, n-ary
//!   And/Or folds that error on non-Boolean parts, missing tuple fields
//!   reading as Null (schema evolution).
//! * [`Mode::Body`] mirrors the method-body interpreter in [`crate::expr`]
//!   — `OperandDataType` comparisons, binary And/Or truth tables, missing
//!   fields raising `UnknownIdentifier`.
//!
//! Programs are immutable and `Sync`; per-row scratch lives in a
//! caller-provided [`Registers`] so parallel scan chunks reuse one
//! allocation per worker, not one per row.

use std::cmp::Ordering;

use mood_datamodel::Value;

use crate::exception::{Exception, ExceptionKind};
use crate::expr::{BinOp, EvalCtx, Expr, UnOp};
use crate::operand::OperandDataType as Op;

/// Which evaluator's semantics the program reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// MOODSQL `eval_expr` semantics (`Value::compare`, n-ary And/Or,
    /// missing tuple field → Null).
    Sql,
    /// Method-body interpreter semantics (`OperandDataType`, binary
    /// And/Or, missing field → `UnknownIdentifier`).
    Body,
}

/// Static type classes for compile-time checking. Derived from literals and
/// (optionally) schema attribute types; `Unknown` never rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    Num,
    Str,
    Bool,
    Unknown,
}

/// Schema type lookup for path expressions (segments, `self` already
/// stripped) — enables compile-time comparison checking.
pub type AttrKindFn<'a> = &'a dyn Fn(&[String]) -> StaticKind;

/// Resolved slot offset of a root attribute in the stored tuple.
pub type RootSlotFn<'a> = &'a dyn Fn(&str) -> Option<u16>;

/// Compilation options.
pub struct CompileOpts<'a> {
    pub mode: Mode,
    /// Parameter names in signature order (Body mode): paths rooted at a
    /// parameter bind to its slot at compile time.
    pub params: &'a [String],
    /// Schema type lookup — enables compile-time comparison checking.
    pub attr_kind: Option<AttrKindFn<'a>>,
    /// Slot offset lookup. Used as a verified hint: the evaluator checks
    /// the field name at the slot and falls back to a scan, so stale
    /// offsets cost nothing but time.
    pub root_slot: Option<RootSlotFn<'a>>,
    /// Range-variable label for Sql-mode error messages (`no attribute a
    /// on x (path x.a, ...)`).
    pub label: &'a str,
}

impl<'a> CompileOpts<'a> {
    pub fn sql(label: &'a str) -> CompileOpts<'a> {
        CompileOpts {
            mode: Mode::Sql,
            params: &[],
            attr_kind: None,
            root_slot: None,
            label,
        }
    }

    pub fn body(params: &'a [String]) -> CompileOpts<'a> {
        CompileOpts {
            mode: Mode::Body,
            params,
            attr_kind: None,
            root_slot: None,
            label: "self",
        }
    }

    pub fn with_attr_kind(mut self, f: AttrKindFn<'a>) -> Self {
        self.attr_kind = Some(f);
        self
    }

    pub fn with_root_slot(mut self, f: RootSlotFn<'a>) -> Self {
        self.root_slot = Some(f);
        self
    }
}

/// An operand source: a scratch register or the constant pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    Reg(u16),
    Const(u16),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpKind {
    fn apply(self, ord: Ordering) -> bool {
        match self {
            CmpKind::Eq => ord == Ordering::Equal,
            CmpKind::Ne => ord != Ordering::Equal,
            CmpKind::Lt => ord == Ordering::Less,
            CmpKind::Le => ord != Ordering::Greater,
            CmpKind::Gt => ord == Ordering::Greater,
            CmpKind::Ge => ord != Ordering::Less,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpKind::Eq => "=",
            CmpKind::Ne => "<>",
            CmpKind::Lt => "<",
            CmpKind::Le => "<=",
            CmpKind::Gt => ">",
            CmpKind::Ge => ">=",
        }
    }
}

fn cmp_kind(op: BinOp) -> Option<CmpKind> {
    Some(match op {
        BinOp::Eq => CmpKind::Eq,
        BinOp::Ne => CmpKind::Ne,
        BinOp::Lt => CmpKind::Lt,
        BinOp::Le => CmpKind::Le,
        BinOp::Gt => CmpKind::Gt,
        BinOp::Ge => CmpKind::Ge,
        _ => return None,
    })
}

/// Where a path starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathRoot {
    /// The receiver / bound object.
    SelfVal,
    /// A named parameter, bound to its signature slot at compile time.
    Arg(u16),
}

/// One path segment: the attribute name plus an optional verified slot
/// offset into the stored tuple.
#[derive(Debug, Clone)]
struct Seg {
    name: String,
    slot: Option<u16>,
}

/// A pre-resolved attribute path.
#[derive(Debug, Clone)]
struct PathPlan {
    root: PathRoot,
    /// The path started with a bare identifier (Body mode: a missing root
    /// attribute is an *unknown identifier*, not a missing attribute).
    root_ident: bool,
    segs: Vec<Seg>,
    /// Original root token, for unknown-identifier messages.
    root_name: String,
    /// Range-variable label (Sql-mode error messages).
    label: String,
    /// Rendered path text (Sql-mode error messages).
    rendered: String,
}

#[derive(Debug, Clone)]
enum Inst {
    /// Navigate `paths[plan]` and store the result.
    Path { dst: u16, plan: u16 },
    /// Copy a value into a register.
    Set { dst: u16, src: Src },
    /// Raise unless the value is atomic (the interpreter's operand check,
    /// kept in evaluation order).
    Atomic { src: Src },
    /// `Value::compare` with Null propagation (MOODSQL comparison).
    CmpSql { dst: u16, kind: CmpKind, lhs: Src, rhs: Src },
    /// `OperandDataType` comparison (method-body semantics).
    CmpBody { dst: u16, kind: CmpKind, lhs: Src, rhs: Src },
    /// MOODSQL `BETWEEN`: all three operands evaluate first, Null
    /// propagates, incomparable raises.
    BetweenSql { dst: u16, v: Src, lo: Src, hi: Src },
    /// Method-body `BETWEEN` via `OperandDataType::compare_values`.
    BetweenBody { dst: u16, v: Src, lo: Src, hi: Src },
    /// Arithmetic through `OperandDataType` (both evaluators share it).
    Arith { dst: u16, op: char, lhs: Src, rhs: Src },
    /// Unary minus (`0 - x` like the interpreter).
    Neg { dst: u16, src: Src },
    NotSql { dst: u16, src: Src },
    NotBody { dst: u16, src: Src },
    /// One step of the Sql n-ary AND fold over accumulator `acc`:
    /// false → short-circuit to `end`, Null → acc becomes Null.
    AndStep { acc: u16, src: Src, end: u32 },
    OrStep { acc: u16, src: Src, end: u32 },
    /// Body-mode `acc = acc AND rhs` truth table (lhs already in `acc`).
    AndBody { acc: u16, rhs: Src },
    OrBody { acc: u16, rhs: Src },
    JumpIfFalse { src: Src, target: u32 },
    JumpIfTrue { src: Src, target: u32 },
    /// Method dispatch (Body mode only).
    Call { dst: u16, name: String, args: Vec<Src> },
}

/// Reusable per-row scratch. One per worker thread / scan chunk: the
/// register file is allocated once and overwritten per row.
#[derive(Debug, Default)]
pub struct Registers {
    slots: Vec<Value>,
}

impl Registers {
    fn prepare(&mut self, n: u16) {
        if self.slots.len() < n as usize {
            self.slots.resize(n as usize, Value::Null);
        }
    }
}

/// A compiled expression: constant pool, resolved paths, instruction list.
#[derive(Debug, Clone)]
pub struct Program {
    mode: Mode,
    consts: Vec<Value>,
    paths: Vec<PathPlan>,
    insts: Vec<Inst>,
    nregs: u16,
    ret: Src,
}

fn query_err(message: String) -> Exception {
    Exception::new(ExceptionKind::Query, message)
}

fn compile_err(message: impl Into<String>) -> Exception {
    Exception::new(ExceptionKind::CompileError, message.into())
}

impl Program {
    /// Number of scratch registers a [`Registers`] will hold.
    pub fn register_count(&self) -> u16 {
        self.nregs
    }

    /// Number of pooled constants.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    fn value<'v>(&'v self, s: Src, regs: &'v Registers) -> &'v Value {
        match s {
            Src::Reg(i) => &regs.slots[i as usize],
            Src::Const(i) => &self.consts[i as usize],
        }
    }

    /// Execute against a context, reusing `regs` as scratch.
    pub fn run(&self, regs: &mut Registers, ctx: &EvalCtx<'_>) -> Result<Value, Exception> {
        regs.prepare(self.nregs);
        let mut pc = 0usize;
        while pc < self.insts.len() {
            match &self.insts[pc] {
                Inst::Path { dst, plan } => {
                    let v = self.navigate(&self.paths[*plan as usize], ctx)?;
                    regs.slots[*dst as usize] = v;
                }
                Inst::Set { dst, src } => {
                    let v = self.value(*src, regs).clone();
                    regs.slots[*dst as usize] = v;
                }
                Inst::Atomic { src } => {
                    Op::ensure_atomic(self.value(*src, regs))?;
                }
                Inst::CmpSql { dst, kind, lhs, rhs } => {
                    let out = {
                        let l = self.value(*lhs, regs);
                        let r = self.value(*rhs, regs);
                        if l.is_null() || r.is_null() {
                            Value::Null
                        } else {
                            match l.compare(r) {
                                Some(ord) => Value::Boolean(kind.apply(ord)),
                                None => {
                                    return Err(query_err(format!("cannot compare {l} with {r}")))
                                }
                            }
                        }
                    };
                    regs.slots[*dst as usize] = out;
                }
                Inst::CmpBody { dst, kind, lhs, rhs } => {
                    let out =
                        Op::cmp_op_values(kind.symbol(), self.value(*lhs, regs), self.value(*rhs, regs))?;
                    regs.slots[*dst as usize] = out;
                }
                Inst::BetweenSql { dst, v, lo, hi } => {
                    let out = {
                        let v = self.value(*v, regs);
                        let lo = self.value(*lo, regs);
                        let hi = self.value(*hi, regs);
                        if v.is_null() || lo.is_null() || hi.is_null() {
                            Value::Null
                        } else {
                            let ge = v.compare(lo).map(|o| o != Ordering::Less);
                            let le = v.compare(hi).map(|o| o != Ordering::Greater);
                            match (ge, le) {
                                (Some(a), Some(b)) => Value::Boolean(a && b),
                                _ => {
                                    return Err(query_err("BETWEEN on incomparable values".into()))
                                }
                            }
                        }
                    };
                    regs.slots[*dst as usize] = out;
                }
                Inst::BetweenBody { dst, v, lo, hi } => {
                    let out = {
                        let v = self.value(*v, regs);
                        let lo = self.value(*lo, regs);
                        let hi = self.value(*hi, regs);
                        if v.is_null() || lo.is_null() || hi.is_null() {
                            Value::Null
                        } else {
                            let ge = Op::compare_values(v, lo)?.map(|o| o != Ordering::Less);
                            let le = Op::compare_values(v, hi)?.map(|o| o != Ordering::Greater);
                            match (ge, le) {
                                (Some(a), Some(b)) => Value::Boolean(a && b),
                                _ => {
                                    return Err(Exception::type_error(
                                        "BETWEEN on incomparable values",
                                    ))
                                }
                            }
                        }
                    };
                    regs.slots[*dst as usize] = out;
                }
                Inst::Arith { dst, op, lhs, rhs } => {
                    let out = {
                        let l = Op::from_value(self.value(*lhs, regs))?;
                        let r = Op::from_value(self.value(*rhs, regs))?;
                        match op {
                            '+' => l.add(&r)?,
                            '-' => l.sub(&r)?,
                            '*' => l.mul(&r)?,
                            '/' => l.div(&r)?,
                            '%' => l.rem(&r)?,
                            other => return Err(query_err(format!("unknown operator {other}"))),
                        }
                        .into_value()
                    };
                    regs.slots[*dst as usize] = out;
                }
                Inst::Neg { dst, src } => {
                    let out = Op::from_value(self.value(*src, regs))?.neg()?.into_value();
                    regs.slots[*dst as usize] = out;
                }
                Inst::NotSql { dst, src } => {
                    let out = match self.value(*src, regs) {
                        Value::Boolean(b) => Value::Boolean(!b),
                        Value::Null => Value::Null,
                        other => return Err(query_err(format!("NOT over non-Boolean {other}"))),
                    };
                    regs.slots[*dst as usize] = out;
                }
                Inst::NotBody { dst, src } => {
                    let out = Op::from_value(self.value(*src, regs))?.not()?.into_value();
                    regs.slots[*dst as usize] = out;
                }
                Inst::AndStep { acc, src, end } => {
                    // 0 = short-circuit false, 1 = keep, 2 = mark Null.
                    let act = match self.value(*src, regs) {
                        Value::Boolean(false) => 0u8,
                        Value::Boolean(true) => 1,
                        Value::Null => 2,
                        other => {
                            return Err(query_err(format!("AND over non-Boolean {other}")))
                        }
                    };
                    match act {
                        0 => {
                            regs.slots[*acc as usize] = Value::Boolean(false);
                            pc = *end as usize;
                            continue;
                        }
                        2 => regs.slots[*acc as usize] = Value::Null,
                        _ => {}
                    }
                }
                Inst::OrStep { acc, src, end } => {
                    let act = match self.value(*src, regs) {
                        Value::Boolean(true) => 0u8,
                        Value::Boolean(false) => 1,
                        Value::Null => 2,
                        other => return Err(query_err(format!("OR over non-Boolean {other}"))),
                    };
                    match act {
                        0 => {
                            regs.slots[*acc as usize] = Value::Boolean(true);
                            pc = *end as usize;
                            continue;
                        }
                        2 => regs.slots[*acc as usize] = Value::Null,
                        _ => {}
                    }
                }
                Inst::AndBody { acc, rhs } => {
                    let out = and_body(&regs.slots[*acc as usize], self.value(*rhs, regs))?;
                    regs.slots[*acc as usize] = out;
                }
                Inst::OrBody { acc, rhs } => {
                    let out = or_body(&regs.slots[*acc as usize], self.value(*rhs, regs))?;
                    regs.slots[*acc as usize] = out;
                }
                Inst::JumpIfFalse { src, target } => {
                    if matches!(self.value(*src, regs), Value::Boolean(false)) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Inst::JumpIfTrue { src, target } => {
                    if matches!(self.value(*src, regs), Value::Boolean(true)) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Inst::Call { dst, name, args } => {
                    let dispatcher = ctx.dispatcher.ok_or_else(|| {
                        Exception::new(
                            ExceptionKind::MissingFunction,
                            format!("method call {name}() outside a dispatching context"),
                        )
                    })?;
                    let vals: Vec<Value> =
                        args.iter().map(|a| self.value(*a, regs).clone()).collect();
                    let out = dispatcher(name, &vals)?;
                    regs.slots[*dst as usize] = out;
                }
            }
            pc += 1;
        }
        Ok(self.value(self.ret, regs).clone())
    }

    /// Walk a pre-resolved path. Values stay borrowed until a reference
    /// dereference or the terminal clone; owned tuples move their field out
    /// instead of cloning.
    fn navigate(&self, plan: &PathPlan, ctx: &EvalCtx<'_>) -> Result<Value, Exception> {
        enum Cur<'c> {
            B(&'c Value),
            O(Value),
        }
        impl Cur<'_> {
            fn as_ref(&self) -> &Value {
                match self {
                    Cur::B(v) => v,
                    Cur::O(v) => v,
                }
            }
        }
        let mut cur = match plan.root {
            PathRoot::SelfVal => Cur::B(ctx.self_value),
            PathRoot::Arg(i) => match ctx.args.get(i as usize) {
                Some((_, v)) => Cur::B(v),
                None => {
                    return Err(Exception::new(
                        ExceptionKind::UnknownIdentifier,
                        format!("unknown identifier {}", plan.root_name),
                    ))
                }
            },
        };
        for (i, seg) in plan.segs.iter().enumerate() {
            // Dereference as many times as needed to reach a tuple.
            loop {
                let oid = match cur.as_ref() {
                    Value::Ref(oid) => *oid,
                    Value::Null => return Ok(Value::Null),
                    _ => break,
                };
                let resolver = ctx.resolver.ok_or_else(|| {
                    Exception::type_error("path traverses a reference but no resolver given")
                })?;
                let v = resolver.resolve(oid).ok_or_else(|| {
                    Exception::new(ExceptionKind::System, format!("dangling reference {oid}"))
                })?;
                cur = Cur::O(v);
            }
            cur = match cur {
                Cur::B(v) => match v {
                    Value::Tuple(fields) => match field_index(fields, &seg.name, seg.slot) {
                        Some(idx) => Cur::B(&fields[idx].1),
                        None => return self.missing_field(plan, i, v),
                    },
                    other => return self.not_navigable(plan, i, other),
                },
                Cur::O(v) => match v {
                    Value::Tuple(mut fields) => {
                        match field_index(&fields, &seg.name, seg.slot) {
                            Some(idx) => Cur::O(fields.swap_remove(idx).1),
                            None => {
                                return self.missing_field(plan, i, &Value::Tuple(fields))
                            }
                        }
                    }
                    other => return self.not_navigable(plan, i, &other),
                },
            };
        }
        Ok(match cur {
            Cur::B(v) => v.clone(),
            Cur::O(v) => v,
        })
    }

    /// Tuple has no such field. Sql: reads as Null (schema evolution, like
    /// the MOODSQL interpreter). Body: unknown identifier.
    fn missing_field(
        &self,
        plan: &PathPlan,
        seg_i: usize,
        _value: &Value,
    ) -> Result<Value, Exception> {
        match self.mode {
            Mode::Sql => Ok(Value::Null),
            Mode::Body => Err(Exception::new(
                ExceptionKind::UnknownIdentifier,
                if seg_i == 0 && plan.root_ident {
                    format!("unknown identifier {}", plan.root_name)
                } else {
                    format!("no attribute {}", plan.segs[seg_i].name)
                },
            )),
        }
    }

    /// Field access on a non-tuple, non-reference value.
    fn not_navigable(&self, plan: &PathPlan, seg_i: usize, value: &Value) -> Result<Value, Exception> {
        let seg = &plan.segs[seg_i].name;
        match self.mode {
            Mode::Sql => Err(query_err(format!(
                "no attribute {seg} on {} (path {}, value {value})",
                plan.label, plan.rendered
            ))),
            Mode::Body => {
                if seg_i == 0 && plan.root_ident {
                    // The interpreter's root lookup is `self.field(name)`,
                    // which reports any miss as an unknown identifier.
                    Err(Exception::new(
                        ExceptionKind::UnknownIdentifier,
                        format!("unknown identifier {}", plan.root_name),
                    ))
                } else {
                    Err(Exception::type_error(format!(
                        "cannot navigate into {value} with .{seg}"
                    )))
                }
            }
        }
    }
}

fn field_index(fields: &[(String, Value)], name: &str, slot: Option<u16>) -> Option<usize> {
    if let Some(s) = slot {
        let s = s as usize;
        if fields.get(s).is_some_and(|(n, _)| n == name) {
            return Some(s);
        }
    }
    fields.iter().position(|(n, _)| n == name)
}

/// Body-mode AND truth table (the lhs-false short circuit already jumped).
fn and_body(l: &Value, r: &Value) -> Result<Value, Exception> {
    match (l, r) {
        (Value::Boolean(false), _) | (_, Value::Boolean(false)) => Ok(Value::Boolean(false)),
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Boolean(a), Value::Boolean(b)) => Ok(Value::Boolean(*a && *b)),
        _ => Err(Exception::type_error("AND needs Boolean operands")),
    }
}

fn or_body(l: &Value, r: &Value) -> Result<Value, Exception> {
    match (l, r) {
        (Value::Boolean(true), _) | (_, Value::Boolean(true)) => Ok(Value::Boolean(true)),
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Boolean(a), Value::Boolean(b)) => Ok(Value::Boolean(*a || *b)),
        _ => Err(Exception::type_error("OR needs Boolean operands")),
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

struct Compiler<'o, 'a> {
    opts: &'o CompileOpts<'a>,
    consts: Vec<Value>,
    paths: Vec<PathPlan>,
    insts: Vec<Inst>,
    next: u16,
}

impl Compiler<'_, '_> {
    fn alloc(&mut self) -> Result<u16, Exception> {
        if self.next == u16::MAX {
            return Err(compile_err("expression too large to compile"));
        }
        let r = self.next;
        self.next += 1;
        Ok(r)
    }

    fn konst(&mut self, v: &Value) -> u16 {
        if let Some(i) = self.consts.iter().position(|c| c == v) {
            return i as u16;
        }
        self.consts.push(v.clone());
        (self.consts.len() - 1) as u16
    }

    /// Static type class of a subexpression, for compile-time checks.
    fn kind_of(&self, e: &Expr) -> StaticKind {
        match e {
            Expr::Lit(v) => match v {
                Value::Integer(_) | Value::LongInteger(_) | Value::Float(_) => StaticKind::Num,
                Value::String(_) => StaticKind::Str,
                Value::Boolean(_) => StaticKind::Bool,
                _ => StaticKind::Unknown,
            },
            Expr::Path(p) => {
                let segs: Vec<String> = if p.first().is_some_and(|s| s == "self") {
                    p[1..].to_vec()
                } else {
                    p.clone()
                };
                self.opts
                    .attr_kind
                    .map(|f| f(&segs))
                    .unwrap_or(StaticKind::Unknown)
            }
            Expr::Unary(UnOp::Neg, _) => StaticKind::Num,
            Expr::Unary(UnOp::Not, _) => StaticKind::Bool,
            Expr::Binary(op, l, r) => {
                if cmp_kind(*op).is_some() || matches!(op, BinOp::And | BinOp::Or) {
                    StaticKind::Bool
                } else if *op == BinOp::Add {
                    match (self.kind_of(l), self.kind_of(r)) {
                        (StaticKind::Str, _) | (_, StaticKind::Str) => StaticKind::Str,
                        (StaticKind::Num, StaticKind::Num) => StaticKind::Num,
                        _ => StaticKind::Unknown,
                    }
                } else {
                    StaticKind::Num
                }
            }
            Expr::Between(..) => StaticKind::Bool,
            Expr::Call(..) => StaticKind::Unknown,
        }
    }

    /// Reject comparisons that are provably ill-typed: both sides known and
    /// of different classes. The caller falls back to the interpreter, so
    /// the per-row error stays byte-identical.
    fn check_comparable(&self, l: &Expr, r: &Expr) -> Result<(), Exception> {
        let (lk, rk) = (self.kind_of(l), self.kind_of(r));
        if lk != StaticKind::Unknown && rk != StaticKind::Unknown && lk != rk {
            return Err(compile_err(format!(
                "comparison between {lk:?} and {rk:?} can never succeed"
            )));
        }
        Ok(())
    }

    fn check_boolean_part(&self, e: &Expr, ctx: &str) -> Result<(), Exception> {
        match self.kind_of(e) {
            StaticKind::Num | StaticKind::Str => Err(compile_err(format!(
                "{ctx} over a non-Boolean operand"
            ))),
            _ => Ok(()),
        }
    }

    fn flatten<'e>(op: BinOp, e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(o, l, r) = e {
            if *o == op {
                Self::flatten(op, l, out);
                Self::flatten(op, r, out);
                return;
            }
        }
        out.push(e);
    }

    fn emit(&mut self, e: &Expr) -> Result<Src, Exception> {
        match e {
            Expr::Lit(v) => Ok(Src::Const(self.konst(v))),
            Expr::Path(p) => {
                let plan = self.path_plan(p)?;
                let idx = self.paths.len();
                if idx > u16::MAX as usize {
                    return Err(compile_err("too many paths"));
                }
                self.paths.push(plan);
                let dst = self.alloc()?;
                self.insts.push(Inst::Path {
                    dst,
                    plan: idx as u16,
                });
                Ok(Src::Reg(dst))
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let src = self.emit(inner)?;
                let dst = self.alloc()?;
                self.insts.push(Inst::Neg { dst, src });
                Ok(Src::Reg(dst))
            }
            Expr::Unary(UnOp::Not, inner) => {
                self.check_boolean_part(inner, "NOT")?;
                let src = self.emit(inner)?;
                let dst = self.alloc()?;
                self.insts.push(match self.opts.mode {
                    Mode::Sql => Inst::NotSql { dst, src },
                    Mode::Body => Inst::NotBody { dst, src },
                });
                Ok(Src::Reg(dst))
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), lhs, rhs) => match self.opts.mode {
                Mode::Sql => self.emit_sql_fold(*op, lhs, rhs),
                Mode::Body => self.emit_body_logic(*op, lhs, rhs),
            },
            Expr::Binary(op, lhs, rhs) => {
                if let Some(kind) = cmp_kind(*op) {
                    self.check_comparable(lhs, rhs)?;
                    match self.opts.mode {
                        Mode::Sql => {
                            let l = self.emit(lhs)?;
                            let r = self.emit(rhs)?;
                            let dst = self.alloc()?;
                            self.insts.push(Inst::CmpSql {
                                dst,
                                kind,
                                lhs: l,
                                rhs: r,
                            });
                            Ok(Src::Reg(dst))
                        }
                        Mode::Body => {
                            let l = self.emit(lhs)?;
                            self.insts.push(Inst::Atomic { src: l });
                            let r = self.emit(rhs)?;
                            self.insts.push(Inst::Atomic { src: r });
                            let dst = self.alloc()?;
                            self.insts.push(Inst::CmpBody {
                                dst,
                                kind,
                                lhs: l,
                                rhs: r,
                            });
                            Ok(Src::Reg(dst))
                        }
                    }
                } else {
                    let ch = match op {
                        BinOp::Add => '+',
                        BinOp::Sub => '-',
                        BinOp::Mul => '*',
                        BinOp::Div => '/',
                        BinOp::Rem => '%',
                        other => {
                            return Err(compile_err(format!("unsupported operator {other:?}")))
                        }
                    };
                    self.check_arith(ch, lhs, rhs)?;
                    let l = self.emit(lhs)?;
                    if self.opts.mode == Mode::Body {
                        // The interpreter materializes the left operand
                        // before evaluating the right: keep error order.
                        self.insts.push(Inst::Atomic { src: l });
                    }
                    let r = self.emit(rhs)?;
                    let dst = self.alloc()?;
                    self.insts.push(Inst::Arith {
                        dst,
                        op: ch,
                        lhs: l,
                        rhs: r,
                    });
                    Ok(Src::Reg(dst))
                }
            }
            Expr::Between(v, lo, hi) => {
                self.check_comparable(v, lo)?;
                self.check_comparable(v, hi)?;
                let vs = self.emit(v)?;
                let ls = self.emit(lo)?;
                let hs = self.emit(hi)?;
                let dst = self.alloc()?;
                self.insts.push(match self.opts.mode {
                    Mode::Sql => Inst::BetweenSql {
                        dst,
                        v: vs,
                        lo: ls,
                        hi: hs,
                    },
                    Mode::Body => Inst::BetweenBody {
                        dst,
                        v: vs,
                        lo: ls,
                        hi: hs,
                    },
                });
                Ok(Src::Reg(dst))
            }
            Expr::Call(name, args) => {
                if self.opts.mode == Mode::Sql {
                    return Err(compile_err("method calls are not compiled in SQL predicates"));
                }
                let mut srcs = Vec::with_capacity(args.len());
                for a in args {
                    srcs.push(self.emit(a)?);
                }
                let dst = self.alloc()?;
                self.insts.push(Inst::Call {
                    dst,
                    name: name.clone(),
                    args: srcs,
                });
                Ok(Src::Reg(dst))
            }
        }
    }

    fn check_arith(&self, op: char, lhs: &Expr, rhs: &Expr) -> Result<(), Exception> {
        let (lk, rk) = (self.kind_of(lhs), self.kind_of(rhs));
        let bad = |k: StaticKind| k == StaticKind::Bool || (op != '+' && k == StaticKind::Str);
        if bad(lk) || bad(rk) {
            return Err(compile_err(format!("operator {op} over a non-numeric operand")));
        }
        if op == '+'
            && lk != StaticKind::Unknown
            && rk != StaticKind::Unknown
            && (lk == StaticKind::Str) != (rk == StaticKind::Str)
        {
            return Err(compile_err("mixed string/numeric addition"));
        }
        Ok(())
    }

    /// Sql-mode n-ary And/Or: fold over the flattened part list with a
    /// sticky-Null accumulator and a short-circuit jump, exactly like the
    /// MOODSQL interpreter's loop.
    fn emit_sql_fold(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Src, Exception> {
        let mut parts = Vec::new();
        Self::flatten(op, lhs, &mut parts);
        Self::flatten(op, rhs, &mut parts);
        for p in &parts {
            self.check_boolean_part(p, if op == BinOp::And { "AND" } else { "OR" })?;
        }
        let init = self.konst(&Value::Boolean(op == BinOp::And));
        let acc = self.alloc()?;
        self.insts.push(Inst::Set {
            dst: acc,
            src: Src::Const(init),
        });
        let mut fixups = Vec::with_capacity(parts.len());
        for p in parts {
            let s = self.emit(p)?;
            fixups.push(self.insts.len());
            self.insts.push(if op == BinOp::And {
                Inst::AndStep { acc, src: s, end: 0 }
            } else {
                Inst::OrStep { acc, src: s, end: 0 }
            });
        }
        let end = self.insts.len() as u32;
        for f in fixups {
            match &mut self.insts[f] {
                Inst::AndStep { end: e, .. } | Inst::OrStep { end: e, .. } => *e = end,
                _ => unreachable!(),
            }
        }
        Ok(Src::Reg(acc))
    }

    /// Body-mode binary And/Or with the interpreter's short circuit and
    /// atomicity checks in evaluation order.
    fn emit_body_logic(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Src, Exception> {
        self.check_boolean_part(lhs, "logic")?;
        self.check_boolean_part(rhs, "logic")?;
        let l = self.emit(lhs)?;
        self.insts.push(Inst::Atomic { src: l });
        let acc = self.alloc()?;
        self.insts.push(Inst::Set { dst: acc, src: l });
        let jump_at = self.insts.len();
        self.insts.push(if op == BinOp::And {
            Inst::JumpIfFalse {
                src: Src::Reg(acc),
                target: 0,
            }
        } else {
            Inst::JumpIfTrue {
                src: Src::Reg(acc),
                target: 0,
            }
        });
        let r = self.emit(rhs)?;
        self.insts.push(Inst::Atomic { src: r });
        self.insts.push(if op == BinOp::And {
            Inst::AndBody { acc, rhs: r }
        } else {
            Inst::OrBody { acc, rhs: r }
        });
        let end = self.insts.len() as u32;
        match &mut self.insts[jump_at] {
            Inst::JumpIfFalse { target, .. } | Inst::JumpIfTrue { target, .. } => *target = end,
            _ => unreachable!(),
        }
        Ok(Src::Reg(acc))
    }

    fn path_plan(&self, p: &[String]) -> Result<PathPlan, Exception> {
        if p.is_empty() {
            return Err(compile_err("empty path"));
        }
        let root_name = p[0].clone();
        let (root, root_ident, segs): (PathRoot, bool, &[String]) = if p[0] == "self" {
            (PathRoot::SelfVal, false, &p[1..])
        } else if let Some(i) = self.opts.params.iter().position(|n| *n == p[0]) {
            if i > u16::MAX as usize {
                return Err(compile_err("too many parameters"));
            }
            (PathRoot::Arg(i as u16), false, &p[1..])
        } else {
            // A bare identifier: a root attribute of self.
            (PathRoot::SelfVal, true, p)
        };
        let segs: Vec<Seg> = segs
            .iter()
            .enumerate()
            .map(|(i, name)| Seg {
                name: name.clone(),
                slot: if i == 0 && root == PathRoot::SelfVal {
                    self.opts.root_slot.and_then(|f| f(name))
                } else {
                    None
                },
            })
            .collect();
        let rendered = match root {
            PathRoot::SelfVal if !root_ident => {
                let mut s = self.opts.label.to_string();
                for seg in &segs {
                    s.push('.');
                    s.push_str(&seg.name);
                }
                s
            }
            _ => p.join("."),
        };
        Ok(PathPlan {
            root,
            root_ident,
            segs,
            root_name,
            label: self.opts.label.to_string(),
            rendered,
        })
    }
}

/// Lower an expression tree into a register program, or fail with a
/// `CompileError` exception (unsupported construct, provable type error) so
/// the caller can fall back to interpretation.
pub fn compile_program(expr: &Expr, opts: &CompileOpts<'_>) -> Result<Program, Exception> {
    let mut c = Compiler {
        opts,
        consts: Vec::new(),
        paths: Vec::new(),
        insts: Vec::new(),
        next: 0,
    };
    let ret = c.emit(expr)?;
    Ok(Program {
        mode: opts.mode,
        consts: c.consts,
        paths: c.paths,
        insts: c.insts,
        nregs: c.next,
        ret,
    })
}

/// A compiled row predicate: SQL semantics, Null filters out.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    pub program: Program,
}

impl CompiledPredicate {
    pub fn new(program: Program) -> CompiledPredicate {
        CompiledPredicate { program }
    }

    /// True exactly when the program yields `Boolean(true)` (Null and false
    /// both filter out, like `eval_pred`).
    pub fn matches(&self, regs: &mut Registers, ctx: &EvalCtx<'_>) -> Result<bool, Exception> {
        Ok(matches!(self.program.run(regs, ctx)?, Value::Boolean(true)))
    }
}

/// A compiled projection: one program per output column, with `None`
/// marking columns the caller evaluates through the interpreter.
#[derive(Debug, Clone, Default)]
pub struct CompiledProjection {
    pub columns: Vec<Option<Program>>,
}

impl CompiledProjection {
    pub fn column(&self, i: usize) -> Option<&Program> {
        self.columns.get(i).and_then(|c| c.as_ref())
    }

    /// True when at least one column compiled.
    pub fn any(&self) -> bool {
        self.columns.iter().any(|c| c.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{compile, eval};

    fn ctx<'c>(v: &'c Value, args: &'c [(String, Value)]) -> EvalCtx<'c> {
        EvalCtx {
            self_value: v,
            args,
            resolver: None,
            dispatcher: None,
        }
    }

    /// Compile in Body mode and check the program agrees with the
    /// interpreter on the same context.
    fn assert_agrees(src: &str, v: &Value, args: &[(String, Value)]) {
        let expr = compile(src).unwrap();
        let names: Vec<String> = args.iter().map(|(n, _)| n.clone()).collect();
        let opts = CompileOpts::body(&names);
        let prog = compile_program(&expr, &opts).unwrap();
        let c = ctx(v, args);
        let mut regs = Registers::default();
        let compiled = prog.run(&mut regs, &c);
        let interpreted = eval(&expr, &c);
        assert_eq!(compiled, interpreted, "divergence on {src}");
    }

    #[test]
    fn body_mode_agrees_with_interpreter() {
        let v = Value::tuple(vec![
            ("weight", Value::Integer(1000)),
            ("name", Value::string("BMW")),
            ("rating", Value::Float(4.5)),
            ("missing_t", Value::Null),
        ]);
        for src in [
            "weight * 2.2075",
            "weight > 500 && weight <= 1500 || false",
            "name == \"BMW\"",
            "name == 'Audi'",
            "!(weight == 1000)",
            "2 + 3 * 4 - 6 / 2",
            "weight % 7",
            "-weight + 1",
            "rating >= 4.5 && name != \"Audi\"",
            "missing_t == 1",
            "true && missing_t > 0",
        ] {
            assert_agrees(src, &v, &[]);
        }
    }

    #[test]
    fn body_mode_errors_match_interpreter() {
        let v = Value::tuple(vec![("weight", Value::Integer(10))]);
        for src in ["nonexistent + 1", "weight && true", "1 / 0"] {
            let expr = compile(src).unwrap();
            let opts = CompileOpts::body(&[]);
            match compile_program(&expr, &opts) {
                Ok(prog) => {
                    let c = ctx(&v, &[]);
                    let mut regs = Registers::default();
                    assert_eq!(prog.run(&mut regs, &c), eval(&expr, &c), "on {src}");
                }
                // A compile-time rejection is fine: the caller falls back
                // to the interpreter (which raises the same error per row).
                Err(e) => assert_eq!(e.kind, ExceptionKind::CompileError, "on {src}"),
            }
        }
    }

    #[test]
    fn parameters_bind_to_slots() {
        let v = Value::tuple(vec![
            ("weight", Value::Integer(10)),
            ("factor", Value::Integer(99)),
        ]);
        let args = vec![("factor".to_string(), Value::Integer(2))];
        assert_agrees("weight * factor", &v, &args);
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        let v = Value::Tuple(vec![]);
        assert_agrees("false && (1/0 == 1)", &v, &[]);
        assert_agrees("true || (1/0 == 1)", &v, &[]);
    }

    #[test]
    fn constants_are_pooled_once() {
        let expr = compile("name == \"a-fairly-long-string-constant\"").unwrap();
        let opts = CompileOpts::body(&[]);
        let prog = compile_program(&expr, &opts).unwrap();
        assert_eq!(prog.const_count(), 1);
        // Repeated literals dedupe.
        let expr = compile("name == \"x\" || name == \"x\"").unwrap();
        let prog = compile_program(&expr, &CompileOpts::body(&[])).unwrap();
        assert_eq!(prog.const_count(), 1);
    }

    #[test]
    fn provable_type_mismatch_is_a_compile_error() {
        let expr = compile("5 > 'abc'").unwrap();
        let e = compile_program(&expr, &CompileOpts::body(&[])).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::CompileError);
        // With a schema hint, path-vs-literal mismatches are caught too.
        let expr = compile("name > 5").unwrap();
        let kind_fn = |segs: &[String]| {
            if segs == ["name"] {
                StaticKind::Str
            } else {
                StaticKind::Unknown
            }
        };
        let opts = CompileOpts::body(&[]).with_attr_kind(&kind_fn);
        let e = compile_program(&expr, &opts).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::CompileError);
    }

    #[test]
    fn sql_mode_null_and_fold_semantics() {
        // Sql mode: missing tuple fields read as Null; AND over a Null part
        // is Null (filters out) unless a false part short-circuits.
        let expr = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Binary(
                BinOp::Eq,
                Box::new(Expr::Path(vec!["self".into(), "gone".into()])),
                Box::new(Expr::int(1)),
            )),
            Box::new(Expr::Lit(Value::Boolean(true))),
        );
        let prog = compile_program(&expr, &CompileOpts::sql("x")).unwrap();
        let v = Value::tuple(vec![("present", Value::Integer(1))]);
        let c = ctx(&v, &[]);
        let mut regs = Registers::default();
        assert_eq!(prog.run(&mut regs, &c).unwrap(), Value::Null);
        let pred = CompiledPredicate::new(prog);
        assert!(!pred.matches(&mut regs, &c).unwrap());
    }

    #[test]
    fn sql_mode_and_error_matches_executor_text() {
        let expr = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Path(vec!["self".into(), "n".into()])),
            Box::new(Expr::Lit(Value::Boolean(true))),
        );
        let prog = compile_program(&expr, &CompileOpts::sql("x")).unwrap();
        let v = Value::tuple(vec![("n", Value::Integer(3))]);
        let c = ctx(&v, &[]);
        let mut regs = Registers::default();
        let e = prog.run(&mut regs, &c).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::Query);
        assert_eq!(e.message, "AND over non-Boolean 3");
    }

    #[test]
    fn sql_between_evaluates_all_operands() {
        // `5 BETWEEN 10 AND x.s` with a string bound: MOODSQL evaluates all
        // three operands before comparing, so this errors rather than
        // short-circuiting to false on 5 < 10.
        let expr = Expr::Between(
            Box::new(Expr::int(5)),
            Box::new(Expr::int(10)),
            Box::new(Expr::Path(vec!["self".into(), "s".into()])),
        );
        let prog = compile_program(&expr, &CompileOpts::sql("x")).unwrap();
        let v = Value::tuple(vec![("s", Value::string("zz"))]);
        let c = ctx(&v, &[]);
        let mut regs = Registers::default();
        let e = prog.run(&mut regs, &c).unwrap_err();
        assert_eq!(e.message, "BETWEEN on incomparable values");
        // In range when the bound is comparable.
        let expr = Expr::Between(
            Box::new(Expr::Path(vec!["self".into(), "n".into()])),
            Box::new(Expr::int(1)),
            Box::new(Expr::int(10)),
        );
        let prog = compile_program(&expr, &CompileOpts::sql("x")).unwrap();
        let v = Value::tuple(vec![("n", Value::Integer(5))]);
        let c = ctx(&v, &[]);
        assert_eq!(prog.run(&mut regs, &c).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn slot_hints_resolve_and_survive_reordering() {
        let expr = compile("b == 2").unwrap();
        let slot_fn = |name: &str| if name == "b" { Some(1u16) } else { None };
        let opts = CompileOpts::body(&[]).with_root_slot(&slot_fn);
        let prog = compile_program(&expr, &opts).unwrap();
        let mut regs = Registers::default();
        // Hint correct: field at slot 1.
        let v = Value::tuple(vec![("a", Value::Integer(1)), ("b", Value::Integer(2))]);
        assert_eq!(
            prog.run(&mut regs, &ctx(&v, &[])).unwrap(),
            Value::Boolean(true)
        );
        // Hint stale (fields reordered): name check falls back to the scan.
        let v = Value::tuple(vec![("b", Value::Integer(2)), ("a", Value::Integer(1))]);
        assert_eq!(
            prog.run(&mut regs, &ctx(&v, &[])).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn path_traversal_through_refs() {
        use mood_storage::{FileId, Oid, PageId, SlotId};
        use std::collections::HashMap;
        let engine_oid = Oid::new(FileId(1), PageId(0), SlotId(0), 1);
        let mut store = HashMap::new();
        store.insert(
            engine_oid,
            Value::tuple(vec![("cylinders", Value::Integer(6))]),
        );
        let car = Value::tuple(vec![("engine", Value::Ref(engine_oid))]);
        let expr = compile("self.engine.cylinders * 2").unwrap();
        let prog = compile_program(&expr, &CompileOpts::body(&[])).unwrap();
        let c = EvalCtx {
            self_value: &car,
            args: &[],
            resolver: Some(&store),
            dispatcher: None,
        };
        let mut regs = Registers::default();
        assert_eq!(prog.run(&mut regs, &c).unwrap(), Value::Integer(12));
        assert_eq!(prog.run(&mut regs, &c), eval(&expr, &c));
    }

    #[test]
    fn calls_dispatch_in_body_mode_only() {
        let expr = compile("lbweight() + 1").unwrap();
        let e = compile_program(&expr, &CompileOpts::sql("x")).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::CompileError);
        let prog = compile_program(&expr, &CompileOpts::body(&[])).unwrap();
        let v = Value::tuple(vec![("weight", Value::Integer(100))]);
        let dispatch = |name: &str, _args: &[Value]| -> Result<Value, Exception> {
            assert_eq!(name, "lbweight");
            Ok(Value::Integer(220))
        };
        let c = EvalCtx {
            self_value: &v,
            args: &[],
            resolver: None,
            dispatcher: Some(&dispatch),
        };
        let mut regs = Registers::default();
        assert_eq!(prog.run(&mut regs, &c).unwrap(), Value::Integer(221));
    }

    #[test]
    fn register_scratch_is_reused_across_rows() {
        let expr = compile("weight > 500").unwrap();
        let prog = compile_program(&expr, &CompileOpts::body(&[])).unwrap();
        let mut regs = Registers::default();
        for w in [100, 600, 1000, 400] {
            let v = Value::tuple(vec![("weight", Value::Integer(w))]);
            let out = prog.run(&mut regs, &ctx(&v, &[])).unwrap();
            assert_eq!(out, Value::Boolean(w > 500));
        }
    }
}
