//! X1 — the four implicit-join methods (§6) across k_c: wall-clock
//! criterion timings plus a one-shot measured-pages vs model-cost table.
//!
//! Paper-shape expectation: forward traversal wins for small k_c (few
//! pointers chased); the scan-based methods win for large k_c; the binary
//! join index sits between; backward traversal pays the full D scan.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mood_bench::{build_ref_db, measured_join_pages, RefDbSpec};
use mood_core::algebra::{
    join, join_par, Collection, ExecutionConfig, JoinMethod, JoinRhs, Obj,
};
use mood_core::PhysicalParams;

fn bench(c: &mut Criterion) {
    let spec = RefDbSpec {
        n_c: 4000,
        n_d: 8000,
        pool_frames: 8,
        join_index: true,
        ..Default::default()
    };
    let (db, c_oids, _) = build_ref_db(&spec);
    let params = PhysicalParams::salzberg_1988();

    // One-shot table: measured access pattern vs §6 prediction.
    println!("\n# X1: measured pages vs model (n_c=4000, n_d=8000, pool=8)");
    println!(
        "{:>6} {:<20} {:>6} {:>6} {:>6} {:>12} {:>12}",
        "k_c", "method", "seq", "rnd", "idx", "measured(s)", "model(s)"
    );
    for k_c in [10usize, 200, 1000, 4000] {
        for method in JoinMethod::ALL {
            let m = measured_join_pages(&db, &c_oids, k_c, method, &params);
            println!(
                "{:>6} {:<20} {:>6} {:>6} {:>6} {:>12.4} {:>12.4}",
                k_c,
                method.plan_name(),
                m.seq_pages,
                m.rnd_pages,
                m.idx_pages,
                m.measured_model_seconds,
                m.predicted_seconds
            );
        }
    }

    // X1b: chunk-parallel hash-partition join vs sequential. The pool is
    // sized to hold the working set so the comparison is CPU-bound — the
    // point is wall-clock scaling with *unchanged* page-access totals
    // (expect >1.3x at parallelism 4 on a 4-core runner; on fewer cores
    // the wall-clock column flattens but the page columns stay equal).
    let par_spec = RefDbSpec {
        n_c: 4000,
        n_d: 8000,
        pool_frames: 8192,
        join_index: false,
        ..Default::default()
    };
    let (pdb, pc_oids, _) = build_ref_db(&par_spec);
    let pcatalog = pdb.catalog();
    let pleft = Collection::Extent(
        pc_oids
            .iter()
            .map(|&oid| {
                let (_, v) = pcatalog.get_object(oid).unwrap();
                Obj::stored(oid, v)
            })
            .collect::<Vec<_>>(),
    );
    println!("\n# X1b: hash-partition join, parallel vs sequential (n_c=4000, n_d=8000)");
    println!(
        "{:>4} {:>10} {:>6} {:>6} {:>6} {:>8}",
        "par", "wall(ms)", "seq", "rnd", "idx", "speedup"
    );
    let mut base_ms = f64::NAN;
    for par in [1usize, 2, 4, 8] {
        let exec = ExecutionConfig::with_parallelism(par);
        // Warm the pool so every level sees the same cache state.
        join_par(pcatalog, &pleft, "d", JoinRhs::Class("D"), JoinMethod::HashPartition, exec)
            .expect("join runs");
        let metrics = pdb.metrics();
        metrics.reset();
        let before = metrics.snapshot();
        const ITERS: usize = 5;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            join_par(
                pcatalog,
                &pleft,
                "d",
                JoinRhs::Class("D"),
                JoinMethod::HashPartition,
                exec,
            )
            .expect("join runs");
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / ITERS as f64;
        let delta = metrics.snapshot().delta(&before);
        if par == 1 {
            base_ms = ms;
        }
        println!(
            "{:>4} {:>10.2} {:>6} {:>6} {:>6} {:>7.2}x",
            par,
            ms,
            delta.seq_pages / ITERS as u64,
            delta.rnd_pages / ITERS as u64,
            delta.idx_pages / ITERS as u64,
            base_ms / ms
        );
    }

    let mut group = c.benchmark_group("join_methods");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let catalog = db.catalog();
    for k_c in [10usize, 1000, 4000] {
        let subset: Vec<Obj> = c_oids[..k_c]
            .iter()
            .map(|&oid| {
                let (_, v) = catalog.get_object(oid).unwrap();
                Obj::stored(oid, v)
            })
            .collect();
        let left = Collection::Extent(subset);
        for method in JoinMethod::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.plan_name(), k_c),
                &left,
                |b, left| {
                    b.iter(|| {
                        join(catalog, left, "d", JoinRhs::Class("D"), method)
                            .expect("join runs")
                            .len()
                    })
                },
            );
        }
    }
    group.finish();

    let mut pgroup = c.benchmark_group("hash_partition_parallelism");
    pgroup
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for par in [1usize, 2, 4, 8] {
        let exec = ExecutionConfig::with_parallelism(par);
        pgroup.bench_with_input(BenchmarkId::new("par", par), &pleft, |b, left| {
            b.iter(|| {
                join_par(
                    pcatalog,
                    left,
                    "d",
                    JoinRhs::Class("D"),
                    JoinMethod::HashPartition,
                    exec,
                )
                .expect("join runs")
                .len()
            })
        });
    }
    pgroup.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
