//! Section 8.1 — ordering of atomic (immediate) selections.
//!
//! Two decisions per range variable in an AND-term:
//!
//! 1. **How many indexes to use.** Indexed access costs are sorted
//!    ascending; the number of indexes used is the largest `k` with
//!
//!    ```text
//!    Σ_{i=1}^{k} cost_i + RNDCOST(|C| · Π_{i=1}^{k} f_s(P_i)) < SEQCOST(nbpages(C))
//!    ```
//!
//!    (index intersections narrow the OID set; the survivors are fetched
//!    randomly; all of it must beat one sequential scan).
//!
//! 2. **In what order to apply the rest.** Remaining predicates are sorted
//!    by increasing estimated selectivity and applied in that order — the
//!    short-circuit heuristic: the predicate most likely to be false runs
//!    first, so the fewest predicates are evaluated per object.

use mood_cost::{rndcost, rngxcost, seqcost, IndexParams, Theta};
use mood_storage::PhysicalParams;

/// One immediate selection predicate with its statistics — an ImmSelInfo
/// row (Table 11) before cost computation.
#[derive(Debug, Clone)]
pub struct AtomicPredicate {
    /// Rendering of the predicate (for dictionaries and plans).
    pub text: String,
    /// Estimated selectivity `f_s(P_i)`.
    pub selectivity: f64,
    /// θ (equality predicates probe; others range-scan).
    pub theta: Theta,
    /// The index on the predicate's attribute, if one exists.
    pub index: Option<IndexParams>,
}

/// The §8.1 decision for one range variable.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicPlan {
    /// Indices (into the input slice) of predicates served by an index, in
    /// the ascending-cost order they are intersected.
    pub indexed: Vec<usize>,
    /// The remaining predicates in evaluation order (increasing
    /// selectivity).
    pub residual: Vec<usize>,
    /// Modelled cost of the chosen access (indexes + fetch, or full scan).
    pub access_cost: f64,
    /// True when the chosen access is the sequential scan.
    pub sequential: bool,
}

/// `cost_i` per §8.1: `INDCOST(1)` for `=`, `RNGXCOST(f_s)` otherwise.
pub fn indexed_access_cost(p: &PhysicalParams, pred: &AtomicPredicate) -> Option<f64> {
    let ix = pred.index.as_ref()?;
    Some(match pred.theta {
        Theta::Eq => mood_cost::indcost(p, ix, 1.0),
        Theta::Ne => return None, // <> cannot use an index
        _ => rngxcost(p, ix, pred.selectivity),
    })
}

/// Decide index usage and residual predicate order for one range variable
/// bound to a class with `cardinality` instances on `nbpages` pages.
pub fn plan_atomic_selections(
    p: &PhysicalParams,
    preds: &[AtomicPredicate],
    cardinality: f64,
    nbpages: f64,
) -> AtomicPlan {
    let seq = seqcost(p, nbpages);
    // Candidate indexed predicates, ascending by cost.
    let mut candidates: Vec<(usize, f64)> = preds
        .iter()
        .enumerate()
        .filter_map(|(i, pr)| indexed_access_cost(p, pr).map(|c| (i, c)))
        .collect();
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    // Largest k satisfying the inequality; evaluate k = 1..=len and keep
    // the maximum k that still beats the scan (the paper's "maximum value
    // k satisfying ...").
    let mut best_k = 0usize;
    let mut best_cost = seq;
    let mut idx_sum = 0.0;
    let mut sel_prod = 1.0;
    for (k, (i, cost)) in candidates.iter().enumerate() {
        idx_sum += cost;
        sel_prod *= preds[*i].selectivity;
        let total = idx_sum + rndcost(p, cardinality * sel_prod);
        if total < seq {
            best_k = k + 1;
            best_cost = total;
        }
    }
    let indexed: Vec<usize> = candidates.iter().take(best_k).map(|(i, _)| *i).collect();
    // Residual predicates (everything not index-served), by increasing
    // selectivity.
    let mut residual: Vec<usize> = (0..preds.len()).filter(|i| !indexed.contains(i)).collect();
    residual.sort_by(|&a, &b| {
        preds[a]
            .selectivity
            .partial_cmp(&preds[b].selectivity)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    AtomicPlan {
        indexed,
        residual,
        access_cost: best_cost,
        sequential: best_k == 0,
    }
}

/// Expected number of predicate evaluations per object for a given order —
/// the short-circuit metric the residual ordering minimizes: predicate `i`
/// is evaluated only if all before it were true.
pub fn expected_evaluations(selectivities: &[f64], order: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut pass = 1.0;
    for &i in order {
        total += pass;
        pass *= selectivities[i];
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> PhysicalParams {
        PhysicalParams::salzberg_1988()
    }

    fn index(leaves: f64) -> IndexParams {
        IndexParams {
            order: 100.0,
            levels: 3,
            leaves,
            keysize: 8,
            unique: false,
        }
    }

    fn eq_pred(sel: f64, ix: Option<IndexParams>) -> AtomicPredicate {
        AtomicPredicate {
            text: format!("A = c (sel {sel})"),
            selectivity: sel,
            theta: Theta::Eq,
            index: ix,
        }
    }

    #[test]
    fn selective_indexed_equality_beats_scan() {
        let p = disk();
        // 1M objects on 100k pages; an equality with selectivity 1e-6
        // through a 3-level index: a handful of random reads vs 100k
        // sequential pages.
        let preds = [eq_pred(1e-6, Some(index(5_000.0)))];
        let plan = plan_atomic_selections(&p, &preds, 1_000_000.0, 100_000.0);
        assert_eq!(plan.indexed, vec![0]);
        assert!(!plan.sequential);
        assert!(plan.access_cost < seqcost(&p, 100_000.0));
    }

    #[test]
    fn unselective_predicate_scans() {
        let p = disk();
        // selectivity 0.5: fetching half the extent randomly loses to one
        // scan; the optimizer must fall back to sequential access.
        let preds = [eq_pred(0.5, Some(index(5_000.0)))];
        let plan = plan_atomic_selections(&p, &preds, 1_000_000.0, 100_000.0);
        assert!(plan.sequential);
        assert!(plan.indexed.is_empty());
        assert_eq!(plan.residual, vec![0]);
        assert_eq!(plan.access_cost, seqcost(&p, 100_000.0));
    }

    #[test]
    fn multiple_indexes_intersect_while_profitable() {
        let p = disk();
        // Two moderately selective indexed predicates: together they leave
        // |C|·f1·f2 survivors — cheap to fetch; individually each leaves
        // too many.
        let preds = [
            eq_pred(0.01, Some(index(5_000.0))),
            eq_pred(0.01, Some(index(5_000.0))),
        ];
        let plan = plan_atomic_selections(&p, &preds, 1_000_000.0, 100_000.0);
        assert_eq!(plan.indexed.len(), 2, "both indexes used: {plan:?}");
        assert!(!plan.sequential);
    }

    #[test]
    fn index_count_is_cut_when_marginal_index_does_not_pay() {
        let p = disk();
        // First index is decisive (1e-5); a second nearly-useless one
        // (selectivity 0.99, range scan over most leaves) must be skipped.
        let preds = [
            eq_pred(1e-5, Some(index(5_000.0))),
            AtomicPredicate {
                text: "B > tiny".into(),
                selectivity: 0.99,
                theta: Theta::Gt,
                index: Some(index(50_000.0)),
            },
        ];
        let plan = plan_atomic_selections(&p, &preds, 1_000_000.0, 100_000.0);
        assert_eq!(plan.indexed, vec![0]);
        assert_eq!(plan.residual, vec![1]);
    }

    #[test]
    fn residual_order_is_increasing_selectivity() {
        let p = disk();
        let preds = [eq_pred(0.9, None), eq_pred(0.1, None), eq_pred(0.5, None)];
        let plan = plan_atomic_selections(&p, &preds, 1000.0, 100.0);
        assert!(plan.sequential);
        assert_eq!(plan.residual, vec![1, 2, 0]);
    }

    #[test]
    fn short_circuit_order_minimizes_expected_evaluations() {
        let sels = [0.9, 0.1, 0.5];
        let sorted = [1usize, 2, 0]; // increasing selectivity
        let best = expected_evaluations(&sels, &sorted);
        // Check against all 6 permutations.
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(
                best <= expected_evaluations(&sels, &perm) + 1e-12,
                "{perm:?}"
            );
        }
    }

    #[test]
    fn inequality_predicates_use_range_cost() {
        let p = disk();
        let pred = AtomicPredicate {
            text: "A > c".into(),
            selectivity: 0.001,
            theta: Theta::Gt,
            index: Some(index(10_000.0)),
        };
        let cost = indexed_access_cost(&p, &pred).unwrap();
        assert!((cost - rngxcost(&p, &index(10_000.0), 0.001)).abs() < 1e-12);
        // Not-equal can never use an index.
        let ne = AtomicPredicate {
            theta: Theta::Ne,
            ..pred
        };
        assert_eq!(indexed_access_cost(&p, &ne), None);
    }

    #[test]
    fn no_predicates_scans_trivially() {
        let p = disk();
        let plan = plan_atomic_selections(&p, &[], 1000.0, 100.0);
        assert!(plan.sequential);
        assert!(plan.indexed.is_empty() && plan.residual.is_empty());
    }
}
